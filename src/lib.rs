//! # Deep Lake (Rust reproduction)
//!
//! A from-scratch Rust implementation of **"Deep Lake: a Lakehouse for
//! Deep Learning"** (Hambardzumyan et al., CIDR 2023): the Tensor Storage
//! Format, Git-like dataset version control, the Tensor Query Language,
//! the streaming dataloader, linked tensors and materialization, the
//! visualization engine's data layer, and the full benchmark harness
//! regenerating the paper's evaluation figures.
//!
//! ## Quick start
//!
//! ```
//! use deeplake::prelude::*;
//! use std::sync::Arc;
//!
//! // create a dataset on any storage provider
//! let mut ds = Dataset::create(Arc::new(MemoryProvider::new()), "quick").unwrap();
//! ds.create_tensor("images", Htype::Image, None).unwrap();
//! ds.create_tensor("labels", Htype::ClassLabel, None).unwrap();
//!
//! // append rows (ragged shapes are fine)
//! ds.append_row(vec![
//!     ("images", Sample::zeros(Dtype::U8, [32, 32, 3])),
//!     ("labels", Sample::scalar(4i32)),
//! ]).unwrap();
//! ds.flush().unwrap();
//!
//! // version control
//! let commit = ds.commit("first batch").unwrap();
//!
//! // query with TQL
//! let result = deeplake::tql::query(&ds, "SELECT * FROM ds WHERE labels = 4").unwrap();
//! assert_eq!(result.len(), 1);
//!
//! // stream to training — loader workers fetch each task's chunks with
//! // ONE batched storage call (a ReadPlan the provider coalesces and
//! // parallelizes; pass .batched_io(false) for the single-key path)
//! let ds = Arc::new(ds);
//! let loader = DataLoader::builder(ds).batch_size(8).build().unwrap();
//! let batches: usize = loader.epoch().count();
//! assert_eq!(batches, 1);
//! let _ = commit;
//! ```
//!
//! ## Batched scatter-gather reads
//!
//! Every [`storage::StorageProvider`] speaks two granularities: single
//! keys (`get`, `get_range`) and **read plans** — batches of
//! whole-object and byte-range requests the provider may *coalesce*
//! (adjacent/overlapping ranges on one key merge into one fetch) and
//! *parallelize or amortize* (scoped-thread fan-out on local disk, one
//! amortized latency charge per batch on the simulated cloud, a single
//! fill + eviction pass in the LRU tier):
//!
//! ```
//! use deeplake::prelude::*;
//! use deeplake::storage::ReadPlan;
//!
//! let store = MemoryProvider::new();
//! store.put("chunk", bytes::Bytes::from(vec![0u8; 1024])).unwrap();
//! let mut plan = ReadPlan::new();
//! plan.range("chunk", 0, 256);
//! plan.range("chunk", 256, 512); // adjacent → coalesces with the first
//! let outcome = store.execute(&plan);
//! assert_eq!(outcome.results.len(), 2);
//! assert_eq!(outcome.fetches, 1); // one backend fetch served both
//! ```
//!
//! ## Chunk-statistics predicate pushdown
//!
//! Scalar tensors record per-chunk min/max/constant statistics at write
//! time; TQL lowers `WHERE` clauses onto them and skips chunks (and the
//! storage round trips behind them) that provably cannot match, while
//! staying result-identical to a naive scan:
//!
//! ```
//! use deeplake::prelude::*;
//! use std::sync::Arc;
//!
//! let mut ds = Dataset::create(Arc::new(MemoryProvider::new()), "p").unwrap();
//! ds.create_tensor_opts("labels", {
//!     let mut o = TensorOptions::new(Htype::ClassLabel);
//!     o.chunk_target_bytes = Some(64); // small chunks for the demo
//!     o
//! }).unwrap();
//! for i in 0..100u64 {
//!     ds.append_row(vec![("labels", Sample::scalar((i / 10) as i32))]).unwrap();
//! }
//! ds.flush().unwrap();
//! let r = deeplake::tql::query(&ds, "SELECT * FROM p WHERE labels = 3").unwrap();
//! assert_eq!(r.len(), 10);
//! assert!(r.stats.chunks_pruned > 0); // most chunks never fetched
//! ```
//!
//! ## Vector similarity search
//!
//! Embedding columns answer "the k most similar samples" queries: build
//! an IVF index (k-means centroids + posting lists, persisted under the
//! tensor's `vector_index/` key family), then `ORDER BY
//! COSINE_SIMILARITY(col, [..]) LIMIT k` runs as a physical top-k
//! operator — exact by default, index-probed with `QueryOptions { ann:
//! true, nprobe, .. }`:
//!
//! ```
//! use deeplake::prelude::*;
//! use std::sync::Arc;
//!
//! let mut ds = Dataset::create(Arc::new(MemoryProvider::new()), "v").unwrap();
//! ds.create_tensor("emb", Htype::Embedding, None).unwrap();
//! for i in 0..64u64 {
//!     let v = [(i % 8) as f32, 1.0];
//!     ds.append_row(vec![("emb", Sample::from_slice([2], &v).unwrap())]).unwrap();
//! }
//! ds.flush().unwrap();
//! ds.build_vector_index("emb", &IndexSpec::default()).unwrap();
//!
//! let r = deeplake::tql::query(
//!     &ds,
//!     "SELECT * FROM v ORDER BY L2_DISTANCE(emb, [3, 1]) LIMIT 5",
//! ).unwrap();
//! assert_eq!(r.len(), 5);
//! assert_eq!(r.indices[0] % 8, 3); // nearest rows hold [3, 1]
//! ```
//!
//! Updates and re-chunking invalidate the index through the version
//! layer (queries fall back to the exact scan until a rebuild); commits
//! keep it readable for historical `AT VERSION` queries.
//!
//! ## Serving datasets
//!
//! One dataset can feed a fleet of loaders: mount any provider in a
//! [`server::DatasetServer`] and point [`remote::RemoteProvider`]
//! clients at it. The remote provider implements
//! [`storage::StorageProvider`], so datasets, TQL and the dataloader
//! work over the network unchanged — batched reads travel as single
//! frames, and [`remote::RemoteProvider::query`] offloads whole TQL
//! queries to the server (one round trip, only result rows on the
//! wire):
//!
//! ```
//! use deeplake::prelude::*;
//! use std::sync::Arc;
//!
//! // serve an (empty) in-memory store on an ephemeral loopback port
//! let server = DatasetServer::bind("127.0.0.1:0", Arc::new(MemoryProvider::new())).unwrap();
//! let remote = Arc::new(RemoteProvider::connect(server.addr()).unwrap());
//!
//! // everything works over the wire, unchanged
//! let mut ds = Dataset::create(remote.clone(), "served").unwrap();
//! ds.create_tensor("labels", Htype::ClassLabel, None).unwrap();
//! ds.append_row(vec![("labels", Sample::scalar(7i32))]).unwrap();
//! ds.flush().unwrap();
//!
//! // query offload: the server executes, the client gets result rows
//! let r = remote.query("SELECT labels FROM served WHERE labels = 7",
//!                      &QueryOptions::default()).unwrap();
//! assert_eq!(r.indices, vec![0]);
//! drop(server); // graceful shutdown drains in-flight requests
//! ```
//!
//! Since PR 5 the server is a facade over the multi-dataset [`hub`]:
//! one deployment mounts many named datasets (`Hub::builder()
//! .mount("mnist", p1).mount("laion", p2)`), clients bind a connection
//! with `remote.attach("mnist")`, a bounded worker pool caps
//! storage/query concurrency (overload answers a lossless `Busy` frame),
//! and repeated version-pinned queries are served from a result cache
//! keyed by `(dataset, version, canonical TQL text, options)` — a hit
//! is a frame copy with zero storage round trips.
//!
//! Since PR 6 hubs also form **clusters**: a [`cluster::ClusterMap`]
//! shards datasets over N nodes by bounded-load consistent hashing with
//! R replicas, every node answers `WhereIs` placement queries, and
//! [`cluster::ClusterClient`] routes each dataset's traffic to its
//! owning replicas — reads round-robin and fail over on dead or busy
//! nodes, writes go through to every replica. Killing one node of a
//! replicated fleet mid-run costs clients zero visible failures:
//!
//! ```
//! use deeplake::prelude::*;
//!
//! let mut cluster = Cluster::builder()
//!     .nodes(3)
//!     .replication(2)
//!     .dataset("mnist")
//!     .build()
//!     .unwrap();
//! let client = cluster.client().unwrap();
//! let mount = client.open("mnist").unwrap(); // placement resolved once
//! mount.put("hot", bytes::Bytes::from_static(b"v")).unwrap(); // → both replicas
//! cluster.kill(0); // whichever node this was, the data survives
//! assert_eq!(&mount.get("hot").unwrap()[..], b"v");
//! ```
//!
//! Since PR 8 the serving stack is **observable** end to end: every
//! subsystem registers lock-free counters and log-scale latency
//! histograms in an [`obs::MetricsRegistry`], clients stamp each
//! request with an [`obs::TraceContext`] that the hub decomposes into
//! queue-wait / execute / storage spans (slow ones land in a ring-buffer
//! slow-query log), and a live hub answers a `Metrics` wire opcode with
//! the whole registry snapshot — `remote.hub_metrics()` from any client.
//!
//! See the crate-level docs of each member for the subsystem details:
//! [`tensor`], [`codec`], [`storage`], [`format`], [`core`], [`tql`],
//! [`loader`], [`baselines`], [`sim`], [`viz`], [`index`],
//! [`remote`], [`server`], [`hub`], [`cluster`], [`obs`].

pub use deeplake_baselines as baselines;
pub use deeplake_cluster as cluster;
pub use deeplake_codec as codec;
pub use deeplake_core as core;
pub use deeplake_format as format;
pub use deeplake_hub as hub;
pub use deeplake_index as index;
pub use deeplake_loader as loader;
pub use deeplake_obs as obs;
pub use deeplake_remote as remote;
pub use deeplake_server as server;
pub use deeplake_sim as sim;
pub use deeplake_storage as storage;
pub use deeplake_tensor as tensor;
pub use deeplake_tql as tql;
pub use deeplake_viz as viz;

/// The most commonly used types, in one import.
pub mod prelude {
    pub use deeplake_cluster::{Cluster, ClusterClient, ClusterMount};
    pub use deeplake_codec::Compression;
    pub use deeplake_core::dataset::{Dataset, TensorOptions};
    pub use deeplake_core::link::{make_link, LinkRegistry};
    pub use deeplake_core::materialize::materialize;
    pub use deeplake_core::transform::TransformPipeline;
    pub use deeplake_core::version::MergePolicy;
    pub use deeplake_core::{DatasetView, IndexBuildReport, Row};
    pub use deeplake_hub::{Hub, HubHandle, HubOptions};
    pub use deeplake_index::{IndexKind, IndexSpec, Metric, VectorIndex};
    pub use deeplake_loader::{Batch, BatchColumn, DataLoader};
    pub use deeplake_obs::{Histogram, MetricsRegistry, MetricsSnapshot, TraceContext};
    pub use deeplake_remote::{RemoteOptions, RemoteProvider};
    pub use deeplake_server::{DatasetServer, ServerHandle};
    pub use deeplake_storage::{
        DynProvider, LocalProvider, LruCacheProvider, MemoryProvider, NetworkProfile,
        SimulatedCloudProvider, StorageProvider,
    };
    pub use deeplake_tensor::{Dtype, Htype, Sample, Shape, SliceSpec};
    pub use deeplake_tql::{query, QueryOptions};
}
