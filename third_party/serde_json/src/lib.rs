//! Offline stand-in for `serde_json`.
//!
//! A recursive-descent JSON parser and a compact/pretty printer over the
//! workspace `serde` stand-in's [`Value`] tree. Covers the full JSON
//! grammar (escapes, `\uXXXX` incl. surrogate pairs, scientific-notation
//! numbers) so anything this codebase writes round-trips.

pub use serde::{Number, Value};

use serde::{Deserialize, Serialize};

/// Parse/serialize failure (re-exported error type of the stand-in).
pub type Error = serde::Error;

/// Result alias matching the real crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize to a pretty JSON string (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Serialize to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    Ok(to_string(value)?.into_bytes())
}

/// Serialize to pretty JSON bytes.
pub fn to_vec_pretty<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    Ok(to_string_pretty(value)?.into_bytes())
}

/// Deserialize from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    T::from_value(&parse_value_str(s)?)
}

/// Deserialize from JSON bytes.
pub fn from_slice<T: Deserialize>(data: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(data).map_err(|e| Error::custom(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

/// Parse JSON text into a [`Value`].
pub fn parse_value_str(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

// ---------------------------------------------------------------------
// printer
// ---------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(n: Number, out: &mut String) {
    match n {
        Number::U(u) => out.push_str(&u.to_string()),
        Number::I(i) => out.push_str(&i.to_string()),
        Number::F(f) => {
            if f.is_finite() {
                let s = f.to_string();
                out.push_str(&s);
                // keep floats recognizable as floats
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // JSON has no inf/nan; mirror real serde_json's `null`
                out.push_str("null");
            }
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(Error::custom(format!(
                "unexpected character {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` in array, found {:?}",
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` in object, found {:?}",
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // fast path: run of plain bytes
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|e| Error::custom(format!("invalid utf-8 in string: {e}")))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // surrogate pair
                                if !self.eat_keyword("\\u") {
                                    return Err(Error::custom("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                let combined =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::custom("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| Error::custom("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape \\{}",
                                other as char
                            )))
                        }
                    }
                }
                other => {
                    return Err(Error::custom(format!(
                        "unterminated string (found {:?})",
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::custom("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::custom("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| Error::custom("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F(f)))
            .map_err(|_| Error::custom(format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(from_str::<u64>("18446744073709551615").unwrap(), u64::MAX);
        assert_eq!(from_str::<i64>("-42").unwrap(), -42);
        assert_eq!(from_str::<f64>("2.5e3").unwrap(), 2500.0);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<Option<u8>>("null").unwrap(), None);
    }

    #[test]
    fn strings_with_escapes() {
        let s: String = from_str(r#""a\nb\t\"c\" é 😀""#).unwrap();
        assert_eq!(s, "a\nb\t\"c\" é 😀");
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn nested_containers_roundtrip() {
        let v: Vec<Vec<u32>> = vec![vec![1, 2], vec![], vec![3]];
        let json = to_string_pretty(&v).unwrap();
        assert_eq!(from_str::<Vec<Vec<u32>>>(&json).unwrap(), v);
    }

    #[test]
    fn garbage_rejected() {
        assert!(from_str::<u32>("{not json").is_err());
        assert!(from_str::<u32>("1 2").is_err());
        assert!(from_str::<Vec<u8>>("[1,]").is_err());
    }

    #[test]
    fn float_marked_as_float() {
        let json = to_string(&1.0f64).unwrap();
        assert_eq!(json, "1.0");
    }
}
