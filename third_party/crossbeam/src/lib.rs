//! Offline stand-in for `crossbeam`.
//!
//! Provides the two facilities this workspace uses:
//! * [`channel`] — a bounded MPMC channel (mutex + condvar; throughput is
//!   adequate because senders batch multi-kilobyte rows, not tokens).
//! * [`thread`] — scoped threads delegating to `std::thread::scope`.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
        /// A `never()` channel blocks `recv` forever regardless of senders.
        never: bool,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        capacity: usize,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Sending half; cloneable.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// Receiving half; cloneable.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Error returned when every receiver is gone; carries the unsent value.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    /// Error returned when the channel is empty and every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Create a channel that holds at most `cap` in-flight messages
    /// (`cap == 0` behaves as 1; we do not model rendezvous hand-off).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
                never: false,
            }),
            capacity: cap.max(1),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender { chan: chan.clone() }, Receiver { chan })
    }

    /// A receiver on which `recv` blocks forever.
    pub fn never<T>() -> Receiver<T> {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 0,
                receivers: 1,
                never: true,
            }),
            capacity: 1,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        Receiver { chan }
    }

    impl<T> Sender<T> {
        /// Block until the message is enqueued, or fail when all receivers
        /// dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.chan.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                if st.queue.len() < self.chan.capacity {
                    st.queue.push_back(value);
                    self.chan.not_empty.notify_one();
                    return Ok(());
                }
                st = self.chan.not_full.wait(st).unwrap();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives, or fail when the channel is empty
        /// and all senders dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.chan.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.chan.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 && !st.never {
                    return Err(RecvError);
                }
                st = self.chan.not_empty.wait(st).unwrap();
            }
        }

        /// Non-blocking receive; `None` when nothing is queued right now.
        pub fn try_recv(&self) -> Option<T> {
            let mut st = self.chan.state.lock().unwrap();
            let v = st.queue.pop_front();
            if v.is_some() {
                self.chan.not_full.notify_one();
            }
            v
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().unwrap().senders += 1;
            Sender {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().unwrap().receivers += 1;
            Receiver {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                self.chan.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                self.chan.not_full.notify_all();
            }
        }
    }
}

pub mod thread {
    use std::any::Any;

    /// Handle passed to the `scope` closure; mirrors crossbeam's API shape
    /// (spawn closures receive `&Scope` they usually ignore as `|_|`).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle of a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread; `Err` carries its panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread bound to the scope. The closure's argument is the
        /// scope itself (for nested spawns); call sites typically ignore it.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || {
                    let scope = Scope { inner };
                    f(&scope)
                }),
            }
        }
    }

    /// Run `f` with a scope whose threads all join before `scope` returns.
    ///
    /// Unlike crossbeam, a panicking child propagates the panic here rather
    /// than surfacing through the returned `Result` (std's scope semantics);
    /// callers that `.unwrap()` the result observe the same outcome.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_roundtrip_multi_producer() {
        let (tx, rx) = channel::bounded::<usize>(2);
        let mut handles = Vec::new();
        for t in 0..4 {
            let tx = tx.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..25 {
                    tx.send(t * 100 + i).unwrap();
                }
            }));
        }
        drop(tx);
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(got.len(), 100);
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = channel::bounded::<u8>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn scope_joins_all() {
        let counter = std::sync::atomic::AtomicUsize::new(0);
        thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed));
            }
        })
        .unwrap();
        assert_eq!(counter.into_inner(), 8);
    }
}
