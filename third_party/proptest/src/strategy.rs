//! The [`Strategy`] trait and the built-in strategy implementations:
//! integer ranges, tuples of strategies, and regex-like string patterns.

use rand::rngs::StdRng;
use rand::{RngExt, SampleUniform};
use std::ops::{Range, RangeInclusive};

/// A generator of random values for property tests.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

impl<T: SampleUniform + Copy> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.start..self.end)
    }
}

impl<T: SampleUniform + Copy> Strategy for RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        rng.random_range(*self.start()..=*self.end())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

// ---------------------------------------------------------------------
// regex-like string strategies
// ---------------------------------------------------------------------

/// One atom of a pattern plus its repetition bounds.
struct Atom {
    set: CharSet,
    min: usize,
    max: usize,
}

enum CharSet {
    /// Explicit ranges, e.g. `[a-z0-9_]`.
    Ranges(Vec<(char, char)>),
    /// `\PC` — any non-control character.
    NotControl,
    /// A single literal character.
    Literal(char),
}

impl CharSet {
    fn sample(&self, rng: &mut StdRng) -> char {
        match self {
            CharSet::Literal(c) => *c,
            CharSet::Ranges(ranges) => {
                let total: u32 = ranges
                    .iter()
                    .map(|&(lo, hi)| hi as u32 - lo as u32 + 1)
                    .sum();
                let mut pick = rng.random_range(0..total);
                for &(lo, hi) in ranges {
                    let span = hi as u32 - lo as u32 + 1;
                    if pick < span {
                        return char::from_u32(lo as u32 + pick).unwrap_or(lo);
                    }
                    pick -= span;
                }
                unreachable!("pick bounded by total")
            }
            CharSet::NotControl => {
                // mostly printable ASCII with occasional multi-byte chars to
                // keep lexers honest about UTF-8
                match rng.random_range(0u32..20) {
                    0 => char::from_u32(rng.random_range(0xA1u32..0x2FF)).unwrap_or('¡'),
                    1 => '😀',
                    2 => 'é',
                    _ => char::from_u32(rng.random_range(0x20u32..0x7F)).unwrap_or(' '),
                }
            }
        }
    }
}

/// Parse the regex subset: a sequence of `[class]`, `\PC`, or literal
/// atoms, each optionally followed by `{m}` / `{m,n}`.
fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut atoms = Vec::new();
    while i < chars.len() {
        let set = match chars[i] {
            '[' => {
                i += 1;
                let mut ranges = Vec::new();
                let mut members: Vec<char> = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let c = if chars[i] == '\\' {
                        i += 1;
                        let e = chars[i];
                        match e {
                            'n' => '\n',
                            't' => '\t',
                            'r' => '\r',
                            other => other,
                        }
                    } else {
                        chars[i]
                    };
                    // range like `a-z` (a `-` that is not last and follows a member)
                    if !members.is_empty()
                        && c == '-'
                        && i + 1 < chars.len()
                        && chars[i + 1] != ']'
                        && chars[i] == '-'
                    {
                        let lo = members.pop().expect("checked non-empty");
                        i += 1;
                        let hi = if chars[i] == '\\' {
                            i += 1;
                            chars[i]
                        } else {
                            chars[i]
                        };
                        ranges.push((lo, hi));
                        i += 1;
                        continue;
                    }
                    members.push(c);
                    i += 1;
                }
                i += 1; // closing `]`
                ranges.extend(members.into_iter().map(|c| (c, c)));
                CharSet::Ranges(ranges)
            }
            '\\' => {
                // `\PC` (non-control) or an escaped literal
                if chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C') {
                    i += 3;
                    CharSet::NotControl
                } else {
                    i += 1;
                    let c = chars[i];
                    i += 1;
                    CharSet::Literal(c)
                }
            }
            c => {
                i += 1;
                CharSet::Literal(c)
            }
        };
        // optional quantifier
        let (min, max) = if chars.get(i) == Some(&'{') {
            i += 1;
            let mut min_s = String::new();
            while chars[i].is_ascii_digit() {
                min_s.push(chars[i]);
                i += 1;
            }
            let min: usize = min_s.parse().expect("quantifier lower bound");
            let max = if chars[i] == ',' {
                i += 1;
                let mut max_s = String::new();
                while chars[i].is_ascii_digit() {
                    max_s.push(chars[i]);
                    i += 1;
                }
                max_s.parse().expect("quantifier upper bound")
            } else {
                min
            };
            assert_eq!(chars[i], '}', "malformed quantifier in pattern {pattern:?}");
            i += 1;
            (min, max)
        } else {
            (1, 1)
        };
        atoms.push(Atom { set, min, max });
    }
    atoms
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let n = rng.random_range(atom.min..=atom.max);
            for _ in 0..n {
                out.push(atom.set.sample(rng));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn ranges_sample_in_bounds() {
        let mut r = rng();
        for _ in 0..200 {
            let v = (3u32..9).generate(&mut r);
            assert!((3..9).contains(&v));
            let w = (-5i64..=5).generate(&mut r);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn class_pattern_generates_matching_strings() {
        let mut r = rng();
        for _ in 0..100 {
            let s = "[a-z][a-z0-9_]{0,10}".generate(&mut r);
            assert!(!s.is_empty() && s.len() <= 11);
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_lowercase());
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn escaped_class_members() {
        let mut r = rng();
        for _ in 0..100 {
            let s = "[a-zA-Z0-9 ,.:*()\\[\\]<>=!'\"+-/%_]{0,120}".generate(&mut r);
            assert!(s.len() <= 120);
            assert!(s.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn not_control_pattern() {
        let mut r = rng();
        for _ in 0..50 {
            let s = "\\PC{0,200}".generate(&mut r);
            assert!(s.chars().count() <= 200);
            assert!(s.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn tuples_compose() {
        let mut r = rng();
        let (a, b) = (crate::any::<u8>(), 1usize..100).generate(&mut r);
        let _: u8 = a;
        assert!((1..100).contains(&b));
    }
}
