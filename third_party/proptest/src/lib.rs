//! Offline stand-in for `proptest`.
//!
//! Random-testing support for the subset of the API this workspace's
//! property tests use: the `proptest!` macro with an optional
//! `proptest_config`, integer-range / `any::<T>()` / tuple strategies,
//! `collection::vec`, `sample::select`, and string strategies written as
//! regex-like patterns (`"[a-z0-9_]{1,24}"`, `"\\PC{0,200}"`). No
//! shrinking: a failing case panics with the generated inputs shown via
//! the assertion message, which is enough signal for CI.

use rand::rngs::StdRng;
use rand::{RngCore, RngExt, SeedableRng};

pub mod strategy;

pub use strategy::Strategy;

/// Run configuration for one `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-test RNG (seeded from the test name so every test
/// explores a distinct but reproducible stream).
pub fn test_rng(test_name: &str) -> StdRng {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h)
}

/// Strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Sample an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                // bias towards edge values like the real crate
                match rng.random_range(0u32..16) {
                    0 => <$t>::MIN,
                    1 => <$t>::MAX,
                    2 => 0 as $t,
                    3 => 1 as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        match rng.random_range(0u32..16) {
            0 => 0.0,
            1 => -1.5,
            2 => 1e9,
            _ => (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64 * 2000.0 - 1000.0,
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;
    use std::ops::Bound;
    use std::ops::RangeBounds;

    /// `Vec` of values from `element`, with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl RangeBounds<usize>) -> VecStrategy<S> {
        let lo = match size.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match size.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => lo + 256,
        };
        VecStrategy { element, lo, hi }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.random_range(self.lo..self.hi.max(self.lo + 1));
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling from fixed pools.
pub mod sample {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// Uniformly pick one of `items`.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select requires a non-empty pool");
        Select { items }
    }

    /// Strategy returned by [`select`].
    pub struct Select<T> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            self.items[rng.random_range(0..self.items.len())].clone()
        }
    }
}

/// Everything tests normally import.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
    };
}

/// Assert inside a property test (no shrinking; panics directly).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skip the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            continue;
        }
    };
}

/// Declare property tests. Each `fn name(arg in strategy, ...)` runs
/// `cases` times with freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_rng(stringify!($name));
                for __case in 0..__config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}
