//! Offline stand-in for `polling`.
//!
//! Readiness multiplexing for the serving tier: one thread watches
//! thousands of sockets and wakes only when one of them can make
//! progress. Two backends behind one API:
//!
//! * [`Backend::Epoll`] — `epoll(7)`, Linux only. O(ready) wakeups;
//!   the default on Linux.
//! * [`Backend::Poll`] — portable `poll(2)`. O(registered) per wait,
//!   fine for modest fd counts and as the fallback everywhere else.
//!
//! Both are **level-triggered**: an fd that is still readable keeps
//! reporting readable, so a caller may consume as little as it likes
//! per wakeup (no starvation bookkeeping). Each [`Poller`] also owns a
//! self-pipe *waker*: [`Poller::notify`] is safe from any thread and
//! makes a concurrent or future [`Poller::wait`] return immediately —
//! the primitive that lets shutdown and cross-thread handoff be
//! event-driven instead of poll-ticked.
//!
//! The syscall bindings are declared directly against the platform libc
//! (this workspace has no `libc` crate); everything above them is safe.
//!
//! ```no_run
//! use polling::{Event, Interest, Poller};
//! use std::net::TcpListener;
//! use std::os::fd::AsRawFd;
//!
//! let listener = TcpListener::bind("127.0.0.1:0").unwrap();
//! listener.set_nonblocking(true).unwrap();
//! let poller = Poller::new().unwrap();
//! poller.add(listener.as_raw_fd(), 1, Interest::READ).unwrap();
//! let mut events = Vec::new();
//! poller.wait(&mut events, None).unwrap();
//! assert_eq!(events[0].key, 1);
//! ```

#![cfg(unix)]

use std::io;
use std::os::fd::RawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Key the internal self-pipe waker is registered under; never reported
/// to callers, and rejected by [`Poller::add`].
pub const WAKER_KEY: u64 = u64::MAX;

/// What a registration wants to be woken for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or closed/errored).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Writable only.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Readable and writable.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
    /// Registered but dormant (no wakeups until modified).
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };
}

/// One readiness notification. Error/hang-up conditions are folded into
/// `readable`/`writable` so the caller performs the I/O and observes the
/// failure through the normal error path.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The key the fd was registered under.
    pub key: u64,
    /// The fd can be read (data, EOF, or a pending error).
    pub readable: bool,
    /// The fd can be written.
    pub writable: bool,
}

/// Which multiplexing syscall a [`Poller`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// `epoll(7)` — Linux only, O(ready) wakeups.
    Epoll,
    /// `poll(2)` — portable, O(registered) per wait.
    Poll,
}

impl Backend {
    /// The preferred backend for this platform (epoll on Linux).
    pub fn platform_default() -> Backend {
        if cfg!(target_os = "linux") {
            Backend::Epoll
        } else {
            Backend::Poll
        }
    }
}

enum Inner {
    #[cfg(target_os = "linux")]
    Epoll(epoll::EpollPoller),
    Poll(pollfd::PollPoller),
}

/// A readiness poller: register fds under `u64` keys, then [`wait`]
/// for events. `add`/`modify`/`remove`/`notify` are callable from any
/// thread; `wait` is intended for one owning loop thread (concurrent
/// waiters would steal each other's events).
///
/// [`wait`]: Poller::wait
pub struct Poller {
    inner: Inner,
    waker: Waker,
    /// Coalesces notifies: at most one waker byte is in flight.
    notified: AtomicBool,
}

impl Poller {
    /// A poller on the platform's preferred backend.
    pub fn new() -> io::Result<Poller> {
        Self::with_backend(Backend::platform_default())
    }

    /// A poller on an explicit backend. Requesting [`Backend::Epoll`]
    /// off Linux is an `Unsupported` error.
    pub fn with_backend(backend: Backend) -> io::Result<Poller> {
        let waker = Waker::new()?;
        let inner = match backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll => Inner::Epoll(epoll::EpollPoller::new()?),
            #[cfg(not(target_os = "linux"))]
            Backend::Epoll => {
                return Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "epoll is Linux-only; use Backend::Poll",
                ))
            }
            Backend::Poll => Inner::Poll(pollfd::PollPoller::new()),
        };
        let poller = Poller {
            inner,
            waker,
            notified: AtomicBool::new(false),
        };
        poller.add_impl(poller.waker.read_fd, WAKER_KEY, Interest::READ)?;
        Ok(poller)
    }

    /// Which backend this poller runs on.
    pub fn backend(&self) -> Backend {
        match &self.inner {
            #[cfg(target_os = "linux")]
            Inner::Epoll(_) => Backend::Epoll,
            Inner::Poll(_) => Backend::Poll,
        }
    }

    /// Register `fd` under `key`. The fd should be nonblocking; the
    /// poller never performs I/O on it. `key` must not be [`WAKER_KEY`].
    pub fn add(&self, fd: RawFd, key: u64, interest: Interest) -> io::Result<()> {
        if key == WAKER_KEY {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "key u64::MAX is reserved for the poller's waker",
            ));
        }
        self.add_impl(fd, key, interest)
    }

    fn add_impl(&self, fd: RawFd, key: u64, interest: Interest) -> io::Result<()> {
        match &self.inner {
            #[cfg(target_os = "linux")]
            Inner::Epoll(e) => e.add(fd, key, interest),
            Inner::Poll(p) => p.add(fd, key, interest),
        }
    }

    /// Change the interest (and/or key) of a registered fd.
    pub fn modify(&self, fd: RawFd, key: u64, interest: Interest) -> io::Result<()> {
        if key == WAKER_KEY {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "key u64::MAX is reserved for the poller's waker",
            ));
        }
        match &self.inner {
            #[cfg(target_os = "linux")]
            Inner::Epoll(e) => e.modify(fd, key, interest),
            Inner::Poll(p) => p.modify(fd, key, interest),
        }
    }

    /// Deregister `fd`. Always call before closing the fd — a closed fd
    /// silently vanishes from epoll but would poison a `poll(2)` set.
    pub fn remove(&self, fd: RawFd) -> io::Result<()> {
        match &self.inner {
            #[cfg(target_os = "linux")]
            Inner::Epoll(e) => e.remove(fd),
            Inner::Poll(p) => p.remove(fd),
        }
    }

    /// Block until at least one registered fd is ready, `timeout`
    /// elapses (`None` = forever), or [`Poller::notify`] is called.
    /// Ready events are appended to `events` (which is cleared first);
    /// returns the number delivered. A waker wakeup or a signal
    /// delivers zero events — callers should treat `Ok(0)` as "re-check
    /// state", not as an error.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        let woke = match &self.inner {
            #[cfg(target_os = "linux")]
            Inner::Epoll(e) => e.wait(events, timeout)?,
            Inner::Poll(p) => p.wait(events, timeout)?,
        };
        if woke {
            // drain-then-reset: a notify racing the drain coincides with
            // a wait that is already returning (the caller re-checks
            // state anyway), and a notify after the reset writes a byte
            // that survives for the next wait. The reverse order can eat
            // a byte written between reset and drain while `notified`
            // stays true, coalescing every later notify into nothing.
            self.waker.drain();
            self.notified.store(false, Ordering::SeqCst);
        }
        Ok(events.len())
    }

    /// Wake a concurrent or future [`Poller::wait`]. Callable from any
    /// thread; repeated notifies before the next wait coalesce into one
    /// wakeup.
    pub fn notify(&self) -> io::Result<()> {
        if !self.notified.swap(true, Ordering::SeqCst) {
            self.waker.wake()?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// self-pipe waker
// ---------------------------------------------------------------------

struct Waker {
    read_fd: RawFd,
    write_fd: RawFd,
}

impl Waker {
    fn new() -> io::Result<Waker> {
        let mut fds = [0 as sys::c_int; 2];
        if unsafe { sys::pipe(fds.as_mut_ptr()) } != 0 {
            return Err(io::Error::last_os_error());
        }
        for fd in fds {
            sys::set_nonblocking_cloexec(fd)?;
        }
        Ok(Waker {
            read_fd: fds[0],
            write_fd: fds[1],
        })
    }

    fn wake(&self) -> io::Result<()> {
        let byte = 1u8;
        let n = unsafe { sys::write(self.write_fd, (&byte as *const u8).cast(), 1) };
        // a full pipe already guarantees the wakeup; any other failure
        // would leave a waiter asleep and must surface
        if n == 1 || io::Error::last_os_error().kind() == io::ErrorKind::WouldBlock {
            Ok(())
        } else {
            Err(io::Error::last_os_error())
        }
    }

    fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            let n = unsafe { sys::read(self.read_fd, buf.as_mut_ptr().cast(), buf.len()) };
            if n <= 0 {
                return; // empty (EAGAIN), EOF, or a transient error
            }
        }
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        unsafe {
            sys::close(self.read_fd);
            sys::close(self.write_fd);
        }
    }
}

/// Clamp a timeout to the millisecond `c_int` the syscalls take,
/// rounding a sub-millisecond wait *up* so it cannot busy-spin.
fn timeout_ms(timeout: Option<Duration>) -> sys::c_int {
    match timeout {
        None => -1,
        Some(d) if d.is_zero() => 0,
        Some(d) => {
            let ms = d.as_millis().max(1);
            ms.min(i32::MAX as u128) as sys::c_int
        }
    }
}

// ---------------------------------------------------------------------
// epoll backend (Linux)
// ---------------------------------------------------------------------

#[cfg(target_os = "linux")]
mod epoll {
    use super::{sys, timeout_ms, Event, Interest, WAKER_KEY};
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    pub(crate) struct EpollPoller {
        epfd: RawFd,
    }

    fn mask(interest: Interest) -> u32 {
        let mut m = 0;
        if interest.readable {
            m |= sys::EPOLLIN;
        }
        if interest.writable {
            m |= sys::EPOLLOUT;
        }
        m
    }

    impl EpollPoller {
        pub(crate) fn new() -> io::Result<EpollPoller> {
            let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(EpollPoller { epfd })
        }

        fn ctl(&self, op: sys::c_int, fd: RawFd, key: u64, interest: Interest) -> io::Result<()> {
            let mut ev = sys::epoll_event {
                events: mask(interest),
                data: key,
            };
            if unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut ev) } != 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub(crate) fn add(&self, fd: RawFd, key: u64, interest: Interest) -> io::Result<()> {
            self.ctl(sys::EPOLL_CTL_ADD, fd, key, interest)
        }

        pub(crate) fn modify(&self, fd: RawFd, key: u64, interest: Interest) -> io::Result<()> {
            self.ctl(sys::EPOLL_CTL_MOD, fd, key, interest)
        }

        pub(crate) fn remove(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(sys::EPOLL_CTL_DEL, fd, 0, Interest::NONE)
        }

        /// Returns whether the waker fired.
        pub(crate) fn wait(
            &self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<bool> {
            let mut buf = [sys::epoll_event { events: 0, data: 0 }; 256];
            let n = unsafe {
                sys::epoll_wait(
                    self.epfd,
                    buf.as_mut_ptr(),
                    buf.len() as sys::c_int,
                    timeout_ms(timeout),
                )
            };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(false); // spurious wake; caller re-checks
                }
                return Err(e);
            }
            let mut woke = false;
            for ev in buf.iter().take(n as usize) {
                // copy out of the (packed) event before matching
                let (bits, key) = (ev.events, ev.data);
                if key == WAKER_KEY {
                    woke = true;
                    continue;
                }
                let failed = bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0;
                events.push(Event {
                    key,
                    readable: bits & sys::EPOLLIN != 0 || failed,
                    writable: bits & sys::EPOLLOUT != 0 || failed,
                });
            }
            Ok(woke)
        }
    }

    impl Drop for EpollPoller {
        fn drop(&mut self) {
            unsafe {
                sys::close(self.epfd);
            }
        }
    }
}

// ---------------------------------------------------------------------
// poll(2) backend (portable)
// ---------------------------------------------------------------------

mod pollfd {
    use super::{sys, timeout_ms, Event, Interest, WAKER_KEY};
    use std::collections::HashMap;
    use std::io;
    use std::os::fd::RawFd;
    use std::sync::Mutex;
    use std::time::Duration;

    pub(crate) struct PollPoller {
        registered: Mutex<HashMap<RawFd, (u64, Interest)>>,
    }

    impl PollPoller {
        pub(crate) fn new() -> PollPoller {
            PollPoller {
                registered: Mutex::new(HashMap::new()),
            }
        }

        pub(crate) fn add(&self, fd: RawFd, key: u64, interest: Interest) -> io::Result<()> {
            let mut reg = self.registered.lock().unwrap();
            if reg.contains_key(&fd) {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    format!("fd {fd} is already registered"),
                ));
            }
            reg.insert(fd, (key, interest));
            Ok(())
        }

        pub(crate) fn modify(&self, fd: RawFd, key: u64, interest: Interest) -> io::Result<()> {
            match self.registered.lock().unwrap().get_mut(&fd) {
                Some(slot) => {
                    *slot = (key, interest);
                    Ok(())
                }
                None => Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("fd {fd} is not registered"),
                )),
            }
        }

        pub(crate) fn remove(&self, fd: RawFd) -> io::Result<()> {
            match self.registered.lock().unwrap().remove(&fd) {
                Some(_) => Ok(()),
                None => Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("fd {fd} is not registered"),
                )),
            }
        }

        /// Returns whether the waker fired.
        pub(crate) fn wait(
            &self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<bool> {
            // snapshot under the lock, poll outside it, so add/modify
            // from other threads (followed by notify) never deadlock
            let (mut fds, keys): (Vec<sys::pollfd>, Vec<u64>) = {
                let reg = self.registered.lock().unwrap();
                let mut fds = Vec::with_capacity(reg.len());
                let mut keys = Vec::with_capacity(reg.len());
                for (&fd, &(key, interest)) in reg.iter() {
                    let mut ev: sys::c_short = 0;
                    if interest.readable {
                        ev |= sys::POLLIN;
                    }
                    if interest.writable {
                        ev |= sys::POLLOUT;
                    }
                    fds.push(sys::pollfd {
                        fd,
                        events: ev,
                        revents: 0,
                    });
                    keys.push(key);
                }
                (fds, keys)
            };
            let n = unsafe {
                sys::poll(
                    fds.as_mut_ptr(),
                    fds.len() as sys::nfds_t,
                    timeout_ms(timeout),
                )
            };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(false);
                }
                return Err(e);
            }
            let mut woke = false;
            for (slot, &key) in fds.iter().zip(&keys) {
                if slot.revents == 0 {
                    continue;
                }
                if key == WAKER_KEY {
                    woke = true;
                    continue;
                }
                let failed = slot.revents & (sys::POLLERR | sys::POLLHUP | sys::POLLNVAL) != 0;
                events.push(Event {
                    key,
                    readable: slot.revents & sys::POLLIN != 0 || failed,
                    writable: slot.revents & sys::POLLOUT != 0 || failed,
                });
            }
            Ok(woke)
        }
    }
}

// ---------------------------------------------------------------------
// libc bindings (no libc crate in this offline workspace)
// ---------------------------------------------------------------------

#[allow(non_camel_case_types)]
mod sys {
    pub(crate) use std::os::raw::{c_int, c_short, c_void};

    #[cfg(target_os = "linux")]
    pub(crate) type nfds_t = std::os::raw::c_ulong;
    #[cfg(not(target_os = "linux"))]
    pub(crate) type nfds_t = std::os::raw::c_uint;

    // fcntl(2)
    const F_GETFL: c_int = 3;
    const F_SETFL: c_int = 4;
    const F_SETFD: c_int = 2;
    const FD_CLOEXEC: c_int = 1;
    #[cfg(target_os = "linux")]
    const O_NONBLOCK: c_int = 0x800;
    #[cfg(not(target_os = "linux"))]
    const O_NONBLOCK: c_int = 0x4;

    // epoll(7)
    #[cfg(target_os = "linux")]
    pub(crate) const EPOLL_CLOEXEC: c_int = 0x80000;
    #[cfg(target_os = "linux")]
    pub(crate) const EPOLL_CTL_ADD: c_int = 1;
    #[cfg(target_os = "linux")]
    pub(crate) const EPOLL_CTL_DEL: c_int = 2;
    #[cfg(target_os = "linux")]
    pub(crate) const EPOLL_CTL_MOD: c_int = 3;
    #[cfg(target_os = "linux")]
    pub(crate) const EPOLLIN: u32 = 0x1;
    #[cfg(target_os = "linux")]
    pub(crate) const EPOLLOUT: u32 = 0x4;
    #[cfg(target_os = "linux")]
    pub(crate) const EPOLLERR: u32 = 0x8;
    #[cfg(target_os = "linux")]
    pub(crate) const EPOLLHUP: u32 = 0x10;

    // poll(2)
    pub(crate) const POLLIN: c_short = 0x1;
    pub(crate) const POLLOUT: c_short = 0x4;
    pub(crate) const POLLERR: c_short = 0x8;
    pub(crate) const POLLHUP: c_short = 0x10;
    pub(crate) const POLLNVAL: c_short = 0x20;

    /// Mirror of the kernel's `struct epoll_event`; packed on x86_64
    /// (the one ABI where the kernel declares it so).
    #[cfg(target_os = "linux")]
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub(crate) struct epoll_event {
        pub events: u32,
        pub data: u64,
    }

    /// Mirror of `struct pollfd`.
    #[repr(C)]
    pub(crate) struct pollfd {
        pub fd: c_int,
        pub events: c_short,
        pub revents: c_short,
    }

    extern "C" {
        #[cfg(target_os = "linux")]
        pub(crate) fn epoll_create1(flags: c_int) -> c_int;
        #[cfg(target_os = "linux")]
        pub(crate) fn epoll_ctl(
            epfd: c_int,
            op: c_int,
            fd: c_int,
            event: *mut epoll_event,
        ) -> c_int;
        #[cfg(target_os = "linux")]
        pub(crate) fn epoll_wait(
            epfd: c_int,
            events: *mut epoll_event,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub(crate) fn poll(fds: *mut pollfd, nfds: nfds_t, timeout: c_int) -> c_int;
        pub(crate) fn pipe(fds: *mut c_int) -> c_int;
        fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
        pub(crate) fn close(fd: c_int) -> c_int;
        pub(crate) fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub(crate) fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    }

    /// Make an fd nonblocking and close-on-exec.
    pub(crate) fn set_nonblocking_cloexec(fd: c_int) -> std::io::Result<()> {
        unsafe {
            let flags = fcntl(fd, F_GETFL, 0);
            if flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0 {
                return Err(std::io::Error::last_os_error());
            }
            if fcntl(fd, F_SETFD, FD_CLOEXEC) < 0 {
                return Err(std::io::Error::last_os_error());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::Instant;

    fn backends() -> Vec<Backend> {
        if cfg!(target_os = "linux") {
            vec![Backend::Epoll, Backend::Poll]
        } else {
            vec![Backend::Poll]
        }
    }

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let a = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn readable_when_data_arrives() {
        for backend in backends() {
            let poller = Poller::with_backend(backend).unwrap();
            let (mut tx, rx) = pair();
            rx.set_nonblocking(true).unwrap();
            poller.add(rx.as_raw_fd(), 7, Interest::READ).unwrap();
            let mut events = Vec::new();
            // nothing yet: times out with no events
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(events.is_empty(), "{backend:?}");
            tx.write_all(b"x").unwrap();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(events.len(), 1, "{backend:?}");
            assert_eq!(events[0].key, 7);
            assert!(events[0].readable);
        }
    }

    #[test]
    fn interest_changes_apply() {
        for backend in backends() {
            let poller = Poller::with_backend(backend).unwrap();
            let (mut tx, rx) = pair();
            rx.set_nonblocking(true).unwrap();
            poller.add(rx.as_raw_fd(), 1, Interest::NONE).unwrap();
            tx.write_all(b"x").unwrap();
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .unwrap();
            assert!(events.is_empty(), "{backend:?}: dormant fd must not wake");
            poller.modify(rx.as_raw_fd(), 1, Interest::BOTH).unwrap();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(events.len(), 1, "{backend:?}");
            assert!(events[0].readable && events[0].writable);
            poller.remove(rx.as_raw_fd()).unwrap();
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(events.is_empty(), "{backend:?}: removed fd must not wake");
        }
    }

    #[test]
    fn hangup_reports_readable() {
        for backend in backends() {
            let poller = Poller::with_backend(backend).unwrap();
            let (tx, rx) = pair();
            rx.set_nonblocking(true).unwrap();
            poller.add(rx.as_raw_fd(), 3, Interest::READ).unwrap();
            drop(tx);
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(events.len(), 1, "{backend:?}");
            assert!(events[0].readable, "hang-up folds into readable");
            let mut buf = [0u8; 1];
            let mut rx = rx;
            assert_eq!(rx.read(&mut buf).unwrap(), 0, "reads as EOF");
        }
    }

    #[test]
    fn notify_wakes_a_blocked_wait_from_another_thread() {
        for backend in backends() {
            let poller = std::sync::Arc::new(Poller::with_backend(backend).unwrap());
            let waker = poller.clone();
            let start = Instant::now();
            let handle = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                waker.notify().unwrap();
            });
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(30)))
                .unwrap();
            handle.join().unwrap();
            assert!(events.is_empty(), "waker delivers no caller event");
            assert!(
                start.elapsed() < Duration::from_secs(5),
                "{backend:?}: notify must cut the 30 s timeout short"
            );
        }
    }

    #[test]
    fn notifies_coalesce_and_do_not_stack() {
        for backend in backends() {
            let poller = Poller::with_backend(backend).unwrap();
            for _ in 0..1000 {
                poller.notify().unwrap();
            }
            let mut events = Vec::new();
            // the burst collapses into (at most a few) immediate wakeups,
            // after which waits block again
            poller
                .wait(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            let start = Instant::now();
            poller
                .wait(&mut events, Some(Duration::from_millis(40)))
                .unwrap();
            assert!(
                start.elapsed() >= Duration::from_millis(30),
                "{backend:?}: stale notifies must not keep waking"
            );
        }
    }

    #[test]
    fn waker_key_is_reserved() {
        for backend in backends() {
            let poller = Poller::with_backend(backend).unwrap();
            let (_tx, rx) = pair();
            assert!(poller
                .add(rx.as_raw_fd(), WAKER_KEY, Interest::READ)
                .is_err());
            assert!(poller
                .modify(rx.as_raw_fd(), WAKER_KEY, Interest::READ)
                .is_err());
        }
    }

    #[test]
    fn epoll_is_the_linux_default() {
        assert_eq!(
            Poller::new().unwrap().backend(),
            Backend::platform_default()
        );
        if cfg!(target_os = "linux") {
            assert_eq!(Backend::platform_default(), Backend::Epoll);
        }
    }
}
