//! Offline stand-in for `rand`.
//!
//! Deterministic PRNG support for the subset of the API this workspace
//! uses: `StdRng::seed_from_u64`, `random_range` over integer ranges
//! (via [`RngExt`]), and `SliceRandom::shuffle`. The generator is
//! xoshiro256++ seeded through splitmix64 — high-quality enough for
//! synthetic data and shuffle orders, not for cryptography.

use std::ops::{Bound, RangeBounds};

/// Core interface: a stream of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform `u64`.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait RngExt: RngCore {
    /// Uniform sample from an integer range (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics on an empty range, like the real crate.
    fn random_range<T: SampleUniform, R: RangeBounds<T>>(&mut self, range: R) -> T {
        T::sample(self, &range)
    }

    /// Uniform `bool`.
    fn random_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore + ?Sized> RngExt for T {}

/// Types samplable uniformly from a range.
pub trait SampleUniform: Sized {
    /// Sample uniformly from `range` using `rng`.
    fn sample<G: RngCore + ?Sized, R: RangeBounds<Self>>(rng: &mut G, range: &R) -> Self;
}

fn sample_span<G: RngCore + ?Sized>(rng: &mut G, lo: i128, hi: i128) -> i128 {
    assert!(lo < hi, "cannot sample from an empty range");
    let span = (hi - lo) as u128;
    // rejection sampling over the widest zone divisible by span
    let zone = (u128::from(u64::MAX) + 1) / span * span;
    loop {
        let v = rng.next_u64() as u128;
        if v < zone {
            return lo + (v % span) as i128;
        }
    }
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<G: RngCore + ?Sized, R: RangeBounds<Self>>(rng: &mut G, range: &R) -> Self {
                let lo: i128 = match range.start_bound() {
                    Bound::Included(&n) => n as i128,
                    Bound::Excluded(&n) => n as i128 + 1,
                    Bound::Unbounded => <$t>::MIN as i128,
                };
                let hi: i128 = match range.end_bound() {
                    Bound::Included(&n) => n as i128 + 1,
                    Bound::Excluded(&n) => n as i128,
                    Bound::Unbounded => <$t>::MAX as i128 + 1,
                };
                sample_span(rng, lo, hi) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<G: RngCore + ?Sized, R: RangeBounds<Self>>(rng: &mut G, range: &R) -> Self {
                let lo = match range.start_bound() {
                    Bound::Included(&n) | Bound::Excluded(&n) => n,
                    Bound::Unbounded => 0.0,
                };
                let hi = match range.end_bound() {
                    Bound::Included(&n) | Bound::Excluded(&n) => n,
                    Bound::Unbounded => 1.0,
                };
                assert!(lo < hi, "cannot sample from an empty range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                (lo as f64 + unit * (hi as f64 - lo as f64)) as $t
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Shuffling for slices.
pub mod seq {
    use super::{RngCore, RngExt};

    /// Slice extension: in-place Fisher–Yates shuffle.
    pub trait SliceRandom {
        /// Shuffle the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256++ seeded via splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro forbids the all-zero state
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E3779B97F4A7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u32> = (0..16).map(|_| a.random_range(0u32..1000)).collect();
        let ys: Vec<u32> = (0..16).map(|_| b.random_range(0u32..1000)).collect();
        let zs: Vec<u32> = (0..16).map(|_| c.random_range(0u32..1000)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(3usize..=5);
            assert!((3..=5).contains(&w));
        }
        assert_eq!(rng.random_range(4u32..5), 4);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut v: Vec<usize> = (0..100).collect();
        let mut rng = StdRng::seed_from_u64(3);
        v.shuffle(&mut rng);
        assert_ne!(v, (0..100).collect::<Vec<_>>());
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }
}
