//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of this workspace's `serde::Serialize` /
//! `serde::Deserialize` traits (a collapsed JSON-value data model) for
//! structs and enums. The parser walks raw token trees — no `syn`/`quote`
//! available offline — and supports exactly the shapes this codebase
//! declares: named/tuple/unit structs, enums with unit/newtype/tuple/
//! struct variants, `#[serde(rename_all = "lowercase")]`,
//! `#[serde(default)]` and `#[serde(default = "path")]`. Generics are
//! rejected with a clear error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone)]
enum DefaultAttr {
    None,
    Std,
    Path(String),
}

#[derive(Debug, Clone)]
struct Field {
    name: String,
    default: DefaultAttr,
}

#[derive(Debug, Clone)]
enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

#[derive(Debug, Clone)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum ItemKind {
    Struct(Fields),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Item {
    name: String,
    rename_all: Option<String>,
    kind: ItemKind,
}

// ---------------------------------------------------------------------
// token-tree parsing
// ---------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn is_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    fn is_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == word)
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive: expected {what}, found {other:?}"),
        }
    }

    /// Skip attributes, returning serde `(key, value)` metas found in them.
    fn take_attrs(&mut self) -> Vec<(String, Option<String>)> {
        let mut metas = Vec::new();
        while self.is_punct('#') {
            self.next();
            let group = match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
                other => panic!("serde_derive: malformed attribute: {other:?}"),
            };
            let mut inner = Cursor::new(group.stream());
            if inner.is_ident("serde") {
                inner.next();
                if let Some(TokenTree::Group(args)) = inner.next() {
                    metas.extend(parse_serde_metas(args.stream()));
                }
            }
        }
        metas
    }

    fn skip_visibility(&mut self) {
        if self.is_ident("pub") {
            self.next();
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.next();
                }
            }
        }
    }

    /// Consume type tokens until a top-level `,` (angle-bracket aware).
    fn skip_type(&mut self) {
        let mut angle = 0i32;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => return,
                _ => {}
            }
            self.next();
        }
    }
}

/// Parse `rename_all = "lowercase"`, `default`, `default = "path"`, ...
fn parse_serde_metas(stream: TokenStream) -> Vec<(String, Option<String>)> {
    let mut cur = Cursor::new(stream);
    let mut out = Vec::new();
    while !cur.at_end() {
        let key = match cur.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            Some(_) => continue,
            None => break,
        };
        let mut value = None;
        if cur.is_punct('=') {
            cur.next();
            if let Some(TokenTree::Literal(lit)) = cur.next() {
                value = Some(strip_quotes(&lit.to_string()));
            }
        }
        out.push((key, value));
        if cur.is_punct(',') {
            cur.next();
        }
    }
    out
}

fn strip_quotes(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

fn field_default(metas: &[(String, Option<String>)]) -> DefaultAttr {
    for (key, value) in metas {
        if key == "default" {
            return match value {
                Some(path) => DefaultAttr::Path(path.clone()),
                None => DefaultAttr::Std,
            };
        }
    }
    DefaultAttr::None
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut cur = Cursor::new(stream);
    let mut fields = Vec::new();
    while !cur.at_end() {
        let metas = cur.take_attrs();
        cur.skip_visibility();
        if cur.at_end() {
            break;
        }
        let name = cur.expect_ident("field name");
        match cur.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field `{name}`, found {other:?}"),
        }
        cur.skip_type();
        if cur.is_punct(',') {
            cur.next();
        }
        fields.push(Field {
            name,
            default: field_default(&metas),
        });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut cur = Cursor::new(stream);
    if cur.at_end() {
        return 0;
    }
    let mut count = 1;
    let mut angle = 0i32;
    while let Some(t) = cur.next() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p)
                if p.as_char() == ',' && angle == 0
                // trailing comma adds no field
                && !cur.at_end() =>
            {
                count += 1;
            }
            _ => {}
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut cur = Cursor::new(stream);
    let mut variants = Vec::new();
    while !cur.at_end() {
        let _metas = cur.take_attrs(); // #[default] etc. — inert here
        if cur.at_end() {
            break;
        }
        let name = cur.expect_ident("variant name");
        let fields = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                cur.next();
                Fields::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(g.stream());
                cur.next();
                Fields::Named(f)
            }
            _ => Fields::Unit,
        };
        if cur.is_punct(',') {
            cur.next();
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut cur = Cursor::new(input);
    let container_metas = cur.take_attrs();
    let rename_all = container_metas
        .iter()
        .find(|(k, _)| k == "rename_all")
        .and_then(|(_, v)| v.clone());
    cur.skip_visibility();
    let keyword = cur.expect_ident("`struct` or `enum`");
    let name = cur.expect_ident("type name");
    if cur.is_punct('<') {
        panic!("serde_derive: generic type `{name}` is not supported by the offline stand-in");
    }
    match keyword.as_str() {
        "struct" => match cur.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item {
                name,
                rename_all,
                kind: ItemKind::Struct(Fields::Named(parse_named_fields(g.stream()))),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Item {
                name,
                rename_all,
                kind: ItemKind::Struct(Fields::Tuple(count_tuple_fields(g.stream()))),
            },
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item {
                name,
                rename_all,
                kind: ItemKind::Struct(Fields::Unit),
            },
            other => panic!("serde_derive: unexpected token after struct name: {other:?}"),
        },
        "enum" => match cur.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item {
                name,
                rename_all,
                kind: ItemKind::Enum(parse_variants(g.stream())),
            },
            other => panic!("serde_derive: expected enum body, found {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

fn rename(name: &str, rule: &Option<String>) -> String {
    match rule.as_deref() {
        Some("lowercase") => name.to_lowercase(),
        Some("UPPERCASE") => name.to_uppercase(),
        Some(other) => panic!("serde_derive: unsupported rename_all rule {other:?}"),
        None => name.to_string(),
    }
}

// ---------------------------------------------------------------------
// codegen
// ---------------------------------------------------------------------

fn gen_named_to_value(fields: &[Field], access: &str, rule: &Option<String>) -> String {
    let mut s = String::from("{ let mut __obj: Vec<(String, ::serde::Value)> = Vec::new(); ");
    for f in fields {
        let key = rename(&f.name, rule);
        s.push_str(&format!(
            "__obj.push((\"{key}\".to_string(), ::serde::Serialize::to_value({access}{field})));",
            field = f.name
        ));
    }
    s.push_str(" ::serde::Value::Object(__obj) }");
    s
}

fn gen_named_from_value(
    type_path: &str,
    fields: &[Field],
    source: &str,
    rule: &Option<String>,
) -> String {
    let mut s = format!("{type_path} {{ ");
    for f in fields {
        let key = rename(&f.name, rule);
        let missing = match &f.default {
            DefaultAttr::None => {
                format!("::serde::Deserialize::from_missing_field(\"{key}\")?")
            }
            DefaultAttr::Std => "::std::default::Default::default()".to_string(),
            DefaultAttr::Path(p) => format!("{p}()"),
        };
        s.push_str(&format!(
            "{field}: match {source}.get(\"{key}\") {{ \
               Some(__x) => ::serde::Deserialize::from_value(__x)?, \
               None => {missing} }}, ",
            field = f.name
        ));
    }
    s.push('}');
    s
}

fn derive_serialize_impl(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(Fields::Named(fields)) => {
            gen_named_to_value(fields, "&self.", &item.rename_all)
        }
        ItemKind::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        ItemKind::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        ItemKind::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        ItemKind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let tag = rename(&v.name, &item.rename_all);
                let arm = match &v.fields {
                    Fields::Unit => format!(
                        "{name}::{var} => ::serde::Value::String(\"{tag}\".to_string()),",
                        var = v.name
                    ),
                    Fields::Tuple(1) => format!(
                        "{name}::{var}(__f0) => ::serde::Value::Object(vec![(\"{tag}\".to_string(), ::serde::Serialize::to_value(__f0))]),",
                        var = v.name
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let vals: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        format!(
                            "{name}::{var}({binds}) => ::serde::Value::Object(vec![(\"{tag}\".to_string(), ::serde::Value::Array(vec![{vals}]))]),",
                            var = v.name,
                            binds = binds.join(", "),
                            vals = vals.join(", ")
                        )
                    }
                    Fields::Named(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let inner = gen_named_to_value(fields, "", &None);
                        format!(
                            "{name}::{var} {{ {binds} }} => ::serde::Value::Object(vec![(\"{tag}\".to_string(), {inner})]),",
                            var = v.name,
                            binds = binds.join(", ")
                        )
                    }
                };
                arms.push_str(&arm);
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{ \
           fn to_value(&self) -> ::serde::Value {{ {body} }} \
         }}"
    )
}

fn derive_deserialize_impl(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(Fields::Named(fields)) => {
            let build = gen_named_from_value(name, fields, "__v", &item.rename_all);
            format!(
                "if __v.as_object().is_none() {{ \
                   return ::std::result::Result::Err(::serde::Error::custom(format!( \
                     \"expected object for {name}, got {{}}\", __v.kind()))); \
                 }} \
                 ::std::result::Result::Ok({build})"
            )
        }
        ItemKind::Struct(Fields::Tuple(1)) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        ItemKind::Struct(Fields::Tuple(n)) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "let __items = __v.as_array().ok_or_else(|| ::serde::Error::custom( \
                   \"expected array for {name}\"))?; \
                 if __items.len() != {n} {{ \
                   return ::std::result::Result::Err(::serde::Error::custom( \
                     format!(\"expected {n} elements for {name}, got {{}}\", __items.len()))); \
                 }} \
                 ::std::result::Result::Ok({name}({elems}))",
                elems = elems.join(", ")
            )
        }
        ItemKind::Struct(Fields::Unit) => {
            format!("::std::result::Result::Ok({name})")
        }
        ItemKind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let tag = rename(&v.name, &item.rename_all);
                match &v.fields {
                    Fields::Unit => unit_arms.push_str(&format!(
                        "\"{tag}\" => ::std::result::Result::Ok({name}::{var}),",
                        var = v.name
                    )),
                    Fields::Tuple(1) => data_arms.push_str(&format!(
                        "\"{tag}\" => ::std::result::Result::Ok({name}::{var}(::serde::Deserialize::from_value(__content)?)),",
                        var = v.name
                    )),
                    Fields::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| {
                                format!("::serde::Deserialize::from_value(&__items[{i}])?")
                            })
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{tag}\" => {{ \
                               let __items = __content.as_array().ok_or_else(|| \
                                 ::serde::Error::custom(\"expected array for {name}::{var}\"))?; \
                               if __items.len() != {n} {{ \
                                 return ::std::result::Result::Err(::serde::Error::custom( \
                                   \"wrong tuple arity for {name}::{var}\")); \
                               }} \
                               ::std::result::Result::Ok({name}::{var}({elems})) }},",
                            var = v.name,
                            elems = elems.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let build = gen_named_from_value(
                            &format!("{name}::{var}", var = v.name),
                            fields,
                            "__content",
                            &None,
                        );
                        data_arms.push_str(&format!(
                            "\"{tag}\" => {{ \
                               if __content.as_object().is_none() {{ \
                                 return ::std::result::Result::Err(::serde::Error::custom( \
                                   \"expected object for {name}::{var}\")); \
                               }} \
                               ::std::result::Result::Ok({build}) }},",
                            var = v.name,
                        ));
                    }
                }
            }
            format!(
                "match __v {{ \
                   ::serde::Value::String(__s) => match __s.as_str() {{ \
                     {unit_arms} \
                     __other => ::std::result::Result::Err(::serde::Error::custom( \
                       format!(\"unknown variant {{__other:?}} of {name}\"))), \
                   }}, \
                   ::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{ \
                     let (__tag, __content) = &__pairs[0]; \
                     match __tag.as_str() {{ \
                       {data_arms} \
                       __other => ::std::result::Result::Err(::serde::Error::custom( \
                         format!(\"unknown variant {{__other:?}} of {name}\"))), \
                     }} \
                   }}, \
                   __other => ::std::result::Result::Err(::serde::Error::custom( \
                     format!(\"expected {name} variant, got {{}}\", __other.kind()))), \
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{ \
           fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }} \
         }}"
    )
}

/// Derive `serde::Serialize` (offline stand-in).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    derive_serialize_impl(&item)
        .parse()
        .expect("serde_derive: generated invalid Serialize impl")
}

/// Derive `serde::Deserialize` (offline stand-in).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    derive_deserialize_impl(&item)
        .parse()
        .expect("serde_derive: generated invalid Deserialize impl")
}
