//! Offline stand-in for `parking_lot`.
//!
//! Thin wrappers over `std::sync` primitives exposing parking_lot's
//! poison-free API (`lock()`/`read()`/`write()` return guards directly).
//! A poisoned std lock — a thread panicked while holding it — ignores the
//! poison and returns the inner guard, matching parking_lot's behaviour of
//! not tracking poisoning at all.

use std::fmt;

/// Mutual exclusion lock.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// Reader-writer lock.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
