//! Offline stand-in for `serde`.
//!
//! The real serde separates the data model from formats; this workspace
//! only ever serializes to JSON, so the stand-in collapses the two:
//! [`Serialize`] renders into a JSON [`Value`] tree and [`Deserialize`]
//! reads back out of one. The `serde_derive` proc-macro generates both
//! impls for structs and enums (external enum tagging, `rename_all`,
//! field `default`s — the subset this codebase uses). `serde_json` in
//! this workspace is the matching parser/printer over [`Value`].

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A JSON string.
    String(String),
    /// A JSON array.
    Array(Vec<Value>),
    /// A JSON object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

/// A JSON number, preserving 64-bit integer fidelity (sample ids use the
/// full `u64` range and must not round-trip through `f64`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Unsigned integer.
    U(u64),
    /// Negative integer.
    I(i64),
    /// Floating point.
    F(f64),
}

impl Number {
    /// View as `f64` (lossy for huge integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U(n) => n as f64,
            Number::I(n) => n as f64,
            Number::F(n) => n,
        }
    }

    /// View as `u64` when representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U(n) => Some(n),
            Number::I(n) if n >= 0 => Some(n as u64),
            Number::F(n) if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 => Some(n as u64),
            _ => None,
        }
    }

    /// View as `i64` when representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U(n) if n <= i64::MAX as u64 => Some(n as i64),
            Number::U(_) => None,
            Number::I(n) => Some(n),
            Number::F(n) if n.fract() == 0.0 && n.abs() <= i64::MAX as f64 => Some(n as i64),
            Number::F(_) => None,
        }
    }
}

impl Value {
    /// The object entries, when this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Short label for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Build an error from any message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Render into the JSON data model.
pub trait Serialize {
    /// Build the [`Value`] tree for `self`.
    fn to_value(&self) -> Value;
}

/// Rebuild from the JSON data model.
pub trait Deserialize: Sized {
    /// Parse `self` out of a [`Value`].
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// Called for struct fields absent from the document. `Option`
    /// defaults to `None` (mirroring serde's `missing_field` behaviour);
    /// everything else errors unless the field carries `#[serde(default)]`.
    fn from_missing_field(field: &str) -> Result<Self, Error> {
        Err(Error::custom(format!("missing field `{field}`")))
    }
}

// ---------------------------------------------------------------------
// primitive impls
// ---------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected bool, got {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::Number(n) => n.as_u64(),
                    _ => None,
                }
                .ok_or_else(|| Error::custom(format!("expected unsigned integer, got {}", v.kind())))?;
                <$t>::try_from(n).map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::Number(Number::U(n as u64)) } else { Value::Number(Number::I(n)) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::Number(n) => n.as_i64(),
                    _ => None,
                }
                .ok_or_else(|| Error::custom(format!("expected integer, got {}", v.kind())))?;
                <$t>::try_from(n).map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::F(*self as f64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => Ok(n.as_f64() as $t),
                    other => Err(Error::custom(format!("expected number, got {}", other.kind()))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

// ---------------------------------------------------------------------
// containers
// ---------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Box::new(T::from_value(v)?))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
    fn from_missing_field(_field: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom(format!("expected array, got {}", v.kind())))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom(format!("expected array, got {}", v.kind())))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize + Eq + std::hash::Hash> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom(format!("expected array, got {}", v.kind())))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}
impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom(format!("expected object, got {}", v.kind())))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // sort for deterministic output
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}
impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom(format!("expected object, got {}", v.kind())))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v
                    .as_array()
                    .ok_or_else(|| Error::custom(format!("expected array, got {}", v.kind())))?;
                let expected = [$($n),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected {expected}-tuple, got {} elements",
                        items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$n])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_keep_u64_fidelity() {
        let big = u64::MAX - 3;
        let v = big.to_value();
        assert_eq!(u64::from_value(&v).unwrap(), big);
        assert!(i64::from_value(&v).is_err());
    }

    #[test]
    fn option_missing_field_defaults_to_none() {
        assert_eq!(Option::<String>::from_missing_field("x").unwrap(), None);
        assert!(String::from_missing_field("x").is_err());
    }

    #[test]
    fn containers_roundtrip() {
        let m: BTreeMap<String, Vec<u32>> =
            [("a".to_string(), vec![1, 2]), ("b".to_string(), vec![])]
                .into_iter()
                .collect();
        let back = BTreeMap::<String, Vec<u32>>::from_value(&m.to_value()).unwrap();
        assert_eq!(m, back);
        let t = ("x".to_string(), 3u8, true);
        assert_eq!(<(String, u8, bool)>::from_value(&t.to_value()).unwrap(), t);
    }
}
