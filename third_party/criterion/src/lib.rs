//! Offline stand-in for `criterion`.
//!
//! A minimal timed harness exposing the API surface the bench targets
//! use: `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! bench_function, finish}`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros. Each benchmark runs a
//! warmup iteration then `sample_size` timed iterations and prints
//! mean/min wall-clock. Invoked by `cargo test` (which passes `--test`
//! to harness-less targets), the main function exits without running
//! anything, like the real crate.

use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbench group: {name}");
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'c> BenchmarkGroup<'c> {
    /// Number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<S: Into<String>, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            iters: self.sample_size,
        };
        f(&mut bencher);
        let (mean, min) = bencher.summary();
        println!(
            "  {group}/{id}: mean {mean:?}, min {min:?} ({n} samples)",
            group = self.name,
            n = bencher.samples.len().max(1),
        );
        self
    }

    /// End the group.
    pub fn finish(&mut self) {}
}

/// How per-iteration inputs are sized (accepted for API compatibility;
/// the stand-in regenerates the input every iteration regardless).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small input: cheap to hold many copies.
    SmallInput,
    /// Large input: one copy at a time.
    LargeInput,
    /// Per-iteration allocation.
    PerIteration,
}

/// Timer handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    iters: usize,
}

impl Bencher {
    /// Time `f` over the configured number of iterations (plus one
    /// untimed warmup).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warmup
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }

    /// Time `routine` over fresh inputs from `setup`; only the routine is
    /// on the clock.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warmup
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    /// Like [`iter_batched`](Self::iter_batched) but hands the routine a
    /// mutable reference to the input.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        black_box(routine(&mut setup())); // warmup
        for _ in 0..self.iters {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            self.samples.push(start.elapsed());
        }
    }

    fn summary(&self) -> (Duration, Duration) {
        if self.samples.is_empty() {
            return (Duration::ZERO, Duration::ZERO);
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = *self.samples.iter().min().expect("non-empty");
        (mean, min)
    }
}

/// Whether this process was launched by `cargo test` rather than
/// `cargo bench` (cargo passes `--test` to harness-less bench targets).
pub fn invoked_as_test() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench binary's entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if $crate::invoked_as_test() {
                return; // compiled-and-run under `cargo test`: nothing to do
            }
            $( $group(); )+
        }
    };
}
