//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset of the real API this workspace uses: a cheaply
//! cloneable, contiguous byte buffer with zero-copy `slice`. Backed by an
//! `Arc<[u8]>` plus an `(offset, len)` window, except for `'static` data
//! which is borrowed directly.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
}

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared {
        data: Arc<[u8]>,
        offset: usize,
        len: usize,
    },
}

impl Bytes {
    /// An empty buffer.
    pub const fn new() -> Self {
        Bytes {
            repr: Repr::Static(&[]),
        }
    }

    /// Borrow static data without copying.
    pub const fn from_static(data: &'static [u8]) -> Self {
        Bytes {
            repr: Repr::Static(data),
        }
    }

    /// Copy a slice into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            repr: Repr::Shared {
                data: Arc::from(data),
                offset: 0,
                len: data.len(),
            },
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Static(s) => s.len(),
            Repr::Shared { len, .. } => *len,
        }
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Zero-copy sub-window of this buffer.
    ///
    /// # Panics
    /// Panics when the range is out of bounds, like the real crate.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            start <= end && end <= self.len(),
            "slice {start}..{end} out of bounds"
        );
        match &self.repr {
            Repr::Static(s) => Bytes {
                repr: Repr::Static(&s[start..end]),
            },
            Repr::Shared { data, offset, .. } => Bytes {
                repr: Repr::Shared {
                    data: data.clone(),
                    offset: offset + start,
                    len: end - start,
                },
            },
        }
    }

    /// Copy the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        match &self.repr {
            Repr::Static(s) => s,
            Repr::Shared { data, offset, len } => &data[*offset..*offset + *len],
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            repr: Repr::Shared {
                data: Arc::from(v.into_boxed_slice()),
                offset: 0,
                len,
            },
        }
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Self {
        let len = v.len();
        Bytes {
            repr: Repr::Shared {
                data: Arc::from(v),
                offset: 0,
                len,
            },
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::from_static(v.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == *other
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(64) {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        if self.len() > 64 {
            write!(f, "… ({} bytes)", self.len())?;
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_is_zero_copy_window() {
        let b = Bytes::from(vec![0u8, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(s, [2u8, 3, 4]);
        let s2 = s.slice(1..);
        assert_eq!(s2, [3u8, 4]);
    }

    #[test]
    fn static_and_owned_compare() {
        assert_eq!(Bytes::from_static(b"abc"), Bytes::from(b"abc".to_vec()));
        assert!(Bytes::new().is_empty());
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_slice_panics() {
        Bytes::from_static(b"ab").slice(0..3);
    }
}
