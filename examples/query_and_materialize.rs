//! TQL + views + materialization (§4.4-4.5): run the paper's Fig. 5-style
//! query, inspect the sparse view it produces, and materialize it into a
//! dense dataset optimized for streaming.
//!
//! ```sh
//! cargo run --example query_and_materialize
//! ```

use std::sync::Arc;

use deeplake::prelude::*;

fn main() {
    // a detection-style dataset: images + predicted boxes + ground truth
    let mut ds = Dataset::create(Arc::new(MemoryProvider::new()), "detection").unwrap();
    ds.create_tensor_opts("images", {
        let mut o = TensorOptions::new(Htype::Image);
        o.sample_compression = Some(Compression::None);
        o
    })
    .unwrap();
    ds.create_tensor("boxes", Htype::BBox, None).unwrap();
    ds.create_tensor("training/boxes", Htype::BBox, None)
        .unwrap();
    ds.create_tensor("labels", Htype::ClassLabel, None).unwrap();

    for i in 0..60u64 {
        let img = Sample::from_slice([64, 64, 3], &vec![(i * 4 % 255) as u8; 64 * 64 * 3]).unwrap();
        // predictions drift away from ground truth as i grows
        let pred = Sample::from_slice([1, 4], &[(i % 12) as f32, 0.0, 20.0, 20.0]).unwrap();
        let truth = Sample::from_slice([1, 4], &[0.0f32, 0.0, 20.0, 20.0]).unwrap();
        ds.append_row(vec![
            ("images", img),
            ("boxes", pred),
            ("training/boxes", truth),
            ("labels", Sample::scalar((i % 5) as i32)),
        ])
        .unwrap();
    }
    ds.flush().unwrap();

    // the paper's example query: crop images, normalize boxes, filter by
    // IOU against ground truth, order by the error, group by label
    let result = query(
        &ds,
        r#"SELECT images[8:56, 8:56, 0:2] AS crop,
                  NORMALIZE(boxes, [0, 0, 48, 48]) AS box
           FROM dataset
           WHERE IOU(boxes, "training/boxes") > 0.6
           ORDER BY IOU(boxes, "training/boxes")
           ARRANGE BY labels"#,
    )
    .unwrap();
    println!("query selected {} of {} rows", result.len(), ds.len());
    println!("output columns: {:?}", result.columns);

    // the result is a view — sparse relative to the source
    let view = result.view(&ds);
    println!(
        "view sparseness: {:.2} (1.0 = contiguous)",
        view.sparseness()
    );
    view.save("high-iou").unwrap();

    // materialize into a dense dataset: optimal chunk layout for training
    let (dense, stats) = materialize(
        &view,
        Arc::new(MemoryProvider::new()),
        "high-iou-dense",
        None,
    )
    .unwrap();
    println!(
        "materialized {} rows / {} bytes; dense sparseness: {:.2}",
        stats.rows,
        stats.bytes,
        DatasetView::full(&dense).sparseness()
    );

    // stream the materialized dataset
    let dense = Arc::new(dense);
    let loader = DataLoader::builder(dense)
        .batch_size(8)
        .num_workers(2)
        .build()
        .unwrap();
    let mut n = 0;
    for batch in loader.epoch() {
        n += batch.unwrap().len();
    }
    println!("streamed {n} dense rows");
}
