//! Cloud streaming (§5.1 / Fig. 9): train against simulated S3 and watch
//! GPU utilization stay high, then add an LRU cache tier (§3.6 provider
//! chaining) and watch the second epoch run at local speed.
//!
//! Loader workers use the **batched read path** by default: every task
//! builds one `ReadPlan` covering all the chunks its rows touch and the
//! provider chain executes it as a single round trip — the LRU tier fills
//! all misses with one base batch, and the simulated S3 below charges one
//! amortized first-byte latency per batch instead of one per chunk
//! (compare `.batched_io(false)`, or see `benches/streaming.rs` for the
//! A/B numbers).
//!
//! ```sh
//! cargo run --release --example cloud_streaming
//! ```

use std::sync::Arc;
use std::time::Instant;

use deeplake::prelude::*;
use deeplake::sim::datagen;
use deeplake::sim::gpu::GpuConsumer;

fn main() {
    // build a dataset on the backing store, then put a simulated S3 link
    // in front of it (20x faster than real time)
    let backing = Arc::new(MemoryProvider::new());
    let images = datagen::imagenet_like(400, 64, 1);
    {
        let mut ds = Dataset::create(backing.clone(), "cloud").unwrap();
        ds.create_tensor_opts("images", {
            let mut o = TensorOptions::new(Htype::Image);
            o.sample_compression = Some(Compression::JPEG_LIKE);
            o.chunk_target_bytes = Some(1 << 20);
            o
        })
        .unwrap();
        ds.create_tensor("labels", Htype::ClassLabel, None).unwrap();
        for img in &images {
            let sample = Sample::from_bytes(
                Dtype::U8,
                Shape::from([img.h as u64, img.w as u64, img.c as u64]),
                img.pixels.clone(),
            )
            .unwrap();
            ds.append_row(vec![
                ("images", sample),
                ("labels", Sample::scalar(img.label)),
            ])
            .unwrap();
        }
        ds.flush().unwrap();
        ds.commit("ingested").unwrap();
    }

    let s3 = SimulatedCloudProvider::new("s3", backing, NetworkProfile::s3().scaled(0.05));
    let cached = Arc::new(LruCacheProvider::new(s3, 256 << 20));
    let ds = Arc::new(Dataset::open(cached.clone()).unwrap());

    let loader = DataLoader::builder(ds)
        .batch_size(32)
        .num_workers(8)
        .prefetch(4)
        .shuffle(7)
        .build()
        .unwrap();

    for epoch_no in 0..2 {
        let mut gpu = GpuConsumer::new(4_000.0, 1.0);
        let start = Instant::now();
        for batch in loader.epoch() {
            gpu.consume(batch.unwrap().len());
        }
        let report = gpu.report();
        let stats = cached.stats();
        println!(
            "epoch {epoch_no}: {:>5.2}s wall, {:>4.0} img/s, GPU util {:>3.0}%, cache hit {:>3.0}%, \
             {} chunk reads in {} batches",
            start.elapsed().as_secs_f64(),
            report.images_per_sec(),
            report.utilization() * 100.0,
            stats.hit_ratio() * 100.0,
            stats.logical_reads(),
            stats.batch_requests(),
        );
    }
    println!(
        "cache after two epochs: {} objects / {:.1} MB resident",
        cached.cached_objects(),
        cached.cached_bytes() as f64 / 1e6
    );
}
