//! Serve a dataset over loopback TCP and query it remotely — both ways:
//! pulling chunks through the remote provider, and offloading the query
//! text to the server. Prints the round-trip and byte arithmetic that
//! makes the serving tier worthwhile.
//!
//! ```sh
//! cargo run --example remote_serving
//! ```

use std::sync::Arc;

use deeplake::prelude::*;
use deeplake::remote::RemoteOptions;
use deeplake::storage::DynProvider;
use deeplake::tql;

fn main() {
    // ---- build a dataset on the provider the server will mount ----
    let mounted: DynProvider = Arc::new(MemoryProvider::new());
    {
        let mut ds = Dataset::create(mounted.clone(), "zoo").unwrap();
        ds.create_tensor_opts("labels", {
            let mut o = TensorOptions::new(Htype::ClassLabel);
            o.chunk_target_bytes = Some(256); // many small chunks: pruning matters
            o
        })
        .unwrap();
        for i in 0..5_000u64 {
            // sorted classes 0..49 → chunk statistics prune equality filters
            ds.append_row(vec![("labels", Sample::scalar((i / 100) as i32))])
                .unwrap();
        }
        ds.flush().unwrap();
    }

    // ---- serve it ----
    let server = DatasetServer::bind("127.0.0.1:0", mounted).unwrap();
    println!("{}", server.describe());

    // the sim-latency transport: every wire round trip charges an
    // S3-like cost (scaled down 50x so the demo is quick)
    let transport = RemoteOptions {
        latency: Some(NetworkProfile::s3().scaled(0.02)),
        ..RemoteOptions::default()
    };
    let text = "SELECT labels FROM zoo WHERE labels = 7";

    // ---- way 1: open the dataset remotely and pull chunks ----
    let t = std::time::Instant::now();
    let puller = Arc::new(RemoteProvider::connect_with(server.addr(), transport).unwrap());
    let ds = Dataset::open(puller.clone()).unwrap();
    let pulled = tql::query(&ds, text).unwrap();
    println!(
        "chunk pull: {} rows in {:?} — {} round trips, {} wire bytes \
         ({} chunks pruned server-agnostically on the client)",
        pulled.len(),
        t.elapsed(),
        puller.stats().round_trips(),
        puller.stats().bytes_read() + puller.stats().bytes_written(),
        pulled.stats.chunks_pruned,
    );

    // ---- way 2: offload the query text to the server ----
    let t = std::time::Instant::now();
    let offloader = RemoteProvider::connect_with(server.addr(), transport).unwrap();
    let offloaded = offloader.query(text, &QueryOptions::default()).unwrap();
    println!(
        "offloaded:  {} rows in {:?} — {} round trip, {} wire bytes \
         (pruning ran next to the data)",
        offloaded.len(),
        t.elapsed(),
        offloader.stats().round_trips(),
        offloader.stats().bytes_read() + offloader.stats().bytes_written(),
    );

    assert_eq!(pulled.indices, offloaded.indices);
    println!("results identical — the wire is the only difference");
}
