//! One hub, many datasets, one cache: mount two datasets behind a
//! single listener, attach clients by name, and watch a repeated
//! version-pinned query collapse from a storage scan into a pure frame
//! copy. Prints the registry, isolation, and cache arithmetic.
//!
//! ```sh
//! cargo run --example hub_serving
//! ```

use std::sync::Arc;

use deeplake::hub::Hub;
use deeplake::prelude::*;
use deeplake::storage::DynProvider;

fn build_dataset(provider: DynProvider, name: &str, offset: i32) {
    let mut ds = Dataset::create(provider, name).unwrap();
    ds.create_tensor_opts("labels", {
        let mut o = TensorOptions::new(Htype::ClassLabel);
        o.chunk_target_bytes = Some(256); // many small chunks: pruning matters
        o
    })
    .unwrap();
    for i in 0..5_000u64 {
        ds.append_row(vec![("labels", Sample::scalar(offset + (i / 100) as i32))])
            .unwrap();
    }
    ds.flush().unwrap();
    ds.commit("ready to serve").unwrap();
}

fn main() {
    // ---- two datasets on separately-metered sim-cloud storage ----
    let mnist = Arc::new(SimulatedCloudProvider::new(
        "s3",
        MemoryProvider::new(),
        NetworkProfile::instant(),
    ));
    let laion = Arc::new(SimulatedCloudProvider::new(
        "s3",
        MemoryProvider::new(),
        NetworkProfile::instant(),
    ));
    build_dataset(mnist.clone(), "mnist", 0);
    build_dataset(laion.clone(), "laion", 1_000);

    // ---- one hub serves both ----
    let hub = Hub::builder()
        .mount("mnist", mnist.clone())
        .mount("laion", laion.clone())
        .bind("127.0.0.1:0")
        .unwrap();
    println!("{}", hub.describe());

    // ---- clients attach by name; everything above storage is unchanged ----
    let a = RemoteProvider::connect(hub.addr()).unwrap();
    a.attach("mnist").unwrap();
    let b = RemoteProvider::connect(hub.addr()).unwrap();
    b.attach("laion").unwrap();
    println!("datasets mounted: {:?}", a.list_datasets().unwrap());

    // isolation: the same query text answers from each client's own dataset
    let text = "SELECT labels FROM d WHERE labels = 7";
    let ra = a.query(text, &QueryOptions::default()).unwrap();
    let rb = b.query(text, &QueryOptions::default()).unwrap();
    println!(
        "attach(\"mnist\"): {} rows for labels = 7; attach(\"laion\"): {} rows (its labels start at 1000)",
        ra.len(),
        rb.len()
    );

    // ---- the result cache: first execution vs repeats ----
    let text = "SELECT labels FROM d WHERE labels = 9";
    mnist.stats().reset();
    let first = a.query(text, &QueryOptions::default()).unwrap();
    let first_rts = mnist.stats().round_trips();
    mnist.stats().reset();
    for _ in 0..100 {
        let again = a.query(text, &QueryOptions::default()).unwrap();
        assert_eq!(again.indices, first.indices);
    }
    println!(
        "query offload: first execution paid {} storage round trips; 100 repeats paid {} \
         (cache hit ratio {:.2}, {} bytes cached)",
        first_rts,
        mnist.stats().round_trips(),
        hub.cache().hit_ratio(),
        hub.cache().cached_bytes(),
    );

    // a formatting variant is the same canonical entry
    mnist.stats().reset();
    a.query(
        "select   labels from d  where labels=9",
        &QueryOptions::default(),
    )
    .unwrap();
    println!(
        "a whitespace/case variant of the query hit the same cache entry \
         ({} storage round trips)",
        mnist.stats().round_trips()
    );

    // ---- writes invalidate; committed versions stay pinned ----
    {
        let mut ds = Dataset::open(Arc::new({
            let c = RemoteProvider::connect(hub.addr()).unwrap();
            c.attach("mnist").unwrap();
            c
        }))
        .unwrap();
        ds.append_row(vec![("labels", Sample::scalar(9i32))])
            .unwrap();
        ds.flush().unwrap();
    }
    let refreshed = a.query(text, &QueryOptions::default()).unwrap();
    println!(
        "after an append through the hub the head query re-executes: {} rows (was {})",
        refreshed.len(),
        first.len()
    );

    drop(hub); // graceful: drains in-flight requests
    println!("hub shut down cleanly");
}
