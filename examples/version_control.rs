//! Data lineage and version control (§4.2 / §5.2): branch a dataset for an
//! annotation experiment, edit labels, diff the branches, and merge back
//! with conflict resolution — "like Git for code, Deep Lake introduces
//! the concept of data branches".
//!
//! ```sh
//! cargo run --example version_control
//! ```

use std::sync::Arc;

use deeplake::prelude::*;

fn main() {
    let mut ds = Dataset::create(Arc::new(MemoryProvider::new()), "vc-demo").unwrap();
    ds.create_tensor("labels", Htype::ClassLabel, None).unwrap();
    ds.create_tensor("notes", Htype::Text, None).unwrap();

    // main: ten rows, all labelled 0
    for i in 0..10 {
        ds.append_row(vec![
            ("labels", Sample::scalar(0i32)),
            ("notes", Sample::from_text(&format!("sample {i}"))),
        ])
        .unwrap();
    }
    let base = ds.commit("ten unlabelled samples").unwrap();
    println!("base commit: {base}");

    // annotator A works on a branch
    ds.checkout_new_branch("annotator-a").unwrap();
    for row in 0..5 {
        ds.update("labels", row, &Sample::scalar(1i32)).unwrap();
    }
    ds.commit("A labelled rows 0-4").unwrap();

    // meanwhile main gets more data and one conflicting edit
    ds.checkout("main").unwrap();
    ds.append_row(vec![("labels", Sample::scalar(9i32))])
        .unwrap();
    ds.update("labels", 0, &Sample::scalar(2i32)).unwrap(); // conflicts with A
    ds.commit("main added a row and relabelled row 0").unwrap();

    // diff the two branches
    let diff = ds.diff("main", "annotator-a").unwrap();
    println!("diff base {}:", diff.base);
    for d in &diff.left {
        println!(
            "  main      {}: +{} rows, ~{} rows",
            d.tensor, d.rows_added, d.rows_updated
        );
    }
    for d in &diff.right {
        println!(
            "  annotator {}: +{} rows, ~{} rows",
            d.tensor, d.rows_added, d.rows_updated
        );
    }

    // merge A's work; row 0 conflicts -> keep theirs (the annotator wins)
    let report = ds.merge("annotator-a", MergePolicy::Theirs).unwrap();
    println!(
        "merged: {} updates applied, {} conflicts resolved",
        report.updates_applied,
        report.conflicts.len()
    );
    assert_eq!(ds.get("labels", 0).unwrap().get_f64(0).unwrap(), 1.0);
    assert_eq!(ds.len(), 11);

    // time travel: the base commit still shows the original state
    ds.checkout(&base).unwrap();
    assert_eq!(ds.get("labels", 0).unwrap().get_f64(0).unwrap(), 0.0);
    assert_eq!(ds.len(), 10);
    println!("time travel to {base}: row 0 label = 0, rows = 10  ✓");

    ds.checkout("main").unwrap();
    println!("log:");
    for (id, message, _) in ds.log().unwrap() {
        println!("  {id}  {message}");
    }
}
