//! Chunk-statistics predicate pushdown, end to end: write a dataset whose
//! scalar chunks carry min/max statistics, run selective queries over
//! simulated S3, and watch the executor skip chunks — and storage round
//! trips — the filter cannot match.
//!
//! ```sh
//! cargo run --example query_pruning
//! ```

use std::sync::Arc;

use deeplake::prelude::*;
use deeplake::tql::{execute, parser, QueryOptions};

fn main() {
    // ---- write: per-chunk statistics are recorded at append time ----
    //
    // Labels arrive roughly sorted (a common ingest pattern: per-class
    // folders), so each small label chunk covers a narrow value range —
    // exactly what interval pruning thrives on.
    let backing = Arc::new(MemoryProvider::new());
    let mut ds = Dataset::create(backing.clone(), "animals").unwrap();
    ds.create_tensor_opts("labels", {
        let mut o = TensorOptions::new(Htype::ClassLabel);
        o.chunk_target_bytes = Some(128); // tiny chunks for the demo
        o
    })
    .unwrap();
    ds.create_tensor_opts("images", {
        let mut o = TensorOptions::new(Htype::Image);
        o.sample_compression = Some(Compression::None);
        o
    })
    .unwrap();
    let rows = 1000u64;
    for i in 0..rows {
        ds.append_row(vec![
            ("labels", Sample::scalar((i * 20 / rows) as i32)), // classes 0..20
            (
                "images",
                Sample::from_slice([16, 16, 3], &[(i % 251) as u8; 768]).unwrap(),
            ),
        ])
        .unwrap();
    }
    ds.flush().unwrap();

    // ---- query over simulated S3, counting storage round trips ----
    let sim = Arc::new(SimulatedCloudProvider::new(
        "s3",
        backing,
        NetworkProfile::instant(),
    ));

    for text in [
        "SELECT * FROM animals WHERE labels = 7",  // ~5% selective
        "SELECT * FROM animals WHERE labels < 3",  // ~15%
        "SELECT * FROM animals WHERE labels >= 0", // everything
        "SELECT * FROM animals WHERE CONTAINS(labels, 19)",
    ] {
        let q = parser::parse(text).unwrap();

        // fresh handles per run: each measurement starts cold, nothing
        // served from the previous query's decoded-chunk memo
        let ds = Dataset::open(sim.clone()).unwrap();
        sim.stats().reset();
        let pruned = execute(&ds, &q, &QueryOptions::default()).unwrap();
        let pruned_trips = sim.stats().round_trips();

        let ds = Dataset::open(sim.clone()).unwrap();
        sim.stats().reset();
        let full = execute(
            &ds,
            &q,
            &QueryOptions {
                pruning: false,
                ..Default::default()
            },
        )
        .unwrap();
        let full_trips = sim.stats().round_trips();
        assert_eq!(pruned.indices, full.indices, "pushdown is result-identical");

        let s = pruned.stats;
        println!("{text}");
        println!(
            "  {} rows | spans: {} pruned, {} matched whole, {} scanned | \
             round trips: {} pruned vs {} full-scan",
            pruned.len(),
            s.chunks_pruned,
            s.chunks_matched,
            s.chunks_scanned,
            pruned_trips,
            full_trips,
        );
    }

    // The pruned result is still just a view: stream it to training.
    let ds = Arc::new(Dataset::open(sim.clone()).unwrap());
    let result = query(&ds, "SELECT * FROM animals WHERE labels = 7").unwrap();
    let view = result.view(&ds);
    let loader = DataLoader::builder(ds.clone())
        .view(&view)
        .batch_size(16)
        .build()
        .unwrap();
    let streamed: usize = loader.epoch().map(|b| b.unwrap().len()).sum();
    println!("streamed {streamed} matching rows straight from the pruned view");
}
