//! Vector similarity search, end to end: store embeddings, build an IVF
//! index, run `ORDER BY <similarity> LIMIT k` queries both exactly and
//! approximately over simulated S3, and stream the top-k result to the
//! dataloader.
//!
//! ```sh
//! cargo run --example vector_search
//! ```

use std::sync::Arc;
use std::time::Instant;

use deeplake::prelude::*;
use deeplake::tql::{execute, parser};

const DIM: u64 = 32;
const CLUSTERS: u64 = 16;
const PER_CLUSTER: u64 = 250;

fn embedding(cluster: u64, i: u64) -> Sample {
    let mut v = vec![0.0f32; DIM as usize];
    v[0] = cluster as f32 * 20.0 + (i % 9) as f32 * 0.05;
    v[1] = cluster as f32 * 20.0 - (i % 5) as f32 * 0.05;
    v[DIM as usize - 1] = 1.0;
    Sample::from_slice([DIM], &v).unwrap()
}

fn main() {
    // ---- write: 4000 embeddings in 16 separable clusters ----
    let backing = Arc::new(MemoryProvider::new());
    let mut ds = Dataset::create(backing.clone(), "gallery").unwrap();
    ds.create_tensor_opts("emb", {
        let mut o = TensorOptions::new(Htype::Embedding);
        o.chunk_target_bytes = Some(4 << 10); // small chunks for the demo
        o
    })
    .unwrap();
    ds.create_tensor("labels", Htype::ClassLabel, None).unwrap();
    for i in 0..CLUSTERS * PER_CLUSTER {
        let c = i / PER_CLUSTER;
        ds.append_row(vec![
            ("emb", embedding(c, i)),
            ("labels", Sample::scalar(c as i32)),
        ])
        .unwrap();
    }
    ds.flush().unwrap();

    // ---- build the IVF index: k-means centroids + posting lists ----
    let report = ds
        .build_vector_index(
            "emb",
            &IndexSpec {
                nlist: Some(CLUSTERS as usize),
                ..IndexSpec::default()
            },
        )
        .unwrap();
    println!(
        "built {:?} index over {} rows (dim {}, {} clusters)\n",
        report.kind, report.rows, report.dim, report.clusters
    );
    ds.flush().unwrap();

    // ---- query over simulated S3: exact flat scan vs ANN probe ----
    let sim = Arc::new(SimulatedCloudProvider::new(
        "s3",
        backing,
        NetworkProfile::instant(),
    ));
    let mut target = vec![0.0f64; DIM as usize];
    target[0] = 140.0; // cluster 7's center
    target[1] = 140.0;
    target[DIM as usize - 1] = 1.0;
    let parts: Vec<String> = target.iter().map(|x| format!("{x}")).collect();
    let text = format!(
        "SELECT * FROM gallery ORDER BY L2_DISTANCE(emb, [{}]) LIMIT 10",
        parts.join(", ")
    );
    let q = parser::parse(&text).unwrap();

    let ds = Dataset::open(sim.clone()).unwrap();
    sim.stats().reset();
    let t0 = Instant::now();
    let exact = execute(&ds, &q, &QueryOptions::default()).unwrap();
    let exact_elapsed = t0.elapsed();
    let exact_trips = sim.stats().round_trips();

    let ds = Dataset::open(sim.clone()).unwrap();
    ds.vector_index("emb").expect("index resolves over S3");
    sim.stats().reset();
    let t0 = Instant::now();
    let ann = execute(
        &ds,
        &q,
        &QueryOptions {
            ann: true,
            nprobe: 2,
            ..Default::default()
        },
    )
    .unwrap();
    let ann_elapsed = t0.elapsed();
    let ann_trips = sim.stats().round_trips();

    assert_eq!(
        exact.indices, ann.indices,
        "separable clusters: same top-10"
    );
    println!("query: 10 nearest neighbours of cluster 7's center");
    println!(
        "  exact flat scan: {} candidates re-ranked, {} round trips, {:?}",
        exact.stats.candidates_reranked, exact_trips, exact_elapsed
    );
    println!(
        "  IVF nprobe=2:    {} candidates re-ranked ({} clusters probed), \
         {} round trips, {:?}",
        ann.stats.candidates_reranked, ann.stats.clusters_probed, ann_trips, ann_elapsed
    );
    println!("  identical top-10: rows {:?}\n", ann.indices);

    // ---- consume: the top-k view streams straight into training ----
    let ds = Arc::new(Dataset::open(sim.clone()).unwrap());
    let result = query(&ds, &text).unwrap();
    let view = result.view(&ds);
    let loader = DataLoader::builder(ds.clone())
        .view(&view)
        .batch_size(4)
        .build()
        .unwrap();
    let streamed: usize = loader.epoch().map(|b| b.unwrap().len()).sum();
    println!("streamed {streamed} nearest-neighbour rows through the dataloader");
}
