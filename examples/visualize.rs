//! The visualizer's data layer (§4.3): htype-driven layout planning,
//! downsampled pyramid tensors, overlay rendering to PPM, and sequence
//! seeking.
//!
//! ```sh
//! cargo run --example visualize
//! ```

use std::sync::Arc;

use deeplake::prelude::*;
use deeplake::viz;

fn main() {
    let mut ds = Dataset::create(Arc::new(MemoryProvider::new()), "viz-demo").unwrap();
    ds.create_tensor_opts("images", {
        let mut o = TensorOptions::new(Htype::Image);
        o.sample_compression = Some(Compression::None);
        o
    })
    .unwrap();
    ds.create_tensor("boxes", Htype::BBox, None).unwrap();
    ds.create_tensor("labels", Htype::ClassLabel, None).unwrap();
    let mut seq_opts = TensorOptions::new(Htype::parse("sequence[image]").unwrap());
    seq_opts.dtype = Some(Dtype::U8);
    ds.create_tensor_opts("clips", seq_opts).unwrap();

    // one annotated frame + an 8-frame clip
    let img = Sample::from_slice([64, 64, 3], &vec![90u8; 64 * 64 * 3]).unwrap();
    let boxes =
        Sample::from_slice([2, 4], &[8.0f32, 8.0, 20.0, 16.0, 40.0, 30.0, 18.0, 24.0]).unwrap();
    let mut clip_data = Vec::new();
    for f in 0..8u8 {
        clip_data.extend(std::iter::repeat_n(f * 30, 16 * 16 * 3));
    }
    let clip = Sample::from_slice([8, 16, 16, 3], &clip_data).unwrap();
    ds.append_row(vec![
        ("images", img),
        ("boxes", boxes),
        ("labels", Sample::scalar(2i32)),
        ("clips", clip),
    ])
    .unwrap();
    ds.flush().unwrap();

    // 1. layout plan from htypes
    let plan = viz::plan_layout(&ds);
    println!("layout plan:\n{}", plan.to_json());

    // 2. downsampled pyramid in hidden tensors
    viz::build_pyramid(&mut ds, "images", 2).unwrap();
    let thumb = viz::downsample::fetch_for_viewport(&ds, "images", 0, 16, 2).unwrap();
    println!(
        "viewport fetch for 16px thumbnail -> {} tensor",
        thumb.shape()
    );

    // 3. render the frame with overlays and write a PPM
    let frame = viz::render_frame(&ds, &plan, 0).unwrap();
    let path = std::env::temp_dir().join("deeplake_viz_frame.ppm");
    std::fs::write(&path, frame.to_ppm()).unwrap();
    println!(
        "rendered {}x{} frame with captions {:?} -> {}",
        frame.w,
        frame.h,
        frame.captions,
        path.display()
    );

    // 4. sequence seeking without fetching the whole clip
    let len = viz::sequence::sequence_len(&ds, "clips", 0).unwrap();
    let frame5 = viz::sequence::seek(&ds, "clips", 0, 5).unwrap();
    println!(
        "clip has {len} frames; frame 5 is {} (first pixel {})",
        frame5.shape(),
        frame5.to_vec::<u8>().unwrap()[0]
    );
}
