//! `dltop` — a terminal "top" for a hub fleet, built entirely from the
//! wire-visible observability surface: the `Health` opcode (liveness,
//! in-flight, queue depth), the `Metrics` opcode (counters, windowed
//! rates, latency quantiles), and the always-on flight recorder.
//!
//! The demo spins up a three-node cluster, drives query traffic AND a
//! background training loader streaming epochs, crashes a node WITHOUT
//! telling the membership map, and lets the client's health prober
//! discover the death — each refresh prints the fleet table an operator
//! would watch it happen in, with a `loader` row (rows/s, queue depth,
//! fetch quantiles) scraped live from `DataLoader::metrics()`.
//! Iterations are bounded so the example terminates (and stays
//! CI-safe).
//!
//! ```sh
//! cargo run --example dltop
//! ```

use std::sync::Arc;
use std::time::Duration;

use deeplake::cluster::Cluster;
use deeplake::obs::WINDOW_SECS;
use deeplake::prelude::*;
use deeplake::storage::DynProvider;

fn build_dataset(provider: DynProvider, rows: u64) {
    let mut ds = Dataset::create(provider, "dltop_demo").unwrap();
    ds.create_tensor_opts("labels", {
        let mut o = TensorOptions::new(Htype::ClassLabel);
        o.chunk_target_bytes = Some(256);
        o
    })
    .unwrap();
    for i in 0..rows {
        ds.append_row(vec![("labels", Sample::scalar((i / 50) as i32))])
            .unwrap();
    }
    ds.flush().unwrap();
}

fn main() {
    let seed: DynProvider = Arc::new(MemoryProvider::new());
    build_dataset(seed.clone(), 500);
    let mut cluster = Cluster::builder()
        .nodes(3)
        .replication(2)
        .dataset_from("hotset", seed)
        .build()
        .unwrap();
    let client = cluster.client().unwrap();
    let mount = Arc::new(client.open("hotset").unwrap());
    client.start_prober(Duration::from_millis(50));

    // background load so the windowed rates have something to show
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let load = {
        let mount = Arc::clone(&mount);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let text = "SELECT labels FROM d WHERE labels = 3";
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let _ = mount.query(text, &QueryOptions::default());
                std::thread::sleep(Duration::from_millis(2));
            }
        })
    };

    let addrs = cluster.addrs();
    let replicas = cluster.replica_nodes("hotset");
    let victim = replicas[0];

    // a training loader streaming epochs in the background over a
    // served mount on the SURVIVING replica: its lifetime registry is
    // what the `loader` table row scrapes
    let served =
        Arc::new(deeplake::remote::RemoteProvider::connect(addrs[replicas[1]].as_str()).unwrap());
    served.attach("hotset").unwrap();
    let train_ds = Arc::new(Dataset::open(served as DynProvider).unwrap());
    let loader = Arc::new(
        DataLoader::builder(train_ds)
            .batch_size(32)
            .num_workers(2)
            .tensors(["labels"])
            .build()
            .unwrap(),
    );
    let train = {
        let loader = Arc::clone(&loader);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                for batch in loader.epoch() {
                    if batch.is_err() || stop.load(std::sync::atomic::Ordering::Relaxed) {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(1)); // "GPU" step
                }
            }
        })
    };
    for tick in 0..6 {
        if tick == 3 {
            // an UN-observed failure: the hub dies, the map is not told
            // — only the prober's next round makes it fleet-visible
            println!(
                "\n!! node {} ({}) crashes (map not told)",
                victim, addrs[victim]
            );
            cluster.crash(victim);
        }

        println!("\n─── dltop, refresh {tick} ───");
        println!(
            "{:<22} {:>5}  {:>9} {:>6}  {:>8} {:>8}  {:>9}",
            "node", "live", "in_flight", "queue", "queries", "q/s(10s)", "p99(10s)"
        );
        let live_now = cluster.map().read().live_addrs();
        for addr in &addrs {
            // per-node scrape over the wire, exactly what a real dltop
            // would do; a dead node simply fails to answer
            let row = deeplake::remote::RemoteProvider::connect(addr.as_str())
                .ok()
                .and_then(|c| Some((c.hub_health().ok()?, c.hub_metrics().ok()?)));
            match row {
                Some((health, snap)) => {
                    let w10 = WINDOW_SECS.iter().position(|&w| w == 10).unwrap();
                    let qps = snap
                        .rate("hub.queries_rate")
                        .map(|r| r.per_sec(w10))
                        .unwrap_or(0.0);
                    let p99_ms = snap
                        .histogram("hub.query_ns.w10")
                        .map(|h| h.quantile(0.99) as f64 / 1e6)
                        .unwrap_or(0.0);
                    println!(
                        "{:<22} {:>5}  {:>9} {:>6}  {:>8} {:>8.1}  {:>7.2}ms",
                        addr,
                        if live_now.contains(addr) { "yes" } else { "NO" },
                        health.in_flight,
                        format!("{}/{}", health.queue_depth, health.queue_cap),
                        snap.counter("hub.queries").unwrap_or(0),
                        qps,
                        p99_ms,
                    );
                }
                None => println!(
                    "{:<22} {:>5}  {:>9} {:>6}  {:>8} {:>8}  {:>9}",
                    addr,
                    if live_now.contains(addr) {
                        "yes?"
                    } else {
                        "NO"
                    },
                    "-",
                    "-",
                    "-",
                    "-",
                    "-"
                ),
            }
        }
        // the training-path row, scraped from the loader's own registry
        let snap = loader.metrics();
        let w10 = WINDOW_SECS.iter().position(|&w| w == 10).unwrap();
        let rows_ps = snap
            .rate("loader.rows_rate")
            .map(|r| r.per_sec(w10))
            .unwrap_or(0.0);
        let (fetch_p50, fetch_p99) = snap
            .histogram("loader.fetch_ns")
            .map(|h| (h.quantile(0.50) as f64 / 1e6, h.quantile(0.99) as f64 / 1e6))
            .unwrap_or((0.0, 0.0));
        println!(
            "{:<22} {:>5}  {:>9} {:>6}  {:>8} {:>8.1}  p50 {:.2}ms / p99 {:.2}ms fetch",
            "loader:hotset",
            snap.counter("loader.epochs").unwrap_or(0),
            snap.gauge("loader.queue_depth").unwrap_or(0),
            "-",
            snap.counter("loader.rows").unwrap_or(0),
            rows_ps,
            fetch_p50,
            fetch_p99,
        );
        std::thread::sleep(Duration::from_millis(120));
    }

    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    load.join().unwrap();
    train.join().unwrap();
    client.stop_prober();

    // the fleet's merged view + a surviving node's flight recorder tail
    let fleet = client.cluster_metrics().unwrap();
    println!(
        "\nfleet merged: {} nodes scraped, hub.queries = {}",
        fleet.per_node.len(),
        fleet
            .merged
            .counters
            .iter()
            .find(|(k, _)| k == "hub.queries")
            .map(|&(_, v)| v)
            .unwrap_or(0)
    );
    let survivor = (0..3).find(|&i| i != victim).unwrap();
    println!("flight recorder tail of node {survivor} (last 6 events):");
    let events = cluster.hub(survivor).unwrap().flight_recorder().events();
    for e in events.iter().rev().take(6).rev() {
        println!("  #{:<4} {:<16} {}", e.seq, e.kind, e.detail);
    }
    assert!(
        events
            .iter()
            .any(|e| e.kind == deeplake::obs::FlightEvent::NODE_DEAD),
        "the prober's death observation must be on record"
    );
    println!("\ndltop: the crash became fleet-visible with no manual mark_dead.");
}
