//! Quickstart: the §5 "machine learning use case" end to end — create a
//! dataset with `images` + `labels` tensors, append data, commit, query,
//! stream, and write model predictions back.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use deeplake::prelude::*;

fn main() {
    // 1. an empty Deep Lake dataset on in-memory storage (swap in
    //    LocalProvider or SimulatedCloudProvider freely)
    let provider: DynProvider = Arc::new(MemoryProvider::new());
    let mut ds = Dataset::create(provider, "quickstart").expect("create dataset");

    // 2. declare tensors: images with JPEG-like sample compression,
    //    labels with LZ4 chunk compression (the paper's §5 example)
    ds.create_tensor("images", Htype::Image, None).unwrap();
    ds.create_tensor("labels", Htype::ClassLabel, None).unwrap();
    println!("tensors: {:?}", ds.tensors());

    // 3. append 100 rows; image shapes may vary per row (ragged tensors)
    for i in 0..100u64 {
        let side = 24 + (i % 3) * 4; // 24, 28, 32 px
        let n = (side * side * 3) as usize;
        let image = Sample::from_slice([side, side, 3], &vec![(i % 251) as u8; n]).unwrap();
        ds.append_row(vec![
            ("images", image),
            ("labels", Sample::scalar((i % 10) as i32)),
        ])
        .unwrap();
    }
    ds.flush().unwrap();
    println!("rows: {}", ds.len());

    // 4. commit an immutable snapshot
    let commit = ds.commit("initial 100 samples").unwrap();
    println!("committed: {commit}");

    // 5. query with TQL
    let result = query(
        &ds,
        "SELECT * FROM ds WHERE labels = 3 ORDER BY MEAN(images) DESC",
    )
    .unwrap();
    println!("label-3 rows (darkest first): {:?}", result.indices);

    // 6. stream a training epoch (shuffled, 4 workers)
    let ds = Arc::new(ds);
    let loader = DataLoader::builder(ds.clone())
        .batch_size(16)
        .num_workers(4)
        .shuffle(42)
        .build()
        .unwrap();
    let mut images_seen = 0usize;
    for batch in loader.epoch() {
        let batch = batch.unwrap();
        images_seen += batch.len();
    }
    println!("streamed {images_seen} images");
    drop(loader); // release the loader's handle on the dataset

    // 7. write model predictions back as a new tensor (§5: "stores the
    //    output of the model in a new tensor called predictions")
    let mut ds = Arc::try_unwrap(ds).ok().expect("sole owner");
    ds.create_tensor("predictions", Htype::ClassLabel, None)
        .unwrap();
    for row in 0..ds.len() {
        let fake_pred = (row % 10) as i32;
        ds.update("predictions", row, &Sample::scalar(fake_pred))
            .unwrap();
    }
    ds.commit("added predictions").unwrap();
    println!(
        "history: {:?}",
        ds.log()
            .unwrap()
            .iter()
            .map(|(_, m, _)| m.clone())
            .collect::<Vec<_>>()
    );
}
