//! A hub fleet with client-side placement routing: three nodes, two
//! replicas per dataset, a client that discovers placement once and
//! round-robins its reads — then a node dies mid-demo and nobody
//! notices. Prints the placement table, the routing arithmetic, and the
//! failover counters.
//!
//! ```sh
//! cargo run --example cluster_serving
//! ```

use std::sync::Arc;

use deeplake::cluster::Cluster;
use deeplake::prelude::*;
use deeplake::storage::DynProvider;

fn build_dataset(provider: DynProvider, rows: u64) {
    let mut ds = Dataset::create(provider, "fleet_demo").unwrap();
    ds.create_tensor_opts("labels", {
        let mut o = TensorOptions::new(Htype::ClassLabel);
        o.chunk_target_bytes = Some(256);
        o
    })
    .unwrap();
    for i in 0..rows {
        ds.append_row(vec![("labels", Sample::scalar((i / 50) as i32))])
            .unwrap();
    }
    ds.flush().unwrap();
    ds.commit("ready to serve").unwrap();
}

fn main() {
    // ---- build each dataset ONCE, replicate the bytes over the fleet ----
    let mut builder = Cluster::builder().nodes(3).replication(2);
    for name in ["mnist", "laion", "ffhq", "places"] {
        let seed: DynProvider = Arc::new(MemoryProvider::new());
        build_dataset(seed.clone(), 1_000);
        builder = builder.dataset_from(name, seed);
    }
    let mut cluster = builder.build().unwrap();
    println!("{}", cluster.describe());

    // ---- the client resolves placement once per dataset ----
    let client = cluster.client().unwrap();
    println!("cluster serves: {:?}", client.list_datasets().unwrap());
    let mnist = Arc::new(client.open("mnist").unwrap());
    let laion = Arc::new(client.open("laion").unwrap());

    // queries route to the owning replicas, round-robin
    let text = "SELECT labels FROM d WHERE labels = 7";
    let r = mnist.query(text, &QueryOptions::default()).unwrap();
    println!(
        "mnist: {} rows for labels = 7 (routed to one of {} replicas)",
        r.len(),
        cluster.replica_nodes("mnist").len()
    );

    // writes go through to every replica — read-your-writes everywhere
    mnist
        .put("manifest/note", bytes::Bytes::from_static(b"hot"))
        .unwrap();
    println!(
        "a put through the mount landed on every replica: {:?}",
        cluster
            .replica_nodes("mnist")
            .iter()
            .map(|&i| cluster
                .store(i, "mnist")
                .unwrap()
                .get("manifest/note")
                .is_ok())
            .collect::<Vec<_>>()
    );

    // ---- kill a replica-bearing node; the mounts keep answering ----
    let victim = cluster.replica_nodes("mnist")[0];
    println!("\nkilling node {victim} …");
    cluster.kill(victim);
    for _ in 0..8 {
        let again = mnist.query(text, &QueryOptions::default()).unwrap();
        assert_eq!(again.indices, r.indices);
    }
    let other = laion.query(text, &QueryOptions::default()).unwrap();
    println!(
        "after the kill: mnist still answers {} rows (failovers: {}), \
         laion unaffected ({} rows)",
        r.len(),
        mnist.failovers(),
        other.len()
    );
    println!("\n{}", cluster.describe());
}
