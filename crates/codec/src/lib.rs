//! # deeplake-codec
//!
//! Compression codecs for the Tensor Storage Format.
//!
//! The paper uses two compression levels (§5): *sample compression* (each
//! sample is an independently encoded blob, e.g. JPEG images copied verbatim
//! into chunks) and *chunk compression* (the whole chunk payload is
//! compressed, e.g. LZ4 over label chunks). This crate provides the codecs
//! both levels dispatch to:
//!
//! * [`lz4`] — a from-scratch implementation of the LZ4 *block* format
//!   (the real algorithm: 4-byte-hash greedy matching, literal/match token
//!   stream). Used for chunk compression of labels and metadata.
//! * [`rle`] — byte run-length encoding, effective on masks.
//! * [`synthimg`] — a synthetic lossy image codec standing in for JPEG
//!   (see DESIGN.md substitutions): bit-depth quantization + left-neighbour
//!   delta prediction + LZ4. It reproduces JPEG's *system-level* properties
//!   (≈5-10× size reduction on natural-ish images, decode cost proportional
//!   to pixel count) without binding libjpeg.
//! * [`Compression`] — the registry enum stored in tensor metadata, with
//!   self-describing magic headers so blobs can be decoded without context.

pub mod error;
pub mod lz4;
pub mod registry;
pub mod rle;
pub mod synthimg;

pub use error::CodecError;
pub use registry::Compression;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CodecError>;
