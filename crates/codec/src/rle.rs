//! Byte run-length encoding.
//!
//! Effective on binary masks and sparse label planes where long runs of a
//! single byte dominate. Encoding: a stream of `(count_varint, byte)` pairs,
//! where `count_varint` is LEB128.

use crate::error::CodecError;

/// Encode `input` as `(varint run length, byte)` pairs.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 4 + 8);
    let mut i = 0usize;
    while i < input.len() {
        let byte = input[i];
        let mut run = 1usize;
        while i + run < input.len() && input[i + run] == byte {
            run += 1;
        }
        write_varint(&mut out, run as u64);
        out.push(byte);
        i += run;
    }
    out
}

/// Decode an RLE stream, verifying the output length.
pub fn decompress(input: &[u8], expected_len: usize) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::with_capacity(expected_len);
    let mut pos = 0usize;
    while pos < input.len() {
        let (run, used) = read_varint(&input[pos..]).ok_or(CodecError::Corrupt("varint"))?;
        pos += used;
        let byte = *input
            .get(pos)
            .ok_or(CodecError::Corrupt("missing run byte"))?;
        pos += 1;
        if out.len() + run as usize > expected_len {
            return Err(CodecError::Corrupt("run overflows output"));
        }
        out.resize(out.len() + run as usize, byte);
    }
    if out.len() != expected_len {
        return Err(CodecError::LengthMismatch {
            expected: expected_len,
            actual: out.len(),
        });
    }
    Ok(out)
}

/// LEB128 unsigned varint.
pub(crate) fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read a LEB128 varint; returns `(value, bytes_consumed)`.
pub(crate) fn read_varint(input: &[u8]) -> Option<(u64, usize)> {
    let mut v = 0u64;
    let mut shift = 0u32;
    for (i, &b) in input.iter().enumerate() {
        if shift >= 64 {
            return None;
        }
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Some((v, i + 1));
        }
        shift += 7;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let c = compress(data);
        assert_eq!(decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn empty() {
        roundtrip(&[]);
    }

    #[test]
    fn single_byte() {
        roundtrip(&[42]);
    }

    #[test]
    fn mask_like_runs() {
        let mut data = vec![0u8; 5000];
        data.extend(vec![1u8; 3000]);
        data.extend(vec![0u8; 2000]);
        let c = compress(&data);
        assert!(c.len() < 20);
        roundtrip(&data);
    }

    #[test]
    fn alternating_worst_case() {
        let data: Vec<u8> = (0..1000).map(|i| (i % 2) as u8).collect();
        let c = compress(&data);
        // worst case doubles the size (1 varint byte + 1 value byte per run)
        assert!(c.len() <= data.len() * 2);
        roundtrip(&data);
    }

    #[test]
    fn varint_roundtrip() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let (back, used) = read_varint(&buf).unwrap();
            assert_eq!(back, v);
            assert_eq!(used, buf.len());
        }
    }

    #[test]
    fn decompress_rejects_truncation() {
        let c = compress(&[1u8; 100]);
        assert!(decompress(&c[..c.len() - 1], 100).is_err());
        assert!(decompress(&c, 99).is_err());
    }

    #[test]
    fn long_run_varint_extension() {
        let data = vec![9u8; 100_000];
        let c = compress(&data);
        assert!(c.len() <= 5);
        roundtrip(&data);
    }
}
