//! LZ4 block format, implemented from scratch.
//!
//! This is the real LZ4 block algorithm (token byte with literal/match
//! length nibbles, 255-extension bytes, 2-byte little-endian match offsets,
//! minimum match length 4, last-five-literals rule), with a greedy
//! single-entry hash-table matcher — the same structure as the reference
//! `LZ4_compress_default` fast path.
//!
//! The encoded stream this module produces/consumes is a raw LZ4 *block*
//! (no frame header). Callers that need self-describing blobs wrap it via
//! [`crate::registry::Compression`].

use crate::error::CodecError;

const MIN_MATCH: usize = 4;
/// Matches cannot start within the last 12 bytes of input (LZ4 spec: the
/// last match must start at least 12 bytes before block end).
const MFLIMIT: usize = 12;
/// The last 5 bytes of a block are always literals.
const LAST_LITERALS: usize = 5;
const HASH_LOG: usize = 16;
const MAX_OFFSET: usize = 65535;

#[inline]
fn hash(seq: u32) -> usize {
    // Fibonacci hashing constant used by reference LZ4.
    ((seq.wrapping_mul(2654435761)) >> (32 - HASH_LOG)) as usize
}

#[inline]
fn read_u32(data: &[u8], pos: usize) -> u32 {
    u32::from_le_bytes([data[pos], data[pos + 1], data[pos + 2], data[pos + 3]])
}

/// Compress `input` into an LZ4 block.
///
/// Always succeeds; incompressible data expands by at most
/// `input.len() / 255 + 16` bytes of token overhead.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let n = input.len();
    let mut out = Vec::with_capacity(n / 2 + 16);
    if n == 0 {
        // Empty block: single token with zero literal length.
        out.push(0);
        return out;
    }
    if n < MFLIMIT {
        emit_sequence(&mut out, input, 0, 0);
        return out;
    }

    let mut table = vec![0u32; 1 << HASH_LOG]; // stores pos+1; 0 = empty
    let mut anchor = 0usize; // start of pending literals
    let mut pos = 0usize;
    let match_limit = n - MFLIMIT;

    while pos <= match_limit {
        let seq = read_u32(input, pos);
        let h = hash(seq);
        let candidate = table[h] as usize;
        table[h] = (pos + 1) as u32;

        if candidate != 0 {
            let cand_pos = candidate - 1;
            if pos - cand_pos <= MAX_OFFSET && read_u32(input, cand_pos) == seq {
                // extend the match forward, stopping before the tail region
                let max_len = n - LAST_LITERALS - pos;
                let mut len = MIN_MATCH;
                while len < max_len && input[cand_pos + len] == input[pos + len] {
                    len += 1;
                }
                // extend backwards into pending literals
                let mut back = 0usize;
                while pos - back > anchor
                    && cand_pos > back
                    && input[pos - back - 1] == input[cand_pos - back - 1]
                {
                    back += 1;
                }
                let match_pos = pos - back;
                let match_src = cand_pos - back;
                let match_len = len + back;
                emit_match(
                    &mut out,
                    &input[anchor..match_pos],
                    (match_pos - match_src) as u16,
                    match_len,
                );
                pos = match_pos + match_len;
                anchor = pos;
                // insert a position inside the match to improve future finds
                if pos <= match_limit && pos >= 2 {
                    let p = pos - 2;
                    table[hash(read_u32(input, p))] = (p + 1) as u32;
                }
                continue;
            }
        }
        pos += 1;
    }

    // trailing literals
    emit_sequence(&mut out, &input[anchor..], 0, 0);
    out
}

/// Emit `literals` followed by a match of `match_len` at `offset`.
fn emit_match(out: &mut Vec<u8>, literals: &[u8], offset: u16, match_len: usize) {
    debug_assert!(match_len >= MIN_MATCH);
    let lit_len = literals.len();
    let ml = match_len - MIN_MATCH;
    let token = (nibble(lit_len) << 4) | nibble(ml);
    out.push(token);
    push_ext_len(out, lit_len);
    out.extend_from_slice(literals);
    out.extend_from_slice(&offset.to_le_bytes());
    push_ext_len(out, ml);
}

/// Emit a final literal-only sequence (offset/match omitted per spec).
fn emit_sequence(out: &mut Vec<u8>, literals: &[u8], _offset: u16, _match_len: usize) {
    let lit_len = literals.len();
    out.push(nibble(lit_len) << 4);
    push_ext_len(out, lit_len);
    out.extend_from_slice(literals);
}

#[inline]
fn nibble(len: usize) -> u8 {
    if len >= 15 {
        15
    } else {
        len as u8
    }
}

#[inline]
fn push_ext_len(out: &mut Vec<u8>, len: usize) {
    if len >= 15 {
        let mut rem = len - 15;
        while rem >= 255 {
            out.push(255);
            rem -= 255;
        }
        out.push(rem as u8);
    }
}

/// Decompress an LZ4 block produced by [`compress`] (or any conforming
/// encoder). `expected_len` bounds the output size; the result must match
/// it exactly.
pub fn decompress(input: &[u8], expected_len: usize) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::with_capacity(expected_len);
    let mut pos = 0usize;
    let n = input.len();

    while pos < n {
        let token = input[pos];
        pos += 1;
        // literal length
        let mut lit_len = (token >> 4) as usize;
        if lit_len == 15 {
            loop {
                let b = *input
                    .get(pos)
                    .ok_or(CodecError::Corrupt("literal length"))?;
                pos += 1;
                lit_len += b as usize;
                if b != 255 {
                    break;
                }
            }
        }
        if pos + lit_len > n {
            return Err(CodecError::Corrupt("literal run past end"));
        }
        out.extend_from_slice(&input[pos..pos + lit_len]);
        pos += lit_len;
        if pos == n {
            break; // final sequence has no match part
        }
        // match offset
        if pos + 2 > n {
            return Err(CodecError::Corrupt("truncated offset"));
        }
        let offset = u16::from_le_bytes([input[pos], input[pos + 1]]) as usize;
        pos += 2;
        if offset == 0 || offset > out.len() {
            return Err(CodecError::Corrupt("bad match offset"));
        }
        // match length
        let mut match_len = (token & 0x0f) as usize;
        if match_len == 15 {
            loop {
                let b = *input.get(pos).ok_or(CodecError::Corrupt("match length"))?;
                pos += 1;
                match_len += b as usize;
                if b != 255 {
                    break;
                }
            }
        }
        match_len += MIN_MATCH;
        if out.len() + match_len > expected_len {
            return Err(CodecError::Corrupt("output overflow"));
        }
        // overlapping copy, byte by byte when ranges overlap
        let start = out.len() - offset;
        if offset >= match_len {
            out.extend_from_within(start..start + match_len);
        } else {
            for i in 0..match_len {
                let b = out[start + i];
                out.push(b);
            }
        }
    }

    if out.len() != expected_len {
        return Err(CodecError::LengthMismatch {
            expected: expected_len,
            actual: out.len(),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let c = compress(data);
        let d = decompress(&c, data.len()).expect("decompress");
        assert_eq!(d, data, "roundtrip failed for len {}", data.len());
    }

    #[test]
    fn empty() {
        roundtrip(&[]);
    }

    #[test]
    fn tiny_inputs() {
        for n in 1..20 {
            let data: Vec<u8> = (0..n as u8).collect();
            roundtrip(&data);
        }
    }

    #[test]
    fn all_zeros_compresses_well() {
        let data = vec![0u8; 100_000];
        let c = compress(&data);
        assert!(c.len() < data.len() / 100, "got {} bytes", c.len());
        roundtrip(&data);
    }

    #[test]
    fn repeating_pattern() {
        let data: Vec<u8> = (0..50_000).map(|i| (i % 7) as u8).collect();
        let c = compress(&data);
        assert!(c.len() < data.len() / 10);
        roundtrip(&data);
    }

    #[test]
    fn text_like_data() {
        let text = "the quick brown fox jumps over the lazy dog. ".repeat(500);
        let c = compress(text.as_bytes());
        assert!(c.len() < text.len() / 3);
        roundtrip(text.as_bytes());
    }

    #[test]
    fn incompressible_random() {
        // xorshift pseudo-random bytes: should roundtrip with bounded expansion
        let mut state = 0x1234_5678_9abc_def0u64;
        let data: Vec<u8> = (0..65_536)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state & 0xff) as u8
            })
            .collect();
        let c = compress(&data);
        assert!(c.len() <= data.len() + data.len() / 255 + 16);
        roundtrip(&data);
    }

    #[test]
    fn overlapping_match_rle_style() {
        // "aaaa..." forces offset-1 overlapping copies
        let data = vec![b'a'; 1000];
        roundtrip(&data);
    }

    #[test]
    fn long_literal_runs_extension_bytes() {
        // 300 unique-ish bytes -> literal length needs extension bytes
        let data: Vec<u8> = (0..300u32).map(|i| (i * 17 % 251) as u8).collect();
        roundtrip(&data);
    }

    #[test]
    fn long_match_extension_bytes() {
        let mut data = b"0123456789abcdef".to_vec();
        data.extend(std::iter::repeat_n(b'x', 5000));
        data.extend_from_slice(b"tail bytes here!");
        roundtrip(&data);
    }

    #[test]
    fn decompress_rejects_truncated() {
        let data = vec![7u8; 1000];
        let mut c = compress(&data);
        c.truncate(c.len() / 2);
        assert!(decompress(&c, 1000).is_err());
    }

    #[test]
    fn decompress_rejects_wrong_expected_len() {
        let data = vec![7u8; 1000];
        let c = compress(&data);
        assert!(decompress(&c, 999).is_err());
        assert!(decompress(&c, 1001).is_err());
    }

    #[test]
    fn decompress_rejects_bad_offset() {
        // token: 0 literals + match, offset 5 with empty output
        let bad = vec![0x04, 5, 0];
        assert!(decompress(&bad, 100).is_err());
    }

    #[test]
    fn label_like_i32_stream() {
        // categorical labels as LE i32: highly compressible
        let mut data = Vec::new();
        for i in 0..10_000i32 {
            data.extend_from_slice(&(i % 10).to_le_bytes());
        }
        let c = compress(&data);
        assert!(c.len() < data.len() / 4);
        roundtrip(&data);
    }
}
