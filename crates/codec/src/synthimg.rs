//! Synthetic lossy image codec — the repo's stand-in for JPEG/PNG.
//!
//! The Deep Lake evaluation depends on image codecs only through two
//! system-level properties:
//!
//! 1. compressed images are ≈5-10× smaller than raw pixels, so streaming is
//!    bandwidth-bound on raw and codec-bound on compressed data;
//! 2. decoding costs CPU time proportional to the pixel count, which is why
//!    the dataloader parallelizes decompression across workers (§4.6).
//!
//! `synthimg` reproduces both without binding libjpeg: it quantizes pixels
//! to a configurable bit depth (the lossy step), applies left-neighbour
//! delta prediction per row (which turns smooth gradients into
//! near-constant streams), and LZ4-compresses the residual plane. Decoding
//! reverses the chain and touches every pixel.
//!
//! Layout: `[bits u8][h u32][w u32][c u32][lz4 block...]`, lengths LE.

use crate::error::CodecError;
use crate::lz4;

/// Quality preset: how many high bits of each channel survive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Quality {
    /// Bits kept per channel, 1..=8. 8 = lossless quantization step.
    pub bits: u8,
}

impl Quality {
    /// Roughly JPEG-90-like: keep 5 high bits.
    pub const HIGH: Quality = Quality { bits: 5 };
    /// Roughly JPEG-75-like: keep 4 high bits.
    pub const MEDIUM: Quality = Quality { bits: 4 };
    /// Aggressive: keep 3 high bits.
    pub const LOW: Quality = Quality { bits: 3 };
}

impl Default for Quality {
    fn default() -> Self {
        Quality::MEDIUM
    }
}

/// Encode an `h×w×c` u8 image.
pub fn compress(
    pixels: &[u8],
    h: u32,
    w: u32,
    c: u32,
    quality: Quality,
) -> Result<Vec<u8>, CodecError> {
    if quality.bits == 0 || quality.bits > 8 {
        return Err(CodecError::InvalidParams(format!(
            "bits={} out of 1..=8",
            quality.bits
        )));
    }
    let expected = h as usize * w as usize * c as usize;
    if pixels.len() != expected {
        return Err(CodecError::InvalidParams(format!(
            "pixel buffer {} != {}x{}x{}",
            pixels.len(),
            h,
            w,
            c
        )));
    }
    let shift = 8 - quality.bits;
    // Quantize + delta-predict along each row, per channel plane interleaved.
    let mut residual = vec![0u8; pixels.len()];
    let row_stride = w as usize * c as usize;
    for row in 0..h as usize {
        let base = row * row_stride;
        for col in 0..w as usize {
            for ch in 0..c as usize {
                let i = base + col * c as usize + ch;
                let q = pixels[i] >> shift;
                let left = if col == 0 {
                    0
                } else {
                    pixels[i - c as usize] >> shift
                };
                residual[i] = q.wrapping_sub(left);
            }
        }
    }
    let body = lz4::compress(&residual);
    let mut out = Vec::with_capacity(body.len() + 13);
    out.push(quality.bits);
    out.extend_from_slice(&h.to_le_bytes());
    out.extend_from_slice(&w.to_le_bytes());
    out.extend_from_slice(&c.to_le_bytes());
    out.extend_from_slice(&body);
    Ok(out)
}

/// Decode a blob produced by [`compress`]. Returns `(pixels, h, w, c)`.
pub fn decompress(blob: &[u8]) -> Result<(Vec<u8>, u32, u32, u32), CodecError> {
    if blob.len() < 13 {
        return Err(CodecError::Corrupt("synthimg header"));
    }
    let bits = blob[0];
    if bits == 0 || bits > 8 {
        return Err(CodecError::Corrupt("synthimg bits"));
    }
    let h = u32::from_le_bytes(blob[1..5].try_into().unwrap());
    let w = u32::from_le_bytes(blob[5..9].try_into().unwrap());
    let c = u32::from_le_bytes(blob[9..13].try_into().unwrap());
    let n = h as usize * w as usize * c as usize;
    let residual = lz4::decompress(&blob[13..], n)?;
    let shift = 8 - bits;
    let mut pixels = vec![0u8; n];
    let row_stride = w as usize * c as usize;
    for row in 0..h as usize {
        let base = row * row_stride;
        for col in 0..w as usize {
            for ch in 0..c as usize {
                let i = base + col * c as usize + ch;
                let left = if col == 0 {
                    0
                } else {
                    pixels[i - c as usize] >> shift
                };
                let q = residual[i].wrapping_add(left);
                // re-expand quantized value to full range (midpoint fill)
                pixels[i] = q << shift | (if shift > 0 { 1u8 << (shift - 1) } else { 0 });
            }
        }
    }
    Ok((pixels, h, w, c))
}

/// Maximum absolute per-pixel error introduced by a quality level.
pub fn max_error(quality: Quality) -> u8 {
    if quality.bits >= 8 {
        0
    } else {
        (1u8 << (8 - quality.bits)) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Natural-ish image: smooth gradients plus mild texture.
    fn gradient_image(h: u32, w: u32, c: u32) -> Vec<u8> {
        let mut px = Vec::with_capacity((h * w * c) as usize);
        for y in 0..h {
            for x in 0..w {
                for ch in 0..c {
                    let v = (x / 2 + y / 3 + ch * 40 + ((x * y) % 5)) % 256;
                    px.push(v as u8);
                }
            }
        }
        px
    }

    #[test]
    fn roundtrip_shape_preserved() {
        let px = gradient_image(32, 48, 3);
        let blob = compress(&px, 32, 48, 3, Quality::MEDIUM).unwrap();
        let (out, h, w, c) = decompress(&blob).unwrap();
        assert_eq!((h, w, c), (32, 48, 3));
        assert_eq!(out.len(), px.len());
    }

    #[test]
    fn error_bounded_by_quality() {
        let px = gradient_image(64, 64, 3);
        for q in [Quality::HIGH, Quality::MEDIUM, Quality::LOW] {
            let blob = compress(&px, 64, 64, 3, q).unwrap();
            let (out, ..) = decompress(&blob).unwrap();
            let bound = max_error(q);
            for (a, b) in px.iter().zip(out.iter()) {
                assert!(
                    a.abs_diff(*b) <= bound,
                    "error {} exceeds bound {bound} at quality bits={}",
                    a.abs_diff(*b),
                    q.bits
                );
            }
        }
    }

    #[test]
    fn natural_images_compress_well() {
        let px = gradient_image(256, 256, 3);
        let blob = compress(&px, 256, 256, 3, Quality::MEDIUM).unwrap();
        let ratio = px.len() as f64 / blob.len() as f64;
        assert!(ratio > 4.0, "compression ratio only {ratio:.2}");
    }

    #[test]
    fn higher_quality_bigger_blob() {
        let px = gradient_image(128, 128, 3);
        let hi = compress(&px, 128, 128, 3, Quality::HIGH).unwrap();
        let lo = compress(&px, 128, 128, 3, Quality::LOW).unwrap();
        assert!(hi.len() >= lo.len());
    }

    #[test]
    fn rejects_bad_params() {
        let px = vec![0u8; 12];
        assert!(compress(&px, 2, 2, 3, Quality { bits: 0 }).is_err());
        assert!(compress(&px, 2, 2, 3, Quality { bits: 9 }).is_err());
        assert!(compress(&px, 3, 2, 3, Quality::MEDIUM).is_err());
    }

    #[test]
    fn rejects_corrupt_blob() {
        assert!(decompress(&[1, 2, 3]).is_err());
        let px = gradient_image(8, 8, 1);
        let mut blob = compress(&px, 8, 8, 1, Quality::MEDIUM).unwrap();
        blob.truncate(blob.len() - 3);
        assert!(decompress(&blob).is_err());
    }

    #[test]
    fn lossless_at_8_bits() {
        let px = gradient_image(16, 16, 3);
        let blob = compress(&px, 16, 16, 3, Quality { bits: 8 }).unwrap();
        let (out, ..) = decompress(&blob).unwrap();
        assert_eq!(out, px);
    }

    #[test]
    fn single_channel_image() {
        let px = gradient_image(20, 30, 1);
        let blob = compress(&px, 20, 30, 1, Quality::HIGH).unwrap();
        let (out, h, w, c) = decompress(&blob).unwrap();
        assert_eq!((h, w, c), (20, 30, 1));
        assert_eq!(out.len(), px.len());
    }

    #[test]
    fn zero_sized_image() {
        let blob = compress(&[], 0, 10, 3, Quality::MEDIUM).unwrap();
        let (out, h, _, _) = decompress(&blob).unwrap();
        assert_eq!(h, 0);
        assert!(out.is_empty());
    }
}
