//! Codec registry: self-describing compressed blobs.
//!
//! Tensor metadata stores a [`Compression`] per tensor (sample level and
//! chunk level). Blobs are framed as `[magic u8][expected_len varint][body]`
//! so any blob can be decoded without external context — this is what lets
//! raw pre-compressed samples be copied into chunks verbatim (§5: "If a raw
//! image compression matches the tensor sample compression, the binary is
//! directly copied into a chunk without additional decoding").

use serde::{Deserialize, Serialize};

use crate::error::CodecError;
use crate::rle::{read_varint, write_varint};
use crate::synthimg::Quality;
use crate::{lz4, rle, synthimg};

const MAGIC_NONE: u8 = 0x00;
const MAGIC_LZ4: u8 = 0x01;
const MAGIC_RLE: u8 = 0x02;
const MAGIC_SYNTHIMG: u8 = 0x03;

/// Compression scheme recorded in tensor metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
#[serde(rename_all = "lowercase")]
pub enum Compression {
    /// No compression; bytes stored verbatim.
    #[default]
    None,
    /// LZ4 block compression ([`crate::lz4`]). Paper default for label
    /// chunks.
    Lz4,
    /// Run-length encoding ([`crate::rle`]). Good for masks.
    Rle,
    /// Synthetic lossy image codec ([`crate::synthimg`]), the JPEG
    /// stand-in, with bits-per-channel quality.
    SynthImg {
        /// Bits kept per channel (1..=8).
        bits: u8,
    },
}

impl Compression {
    /// JPEG-like default for image tensors.
    pub const JPEG_LIKE: Compression = Compression::SynthImg { bits: 4 };

    /// Parse the textual form used in schemas (`"lz4"`, `"jpeg"`, ...).
    pub fn parse(s: &str) -> Result<Self, CodecError> {
        Ok(match s {
            "none" | "" => Compression::None,
            "lz4" => Compression::Lz4,
            "rle" => Compression::Rle,
            // accept the paper's names for the image codec
            "jpeg" | "synthimg" => Compression::JPEG_LIKE,
            "png" => Compression::SynthImg { bits: 8 },
            other => {
                return Err(CodecError::InvalidParams(format!(
                    "unknown codec {other:?}"
                )))
            }
        })
    }

    /// Canonical name.
    pub fn name(&self) -> String {
        match self {
            Compression::None => "none".into(),
            Compression::Lz4 => "lz4".into(),
            Compression::Rle => "rle".into(),
            Compression::SynthImg { bits } => format!("synthimg{bits}"),
        }
    }

    /// Whether this codec loses information.
    pub fn is_lossy(&self) -> bool {
        matches!(self, Compression::SynthImg { bits } if *bits < 8)
    }

    /// Compress `data` into a framed, self-describing blob.
    ///
    /// For [`Compression::SynthImg`] the image geometry must be supplied via
    /// [`Compression::compress_image`]; calling this method with `SynthImg`
    /// falls back to LZ4 framing (used when non-image bytes land in an image
    /// tensor's chunk metadata).
    pub fn compress(&self, data: &[u8]) -> Vec<u8> {
        match self {
            Compression::None => {
                let mut out = Vec::with_capacity(data.len() + 1);
                out.push(MAGIC_NONE);
                out.extend_from_slice(data);
                out
            }
            Compression::Lz4 | Compression::SynthImg { .. } => {
                frame(MAGIC_LZ4, data.len(), lz4::compress(data))
            }
            Compression::Rle => frame(MAGIC_RLE, data.len(), rle::compress(data)),
        }
    }

    /// Compress an `h×w×c` u8 image with the image codec; other codecs
    /// delegate to [`Compression::compress`].
    pub fn compress_image(
        &self,
        pixels: &[u8],
        h: u32,
        w: u32,
        c: u32,
    ) -> Result<Vec<u8>, CodecError> {
        match self {
            Compression::SynthImg { bits } => {
                let body = synthimg::compress(pixels, h, w, c, Quality { bits: *bits })?;
                Ok(frame(MAGIC_SYNTHIMG, pixels.len(), body))
            }
            other => Ok(other.compress(pixels)),
        }
    }

    /// Decompress a framed blob produced by any [`Compression`].
    ///
    /// The frame is self-describing, so this works regardless of which
    /// variant `self` is — `self` is only consulted for `None` passthrough.
    pub fn decompress(blob: &[u8]) -> Result<Vec<u8>, CodecError> {
        let (&magic, rest) = blob
            .split_first()
            .ok_or(CodecError::Corrupt("empty blob"))?;
        match magic {
            MAGIC_NONE => Ok(rest.to_vec()),
            MAGIC_LZ4 => {
                let (len, used) = read_varint(rest).ok_or(CodecError::Corrupt("frame len"))?;
                lz4::decompress(&rest[used..], len as usize)
            }
            MAGIC_RLE => {
                let (len, used) = read_varint(rest).ok_or(CodecError::Corrupt("frame len"))?;
                rle::decompress(&rest[used..], len as usize)
            }
            MAGIC_SYNTHIMG => {
                let (_, used) = read_varint(rest).ok_or(CodecError::Corrupt("frame len"))?;
                let (pixels, ..) = synthimg::decompress(&rest[used..])?;
                Ok(pixels)
            }
            other => Err(CodecError::UnknownCodec(other)),
        }
    }

    /// Decompress an image blob, returning geometry when the blob carries it.
    pub fn decompress_image(blob: &[u8]) -> Result<DecodedImage, CodecError> {
        let (&magic, rest) = blob
            .split_first()
            .ok_or(CodecError::Corrupt("empty blob"))?;
        if magic == MAGIC_SYNTHIMG {
            let (_, used) = read_varint(rest).ok_or(CodecError::Corrupt("frame len"))?;
            let (pixels, h, w, c) = synthimg::decompress(&rest[used..])?;
            return Ok((pixels, Some((h, w, c))));
        }
        Ok((Self::decompress(blob)?, None))
    }
}

/// Decompressed pixels plus `(h, w, c)` geometry when the blob carries it.
pub type DecodedImage = (Vec<u8>, Option<(u32, u32, u32)>);

fn frame(magic: u8, expected_len: usize, body: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + 10);
    out.push(magic);
    write_varint(&mut out, expected_len as u64);
    out.extend_from_slice(&body);
    out
}

impl std::fmt::Display for Compression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_passthrough() {
        let data = b"hello world".to_vec();
        let blob = Compression::None.compress(&data);
        assert_eq!(Compression::decompress(&blob).unwrap(), data);
        assert_eq!(blob.len(), data.len() + 1);
    }

    #[test]
    fn lz4_frame_roundtrip() {
        let data = vec![3u8; 10_000];
        let blob = Compression::Lz4.compress(&data);
        assert!(blob.len() < 100);
        assert_eq!(Compression::decompress(&blob).unwrap(), data);
    }

    #[test]
    fn rle_frame_roundtrip() {
        let data = vec![0u8; 4096];
        let blob = Compression::Rle.compress(&data);
        assert_eq!(Compression::decompress(&blob).unwrap(), data);
    }

    #[test]
    fn image_frame_roundtrip_carries_geometry() {
        let px = vec![128u8; 16 * 16 * 3];
        let blob = Compression::JPEG_LIKE
            .compress_image(&px, 16, 16, 3)
            .unwrap();
        let (out, geom) = Compression::decompress_image(&blob).unwrap();
        assert_eq!(geom, Some((16, 16, 3)));
        assert_eq!(out.len(), px.len());
        // plain decompress also works, dropping geometry
        let flat = Compression::decompress(&blob).unwrap();
        assert_eq!(flat.len(), px.len());
    }

    #[test]
    fn decode_needs_no_context() {
        // decoding dispatches on the magic byte, not on `self`
        let data = vec![9u8; 500];
        let blob = Compression::Lz4.compress(&data);
        assert_eq!(Compression::decompress(&blob).unwrap(), data);
    }

    #[test]
    fn unknown_magic_rejected() {
        assert!(matches!(
            Compression::decompress(&[0xEE, 1, 2]),
            Err(CodecError::UnknownCodec(0xEE))
        ));
        assert!(Compression::decompress(&[]).is_err());
    }

    #[test]
    fn parse_names() {
        assert_eq!(Compression::parse("lz4").unwrap(), Compression::Lz4);
        assert_eq!(Compression::parse("jpeg").unwrap(), Compression::JPEG_LIKE);
        assert_eq!(Compression::parse("none").unwrap(), Compression::None);
        assert_eq!(
            Compression::parse("png").unwrap(),
            Compression::SynthImg { bits: 8 }
        );
        assert!(Compression::parse("brotli").is_err());
    }

    #[test]
    fn lossy_flag() {
        assert!(Compression::JPEG_LIKE.is_lossy());
        assert!(!Compression::SynthImg { bits: 8 }.is_lossy());
        assert!(!Compression::Lz4.is_lossy());
    }

    #[test]
    fn synthimg_on_non_image_bytes_falls_back_to_lz4() {
        let data = vec![1u8; 100];
        let blob = Compression::JPEG_LIKE.compress(&data);
        assert_eq!(Compression::decompress(&blob).unwrap(), data);
    }
}
