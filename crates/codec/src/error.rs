//! Codec error type.

/// Errors produced while compressing or decompressing blobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The compressed stream is malformed (truncated, bad offsets, ...).
    Corrupt(&'static str),
    /// The decompressed output did not match the expected length.
    LengthMismatch {
        /// Expected decompressed byte count.
        expected: usize,
        /// Actual decompressed byte count.
        actual: usize,
    },
    /// The blob's magic byte names a codec this build does not know.
    UnknownCodec(u8),
    /// Parameters were invalid (e.g. quantization bits out of range).
    InvalidParams(String),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Corrupt(what) => write!(f, "corrupt compressed stream: {what}"),
            CodecError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "decompressed length mismatch: expected {expected}, got {actual}"
                )
            }
            CodecError::UnknownCodec(magic) => write!(f, "unknown codec magic byte {magic:#x}"),
            CodecError::InvalidParams(msg) => write!(f, "invalid codec parameters: {msg}"),
        }
    }
}

impl std::error::Error for CodecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_non_empty() {
        for e in [
            CodecError::Corrupt("x"),
            CodecError::LengthMismatch {
                expected: 1,
                actual: 2,
            },
            CodecError::UnknownCodec(9),
            CodecError::InvalidParams("p".into()),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
