//! Property tests for the codec layer.

use deeplake_codec::synthimg::{self, Quality};
use deeplake_codec::{lz4, rle, Compression};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn lz4_never_corrupts(data in proptest::collection::vec(any::<u8>(), 0..8192)) {
        let c = lz4::compress(&data);
        prop_assert_eq!(lz4::decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn lz4_rejects_wrong_length(data in proptest::collection::vec(any::<u8>(), 1..512)) {
        let c = lz4::compress(&data);
        prop_assert!(lz4::decompress(&c, data.len() + 1).is_err());
        if data.len() > 1 {
            prop_assert!(lz4::decompress(&c, data.len() - 1).is_err());
        }
    }

    #[test]
    fn rle_roundtrip_with_runs(
        runs in proptest::collection::vec((any::<u8>(), 1usize..100), 0..50)
    ) {
        let data: Vec<u8> = runs.iter().flat_map(|&(b, n)| std::iter::repeat_n(b, n)).collect();
        let c = rle::compress(&data);
        prop_assert_eq!(rle::decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn synthimg_error_within_bound(
        h in 1u32..24, w in 1u32..24,
        bits in 1u8..=8,
        seed in any::<u64>(),
    ) {
        let n = (h * w * 3) as usize;
        let pixels: Vec<u8> =
            (0..n).map(|i| ((seed as usize).wrapping_add(i * 7) % 256) as u8).collect();
        let q = Quality { bits };
        let blob = synthimg::compress(&pixels, h, w, 3, q).unwrap();
        let (out, oh, ow, oc) = synthimg::decompress(&blob).unwrap();
        prop_assert_eq!((oh, ow, oc), (h, w, 3));
        let bound = synthimg::max_error(q);
        for (a, b) in pixels.iter().zip(out.iter()) {
            prop_assert!(a.abs_diff(*b) <= bound, "error exceeds bound at bits={bits}");
        }
    }

    #[test]
    fn framed_blobs_self_describe(data in proptest::collection::vec(any::<u8>(), 0..1024)) {
        // any codec's frame decodes without knowing which codec produced it
        for codec in [Compression::None, Compression::Lz4, Compression::Rle] {
            let blob = codec.compress(&data);
            prop_assert_eq!(Compression::decompress(&blob).unwrap(), data.clone());
        }
    }

    #[test]
    fn image_frames_keep_geometry(h in 1u32..16, w in 1u32..16, c in 1u32..4) {
        let n = (h * w * c) as usize;
        let pixels = vec![128u8; n];
        let blob = Compression::JPEG_LIKE.compress_image(&pixels, h, w, c).unwrap();
        let (out, geom) = Compression::decompress_image(&blob).unwrap();
        prop_assert_eq!(geom, Some((h, w, c)));
        prop_assert_eq!(out.len(), n);
    }

    #[test]
    fn corrupted_frames_error_not_panic(
        data in proptest::collection::vec(any::<u8>(), 1..256),
        flip in any::<usize>(),
    ) {
        let blob = Compression::Lz4.compress(&data);
        let mut bad = blob.clone();
        let i = flip % bad.len();
        bad[i] ^= 0xA5;
        // must either fail cleanly or decode to *something* — never panic
        let _ = Compression::decompress(&bad);
    }
}
