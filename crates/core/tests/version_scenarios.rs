//! Deeper version-control scenarios: long histories, multi-branch trees,
//! merge chains, schema evolution across branches, persistence of the
//! full tree.

use std::sync::Arc;

use deeplake_core::dataset::Dataset;
use deeplake_core::version::MergePolicy;
use deeplake_storage::{DynProvider, MemoryProvider};
use deeplake_tensor::{Htype, Sample};

fn mem() -> DynProvider {
    Arc::new(MemoryProvider::new())
}

fn labels_ds() -> Dataset {
    let mut ds = Dataset::create(mem(), "scenarios").unwrap();
    ds.create_tensor("labels", Htype::ClassLabel, None).unwrap();
    ds
}

fn label_of(ds: &Dataset, row: u64) -> i32 {
    ds.get("labels", row).unwrap().get_f64(0).unwrap() as i32
}

#[test]
fn long_history_every_commit_readable() {
    let mut ds = labels_ds();
    ds.append_row(vec![("labels", Sample::scalar(0i32))])
        .unwrap();
    let mut commits = Vec::new();
    for k in 1..=15i32 {
        ds.update("labels", 0, &Sample::scalar(k)).unwrap();
        commits.push((k, ds.commit(&format!("set {k}")).unwrap()));
    }
    // every historical commit shows its value
    for (value, commit) in &commits {
        ds.checkout(commit).unwrap();
        assert_eq!(label_of(&ds, 0), *value, "at {commit}");
    }
    ds.checkout("main").unwrap();
    assert_eq!(label_of(&ds, 0), 15);
    assert_eq!(ds.log().unwrap().len(), 15);
}

#[test]
fn three_way_branch_tree() {
    let mut ds = labels_ds();
    for i in 0..4 {
        ds.append_row(vec![("labels", Sample::scalar(i))]).unwrap();
    }
    ds.commit("base").unwrap();
    // three branches off the same base, each appending distinct rows
    for (branch, offset) in [("b1", 10), ("b2", 20), ("b3", 30)] {
        ds.checkout("main").unwrap();
        ds.checkout_new_branch(branch).unwrap();
        ds.append_row(vec![("labels", Sample::scalar(offset))])
            .unwrap();
        ds.commit(&format!("{branch} adds")).unwrap();
    }
    // merge all three into main
    ds.checkout("main").unwrap();
    for branch in ["b1", "b2", "b3"] {
        let report = ds.merge(branch, MergePolicy::Fail).unwrap();
        assert_eq!(report.samples_added, 1, "{branch}");
        assert!(report.conflicts.is_empty(), "{branch}");
    }
    assert_eq!(ds.len(), 7);
    let all: Vec<i32> = (0..7).map(|r| label_of(&ds, r)).collect();
    assert!(all.contains(&10) && all.contains(&20) && all.contains(&30));
}

#[test]
fn merge_is_idempotent_for_already_merged_branch() {
    let mut ds = labels_ds();
    ds.append_row(vec![("labels", Sample::scalar(1i32))])
        .unwrap();
    ds.commit("base").unwrap();
    ds.checkout_new_branch("side").unwrap();
    ds.append_row(vec![("labels", Sample::scalar(2i32))])
        .unwrap();
    ds.commit("side").unwrap();
    ds.checkout("main").unwrap();
    let first = ds.merge("side", MergePolicy::Ours).unwrap();
    assert_eq!(first.samples_added, 1);
    let second = ds.merge("side", MergePolicy::Ours).unwrap();
    assert_eq!(second.samples_added, 0, "re-merge must not duplicate rows");
    assert_eq!(ds.len(), 2);
}

#[test]
fn schema_evolution_is_branch_local_until_merge() {
    let mut ds = labels_ds();
    ds.append_row(vec![("labels", Sample::scalar(1i32))])
        .unwrap();
    ds.commit("base").unwrap();
    ds.checkout_new_branch("schema-exp").unwrap();
    ds.create_tensor("scores", Htype::Generic, Some(deeplake_tensor::Dtype::F32))
        .unwrap();
    ds.update("scores", 0, &Sample::scalar(0.5f32)).unwrap();
    ds.commit("added scores").unwrap();
    assert!(ds.tensors().contains(&"scores"));
    // main does not see the new tensor
    ds.checkout("main").unwrap();
    assert!(!ds.tensors().contains(&"scores"));
    assert!(ds.get("scores", 0).is_err());
    // back on the branch it persists
    ds.checkout("schema-exp").unwrap();
    assert_eq!(ds.get("scores", 0).unwrap().get_f64(0).unwrap(), 0.5);
}

#[test]
fn whole_tree_survives_reopen() {
    let provider = mem();
    {
        let mut ds = Dataset::create(provider.clone(), "persist-tree").unwrap();
        ds.create_tensor("labels", Htype::ClassLabel, None).unwrap();
        ds.append_row(vec![("labels", Sample::scalar(1i32))])
            .unwrap();
        ds.commit("c1").unwrap();
        ds.checkout_new_branch("dev").unwrap();
        ds.update("labels", 0, &Sample::scalar(7i32)).unwrap();
        ds.commit("dev change").unwrap();
        ds.checkout("main").unwrap();
        ds.append_row(vec![("labels", Sample::scalar(2i32))])
            .unwrap();
        ds.flush().unwrap();
    }
    let mut ds = Dataset::open(provider).unwrap();
    let mut branches = ds.branches();
    branches.sort();
    assert_eq!(branches, vec!["dev", "main"]);
    assert_eq!(ds.len(), 2);
    assert_eq!(label_of(&ds, 0), 1);
    ds.checkout("dev").unwrap();
    assert_eq!(ds.len(), 1);
    assert_eq!(label_of(&ds, 0), 7);
}

#[test]
fn uncommitted_changes_survive_branch_round_trip() {
    let mut ds = labels_ds();
    ds.append_row(vec![("labels", Sample::scalar(1i32))])
        .unwrap();
    ds.commit("base").unwrap();
    // uncommitted append on main
    ds.append_row(vec![("labels", Sample::scalar(2i32))])
        .unwrap();
    // checkout flushes; jumping away and back must not lose the row
    ds.checkout_new_branch("elsewhere").unwrap();
    ds.checkout("main").unwrap();
    assert_eq!(ds.len(), 2);
    assert_eq!(label_of(&ds, 1), 2);
}

#[test]
fn diff_between_sibling_branches() {
    let mut ds = labels_ds();
    for i in 0..3 {
        ds.append_row(vec![("labels", Sample::scalar(i))]).unwrap();
    }
    ds.commit("base").unwrap();
    ds.checkout_new_branch("left").unwrap();
    ds.append_row(vec![("labels", Sample::scalar(100i32))])
        .unwrap();
    ds.commit("left adds").unwrap();
    ds.checkout("main").unwrap();
    ds.checkout_new_branch("right").unwrap();
    ds.update("labels", 0, &Sample::scalar(-1i32)).unwrap();
    ds.commit("right edits").unwrap();

    let diff = ds.diff("left", "right").unwrap();
    let left_labels = diff.left.iter().find(|t| t.tensor == "labels").unwrap();
    let right_labels = diff.right.iter().find(|t| t.tensor == "labels").unwrap();
    assert_eq!(left_labels.rows_added, 1);
    assert_eq!(left_labels.rows_updated, 0);
    assert_eq!(right_labels.rows_added, 0);
    assert_eq!(right_labels.rows_updated, 1);
}

#[test]
fn merge_updates_and_adds_together() {
    let mut ds = labels_ds();
    for i in 0..3 {
        ds.append_row(vec![("labels", Sample::scalar(i))]).unwrap();
    }
    ds.commit("base").unwrap();
    ds.checkout_new_branch("work").unwrap();
    ds.update("labels", 1, &Sample::scalar(50i32)).unwrap();
    ds.append_row(vec![("labels", Sample::scalar(60i32))])
        .unwrap();
    ds.commit("work done").unwrap();
    ds.checkout("main").unwrap();
    let report = ds.merge("work", MergePolicy::Fail).unwrap();
    assert_eq!(report.updates_applied, 1);
    assert_eq!(report.samples_added, 1);
    assert_eq!(ds.len(), 4);
    assert_eq!(label_of(&ds, 1), 50);
    assert_eq!(label_of(&ds, 3), 60);
}
