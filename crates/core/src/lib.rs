//! # deeplake-core
//!
//! The Deep Lake dataset layer — the paper's primary contribution wired
//! together: columnar tensor datasets over any storage provider (§3.1),
//! Git-like version control built into the format (§4.2), parallel
//! sample-wise transforms (§4.1.2), linked tensors (§4.5), dataset views
//! and materialization (§4.4-4.5).
//!
//! "Any storage provider" includes a *remote* one: a dataset opens over
//! a served mount (`deeplake-remote`'s `RemoteProvider`) with the same
//! `Dataset::open(provider)` call, and every read path below —
//! including the batched [`Dataset::prefetch_chunks`] scatter-gather —
//! then travels as single wire frames.
//!
//! ```
//! use deeplake_core::dataset::Dataset;
//! use deeplake_storage::MemoryProvider;
//! use deeplake_tensor::{Htype, Sample};
//! use std::sync::Arc;
//!
//! let mut ds = Dataset::create(Arc::new(MemoryProvider::new()), "quick").unwrap();
//! ds.create_tensor("images", Htype::Image, None).unwrap();
//! ds.create_tensor("labels", Htype::ClassLabel, None).unwrap();
//! ds.append_row(vec![
//!     ("images", Sample::zeros(deeplake_tensor::Dtype::U8, [4, 4, 3])),
//!     ("labels", Sample::scalar(1i32)),
//! ]).unwrap();
//! ds.flush().unwrap();
//! assert_eq!(ds.len(), 1);
//! let commit = ds.commit("first images").unwrap();
//! assert!(!commit.is_empty());
//! ```

pub mod dataset;
pub mod error;
pub mod link;
pub mod materialize;
pub mod row;
pub mod sample_id;
pub mod tensor_store;
pub mod transform;
pub mod version;
pub mod view;

pub use dataset::{Dataset, IndexBuildReport, PrefetchedChunks};
pub use error::CoreError;
pub use row::Row;
pub use view::DatasetView;

// Re-exported for layers (query planning, streaming) that reason about
// chunks without depending on the format crate directly.
pub use deeplake_format::{Chunk, ChunkStats};

// Re-exported so consumers configure and probe vector indexes without a
// direct dependency on the index crate.
pub use deeplake_index::{IndexKind, IndexSpec, Metric, VectorIndex};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CoreError>;
