//! [`Row`]: one sample across parallel tensors (§3.1).

use std::collections::BTreeMap;

use deeplake_tensor::Sample;

/// A dataset row: tensor name → sample. "A sample in a dataset represents a
/// single row indexed across parallel tensors" (§3.1); elements are
/// logically independent, so a row may carry any subset of tensors —
/// missing tensors are filled with empty samples on append.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Row {
    values: BTreeMap<String, Sample>,
}

impl Row {
    /// Empty row.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style insertion.
    pub fn with(mut self, tensor: impl Into<String>, sample: Sample) -> Self {
        self.values.insert(tensor.into(), sample);
        self
    }

    /// Insert or replace a value.
    pub fn set(&mut self, tensor: impl Into<String>, sample: Sample) {
        self.values.insert(tensor.into(), sample);
    }

    /// Value for a tensor, if present.
    pub fn get(&self, tensor: &str) -> Option<&Sample> {
        self.values.get(tensor)
    }

    /// Remove and return a value.
    pub fn take(&mut self, tensor: &str) -> Option<Sample> {
        self.values.remove(tensor)
    }

    /// Tensor names present in this row.
    pub fn tensors(&self) -> impl Iterator<Item = &str> {
        self.values.keys().map(String::as_str)
    }

    /// Iterate `(tensor, sample)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Sample)> {
        self.values.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of tensors in the row.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the row carries no values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total payload bytes across all samples.
    pub fn nbytes(&self) -> usize {
        self.values.values().map(Sample::nbytes).sum()
    }
}

impl FromIterator<(String, Sample)> for Row {
    fn from_iter<T: IntoIterator<Item = (String, Sample)>>(iter: T) -> Self {
        Row {
            values: iter.into_iter().collect(),
        }
    }
}

impl<'a> FromIterator<(&'a str, Sample)> for Row {
    fn from_iter<T: IntoIterator<Item = (&'a str, Sample)>>(iter: T) -> Self {
        Row {
            values: iter.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deeplake_tensor::Dtype;

    #[test]
    fn builder_and_access() {
        let row = Row::new()
            .with("images", Sample::zeros(Dtype::U8, [2, 2, 3]))
            .with("labels", Sample::scalar(3i32));
        assert_eq!(row.len(), 2);
        assert!(row.get("images").is_some());
        assert!(row.get("boxes").is_none());
        assert_eq!(row.tensors().collect::<Vec<_>>(), vec!["images", "labels"]);
        assert_eq!(row.nbytes(), 12 + 4);
    }

    #[test]
    fn set_take() {
        let mut row = Row::new();
        assert!(row.is_empty());
        row.set("x", Sample::scalar(1u8));
        row.set("x", Sample::scalar(2u8));
        assert_eq!(row.len(), 1);
        let taken = row.take("x").unwrap();
        assert_eq!(taken.get_f64(0).unwrap(), 2.0);
        assert!(row.is_empty());
    }

    #[test]
    fn from_iterators() {
        let row: Row = vec![("a", Sample::scalar(1u8)), ("b", Sample::scalar(2u8))]
            .into_iter()
            .collect();
        assert_eq!(row.len(), 2);
    }
}
