//! Core layer error type.

use deeplake_codec::CodecError;
use deeplake_format::FormatError;
use deeplake_storage::StorageError;
use deeplake_tensor::TensorError;

/// Errors surfaced by the dataset layer.
#[derive(Debug)]
pub enum CoreError {
    /// A tensor name was not found in the dataset.
    NoSuchTensor(String),
    /// A tensor with this name already exists.
    TensorExists(String),
    /// A row index was out of range.
    RowOutOfRange {
        /// Requested row.
        row: u64,
        /// Dataset length.
        len: u64,
    },
    /// A version/branch/commit reference could not be resolved.
    NoSuchVersion(String),
    /// A branch with this name already exists.
    BranchExists(String),
    /// The dataset is checked out at a historical commit and cannot be
    /// written.
    ReadOnlyVersion,
    /// Merge found conflicting updates and the policy was
    /// [`crate::version::merge::MergePolicy::Fail`].
    MergeConflict {
        /// Sample ids updated on both sides.
        sample_ids: Vec<u64>,
    },
    /// A linked sample's pointer could not be resolved.
    LinkResolution(String),
    /// Malformed dataset structure on storage.
    Corrupt(String),
    /// Storage layer failure.
    Storage(StorageError),
    /// Format layer failure.
    Format(FormatError),
    /// Tensor layer failure.
    Tensor(TensorError),
    /// Codec failure.
    Codec(CodecError),
    /// Vector index failure.
    Index(deeplake_index::IndexError),
    /// Metadata JSON failure.
    Json(String),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::NoSuchTensor(n) => write!(f, "no such tensor: {n}"),
            CoreError::TensorExists(n) => write!(f, "tensor already exists: {n}"),
            CoreError::RowOutOfRange { row, len } => {
                write!(f, "row {row} out of range for dataset of length {len}")
            }
            CoreError::NoSuchVersion(v) => write!(f, "no such version: {v}"),
            CoreError::BranchExists(b) => write!(f, "branch already exists: {b}"),
            CoreError::ReadOnlyVersion => {
                write!(
                    f,
                    "dataset is checked out at a historical commit (read-only)"
                )
            }
            CoreError::MergeConflict { sample_ids } => {
                write!(f, "merge conflict on {} sample(s)", sample_ids.len())
            }
            CoreError::LinkResolution(msg) => write!(f, "link resolution failed: {msg}"),
            CoreError::Corrupt(msg) => write!(f, "corrupt dataset: {msg}"),
            CoreError::Storage(e) => write!(f, "storage error: {e}"),
            CoreError::Format(e) => write!(f, "format error: {e}"),
            CoreError::Tensor(e) => write!(f, "tensor error: {e}"),
            CoreError::Codec(e) => write!(f, "codec error: {e}"),
            CoreError::Index(e) => write!(f, "vector index error: {e}"),
            CoreError::Json(msg) => write!(f, "json error: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<StorageError> for CoreError {
    fn from(e: StorageError) -> Self {
        CoreError::Storage(e)
    }
}
impl From<FormatError> for CoreError {
    fn from(e: FormatError) -> Self {
        CoreError::Format(e)
    }
}
impl From<TensorError> for CoreError {
    fn from(e: TensorError) -> Self {
        CoreError::Tensor(e)
    }
}
impl From<CodecError> for CoreError {
    fn from(e: CodecError) -> Self {
        CoreError::Codec(e)
    }
}
impl From<deeplake_index::IndexError> for CoreError {
    fn from(e: deeplake_index::IndexError) -> Self {
        CoreError::Index(e)
    }
}
impl From<serde_json::Error> for CoreError {
    fn from(e: serde_json::Error) -> Self {
        CoreError::Json(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_display() {
        let e: CoreError = StorageError::ReadOnly.into();
        assert!(e.to_string().contains("storage"));
        let e: CoreError = TensorError::UnknownName("q".into()).into();
        assert!(e.to_string().contains("tensor"));
        assert!(CoreError::MergeConflict {
            sample_ids: vec![1, 2]
        }
        .to_string()
        .contains("2 sample"));
    }
}
