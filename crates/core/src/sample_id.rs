//! Stable sample identifiers.
//!
//! §4.2: "the ids of samples are generated and stored during the dataset
//! population. This is important for keeping track of the same samples
//! during merge operations." Ids live in the hidden `_ids` tensor (one
//! scalar `u64` per row) and survive reordering, branching and merging.

use std::sync::atomic::{AtomicU64, Ordering};

/// Hidden tensor name that stores per-row sample ids.
pub const ID_TENSOR: &str = "_ids";

static COUNTER: AtomicU64 = AtomicU64::new(1);

/// Generate a fresh, process-unique sample id.
///
/// Layout: 40 bits of session entropy (startup clock) + 24 bits of a
/// monotone counter. Collisions across processes are improbable enough
/// for merge bookkeeping; within a process they are impossible.
pub fn generate() -> u64 {
    use std::time::{SystemTime, UNIX_EPOCH};
    static SESSION: AtomicU64 = AtomicU64::new(0);
    let mut session = SESSION.load(Ordering::Relaxed);
    if session == 0 {
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.subsec_nanos())
            .unwrap_or(0);
        let secs = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let seed = (secs << 30 | nanos as u64) & ((1 << 40) - 1);
        let seed = if seed == 0 { 1 } else { seed };
        // racy init is fine: any thread's seed works, first store wins
        let _ = SESSION.compare_exchange(0, seed, Ordering::Relaxed, Ordering::Relaxed);
        session = SESSION.load(Ordering::Relaxed);
    }
    let count = COUNTER.fetch_add(1, Ordering::Relaxed) & ((1 << 24) - 1);
    (session << 24) | count
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_are_unique() {
        let ids: HashSet<u64> = (0..10_000).map(|_| generate()).collect();
        assert_eq!(ids.len(), 10_000);
    }

    #[test]
    fn ids_are_nonzero() {
        for _ in 0..100 {
            assert_ne!(generate(), 0);
        }
    }

    #[test]
    fn ids_unique_across_threads() {
        let mut handles = Vec::new();
        for _ in 0..4 {
            handles.push(std::thread::spawn(|| {
                (0..1000).map(|_| generate()).collect::<Vec<_>>()
            }));
        }
        let mut all = HashSet::new();
        for h in handles {
            for id in h.join().unwrap() {
                assert!(all.insert(id), "duplicate id {id}");
            }
        }
    }
}
