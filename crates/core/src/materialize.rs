//! Materialization (§4.5).
//!
//! "Materialization involves fetching the actual data from links or views
//! and efficiently laying it out into chunks." A sparse query view or a
//! linked-tensor dataset streams poorly (scattered chunk reads, per-sample
//! remote fetches); materializing copies the selected rows into a fresh
//! dataset with sequential, densely packed chunks — optimal for the
//! dataloader — while the version history of the source preserves lineage.

use deeplake_storage::DynProvider;
use deeplake_tensor::Htype;

use crate::dataset::{Dataset, TensorOptions};
use crate::error::CoreError;
use crate::link::{resolve, LinkRegistry};
use crate::view::DatasetView;
use crate::Result;

/// Outcome of a materialization.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaterializeStats {
    /// Rows copied.
    pub rows: u64,
    /// Linked samples that were fetched and inlined.
    pub links_resolved: u64,
    /// Payload bytes written into the destination.
    pub bytes: u64,
}

/// Materialize a view into a new dataset on `dest`.
///
/// * Plain tensors are copied row by row into fresh, dense chunks.
/// * `link[...]` tensors are resolved through `registry` and stored as
///   their inner htype — the pointer becomes real data.
/// * Hidden tensors (other than the id tensor, which is regenerated) are
///   not copied; derived data is recomputed downstream.
pub fn materialize(
    view: &DatasetView<'_>,
    dest: DynProvider,
    name: &str,
    registry: Option<&LinkRegistry>,
) -> Result<(Dataset, MaterializeStats)> {
    let source = view.dataset();
    let mut out = Dataset::create(dest, name)?;
    let mut stats = MaterializeStats::default();

    // mirror the visible schema, unwrapping link meta-types
    let tensor_names: Vec<String> = source.tensors().into_iter().map(str::to_string).collect();
    let mut linked: Vec<(String, bool)> = Vec::new();
    for tname in &tensor_names {
        let meta = source.tensor_meta(tname)?;
        let is_link = meta.htype.is_link();
        let target_htype = if is_link {
            unwrap_link(&meta.htype)
        } else {
            meta.htype.clone()
        };
        let mut opts = TensorOptions::new(target_htype.clone());
        if !is_link {
            opts.dtype = Some(meta.dtype);
            opts.sample_compression = Some(meta.sample_compression);
            opts.chunk_compression = Some(meta.chunk_compression);
        }
        opts.chunk_target_bytes = Some(meta.chunk_target_bytes);
        out.create_tensor_opts(tname.clone(), opts)?;
        linked.push((tname.clone(), is_link));
    }

    for i in 0..view.len() {
        let mut pairs = Vec::with_capacity(linked.len());
        for (tname, is_link) in &linked {
            let sample = view.get(tname, i)?;
            let sample = if *is_link && !sample.is_empty() {
                let reg = registry.ok_or_else(|| {
                    CoreError::LinkResolution(
                        "materializing linked tensors requires a LinkRegistry".into(),
                    )
                })?;
                stats.links_resolved += 1;
                resolve(reg, &sample)?
            } else {
                sample
            };
            stats.bytes += sample.nbytes() as u64;
            pairs.push((tname.clone(), sample));
        }
        out.append_row(pairs.iter().map(|(k, v)| (k.as_str(), v.clone())))?;
        stats.rows += 1;
    }

    out.flush()?;
    out.commit(&format!(
        "materialized from {} ({} rows)",
        source.name(),
        stats.rows
    ))?;
    Ok((out, stats))
}

fn unwrap_link(htype: &Htype) -> Htype {
    match htype {
        Htype::Link(inner) => (**inner).clone(),
        Htype::Sequence(inner) => Htype::Sequence(Box::new(unwrap_link(inner))),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::{make_link, single_provider_registry};
    use deeplake_codec::Compression;
    use deeplake_storage::{MemoryProvider, StorageProvider};
    use deeplake_tensor::{Dtype, Sample};
    use std::sync::Arc;

    fn mem() -> DynProvider {
        Arc::new(MemoryProvider::new())
    }

    #[test]
    fn materialize_view_copies_selected_rows() {
        let mut ds = Dataset::create(mem(), "src").unwrap();
        ds.create_tensor("labels", Htype::ClassLabel, None).unwrap();
        for i in 0..10 {
            ds.append_row(vec![("labels", Sample::scalar(i))]).unwrap();
        }
        ds.flush().unwrap();
        let view = DatasetView::new(&ds, vec![8, 2, 5]);
        let (out, stats) = materialize(&view, mem(), "dense", None).unwrap();
        assert_eq!(stats.rows, 3);
        assert_eq!(out.len(), 3);
        assert_eq!(out.get("labels", 0).unwrap().get_f64(0).unwrap(), 8.0);
        assert_eq!(out.get("labels", 1).unwrap().get_f64(0).unwrap(), 2.0);
        assert_eq!(out.get("labels", 2).unwrap().get_f64(0).unwrap(), 5.0);
        // materialized dataset is committed (lineage recorded)
        assert_eq!(out.log().unwrap().len(), 1);
    }

    #[test]
    fn materialize_resolves_links() {
        // external storage with two framed images
        let (registry, external) = single_provider_registry("ext", MemoryProvider::new());
        for (key, fill) in [("a.bin", 10u8), ("b.bin", 20u8)] {
            let pixels = vec![fill; 4 * 4 * 3];
            let blob = Compression::JPEG_LIKE
                .compress_image(&pixels, 4, 4, 3)
                .unwrap();
            external.put(key, bytes::Bytes::from(blob)).unwrap();
        }
        // source dataset holds pointers only
        let mut ds = Dataset::create(mem(), "linked").unwrap();
        ds.create_tensor(
            "images",
            Htype::parse("link[image]").unwrap(),
            Some(Dtype::U8),
        )
        .unwrap();
        ds.append_row(vec![("images", make_link("ext", "a.bin"))])
            .unwrap();
        ds.append_row(vec![("images", make_link("ext", "b.bin"))])
            .unwrap();
        ds.flush().unwrap();
        // pointers resolve at materialization
        let view = DatasetView::full(&ds);
        let (out, stats) = materialize(&view, mem(), "resolved", Some(&registry)).unwrap();
        assert_eq!(stats.links_resolved, 2);
        let meta = out.tensor_meta("images").unwrap();
        assert_eq!(meta.htype, Htype::Image);
        let img = out.get("images", 0).unwrap();
        assert_eq!(img.shape().dims(), &[4, 4, 3]);
    }

    #[test]
    fn materialize_links_without_registry_fails() {
        let mut ds = Dataset::create(mem(), "linked").unwrap();
        ds.create_tensor(
            "images",
            Htype::parse("link[image]").unwrap(),
            Some(Dtype::U8),
        )
        .unwrap();
        ds.append_row(vec![("images", make_link("ext", "a.bin"))])
            .unwrap();
        ds.flush().unwrap();
        let view = DatasetView::full(&ds);
        assert!(materialize(&view, mem(), "fail", None).is_err());
    }

    #[test]
    fn materialized_view_is_dense() {
        let mut ds = Dataset::create(mem(), "src").unwrap();
        ds.create_tensor("labels", Htype::ClassLabel, None).unwrap();
        for i in 0..100 {
            ds.append_row(vec![("labels", Sample::scalar(i))]).unwrap();
        }
        ds.flush().unwrap();
        // every 10th row: sparse in the source...
        let view = DatasetView::new(&ds, (0..100).step_by(10).collect());
        assert!(view.sparseness() > 5.0);
        let (out, _) = materialize(&view, mem(), "dense", None).unwrap();
        // ...dense in the destination
        assert_eq!(DatasetView::full(&out).sparseness(), 1.0);
    }
}
