//! Linked tensors (§4.5).
//!
//! A `link[image]` tensor stores *pointers* to externally stored raw data
//! ("links/urls to one or multiple cloud providers") instead of the data
//! itself. Pointers within one tensor may target different providers; a
//! [`LinkRegistry`] maps provider names to live [`StorageProvider`]s
//! (standing in for the paper's per-provider credential sets).
//!
//! Pointer format: `provider://key`, stored with the `text` convention
//! (rank-1 `u8`).

use std::collections::BTreeMap;
use std::sync::Arc;

use deeplake_codec::Compression;
use deeplake_storage::{DynProvider, StorageProvider};
use deeplake_tensor::{Dtype, Sample, Shape};

use crate::error::CoreError;
use crate::Result;

/// Named external storage providers that link pointers can target.
#[derive(Clone, Default)]
pub struct LinkRegistry {
    providers: BTreeMap<String, DynProvider>,
}

impl LinkRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a provider under a name; pointers `name://key` resolve
    /// through it.
    pub fn register(&mut self, name: impl Into<String>, provider: DynProvider) {
        self.providers.insert(name.into(), provider);
    }

    /// Look up a provider.
    pub fn get(&self, name: &str) -> Result<&DynProvider> {
        self.providers
            .get(name)
            .ok_or_else(|| CoreError::LinkResolution(format!("unknown provider {name:?}")))
    }

    /// Registered provider names.
    pub fn names(&self) -> Vec<&str> {
        self.providers.keys().map(String::as_str).collect()
    }
}

impl std::fmt::Debug for LinkRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LinkRegistry")
            .field("providers", &self.names())
            .finish()
    }
}

impl From<Vec<(String, DynProvider)>> for LinkRegistry {
    fn from(v: Vec<(String, DynProvider)>) -> Self {
        LinkRegistry {
            providers: v.into_iter().collect(),
        }
    }
}

/// Build the pointer sample for `provider://key`.
pub fn make_link(provider: &str, key: &str) -> Sample {
    Sample::from_text(&format!("{provider}://{key}"))
}

/// Parse a pointer sample into `(provider, key)`.
pub fn parse_link(sample: &Sample) -> Result<(String, String)> {
    let text = sample
        .to_text()
        .ok_or_else(|| CoreError::LinkResolution("pointer is not valid text".into()))?;
    let (provider, key) = text
        .split_once("://")
        .ok_or_else(|| CoreError::LinkResolution(format!("malformed pointer {text:?}")))?;
    if provider.is_empty() || key.is_empty() {
        return Err(CoreError::LinkResolution(format!(
            "malformed pointer {text:?}"
        )));
    }
    Ok((provider.to_string(), key.to_string()))
}

/// Resolve a pointer: fetch the external object and decode it into a
/// sample. Framed image blobs recover their geometry; other framed blobs
/// decode to rank-1 `u8`; unframed bytes pass through as rank-1 `u8`.
pub fn resolve(registry: &LinkRegistry, pointer: &Sample) -> Result<Sample> {
    let (provider_name, key) = parse_link(pointer)?;
    let provider = registry.get(&provider_name)?;
    let blob = provider
        .get(&key)
        .map_err(|e| CoreError::LinkResolution(format!("{provider_name}://{key}: {e}")))?;
    decode_external(&blob)
}

/// Decode external object bytes into a sample.
pub fn decode_external(blob: &[u8]) -> Result<Sample> {
    if let Ok((pixels, Some((h, w, c)))) = Compression::decompress_image(blob) {
        return Ok(Sample::from_bytes(
            Dtype::U8,
            Shape::from([h as u64, w as u64, c as u64]),
            bytes::Bytes::from(pixels),
        )?);
    }
    let raw = match Compression::decompress(blob) {
        Ok(raw) => raw,
        Err(_) => blob.to_vec(), // unframed external file: raw bytes
    };
    let len = raw.len() as u64;
    Ok(Sample::from_bytes(
        Dtype::U8,
        Shape::from([len]),
        bytes::Bytes::from(raw),
    )?)
}

/// Convenience: a registry holding one in-memory provider, returned with
/// its handle for test/setup code.
pub fn single_provider_registry(
    name: &str,
    provider: impl StorageProvider + 'static,
) -> (LinkRegistry, DynProvider) {
    let arc: DynProvider = Arc::new(provider);
    let mut reg = LinkRegistry::new();
    reg.register(name, arc.clone());
    (reg, arc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deeplake_storage::MemoryProvider;

    #[test]
    fn pointer_roundtrip() {
        let p = make_link("sim-s3", "bucket/img_001.bin");
        let (prov, key) = parse_link(&p).unwrap();
        assert_eq!(prov, "sim-s3");
        assert_eq!(key, "bucket/img_001.bin");
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(parse_link(&Sample::from_text("no-scheme")).is_err());
        assert!(parse_link(&Sample::from_text("://missing")).is_err());
        assert!(parse_link(&Sample::from_text("p://")).is_err());
        assert!(parse_link(&Sample::scalar(1.0f32)).is_err());
    }

    #[test]
    fn resolve_framed_image_recovers_geometry() {
        let (reg, provider) = single_provider_registry("ext", MemoryProvider::new());
        let pixels = vec![99u8; 8 * 6 * 3];
        let blob = Compression::JPEG_LIKE
            .compress_image(&pixels, 8, 6, 3)
            .unwrap();
        provider.put("img.bin", bytes::Bytes::from(blob)).unwrap();
        let sample = resolve(&reg, &make_link("ext", "img.bin")).unwrap();
        assert_eq!(sample.shape(), &Shape::from([8, 6, 3]));
        assert_eq!(sample.dtype(), Dtype::U8);
    }

    #[test]
    fn resolve_raw_bytes_as_rank1() {
        let (reg, provider) = single_provider_registry("ext", MemoryProvider::new());
        provider
            .put("file.txt", bytes::Bytes::from_static(b"hello!"))
            .unwrap();
        let sample = resolve(&reg, &make_link("ext", "file.txt")).unwrap();
        assert_eq!(sample.shape(), &Shape::from([6]));
        assert_eq!(sample.to_text().unwrap(), "hello!");
    }

    #[test]
    fn resolve_unknown_provider_or_key_fails() {
        let (reg, _provider) = single_provider_registry("ext", MemoryProvider::new());
        assert!(resolve(&reg, &make_link("ghost", "x")).is_err());
        assert!(resolve(&reg, &make_link("ext", "missing")).is_err());
    }

    #[test]
    fn registry_multiple_providers() {
        let mut reg = LinkRegistry::new();
        reg.register("a", Arc::new(MemoryProvider::new()));
        reg.register("b", Arc::new(MemoryProvider::new()));
        assert_eq!(reg.names(), vec!["a", "b"]);
        assert!(reg.get("a").is_ok());
        assert!(reg.get("c").is_err());
    }
}
