//! The Deep Lake dataset: parallel tensors over a storage provider, with
//! built-in version control.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

use bytes::Bytes;
use deeplake_codec::Compression;
use deeplake_format::TensorMeta;
use deeplake_index::{IndexKind, IndexSpec, VectorIndex};
use deeplake_storage::{DynProvider, PrefixProvider, ReadPlan, StorageProvider};
use deeplake_tensor::{Dtype, Htype, Sample};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::error::CoreError;
use crate::row::Row;
use crate::sample_id::{self, ID_TENSOR};
use crate::tensor_store::TensorStore;
use crate::version::merge::{MergePolicy, MergeReport};
use crate::version::{
    tensor_prefix, CommitDiff, DiffSummary, TensorDiff, VersionTree, VERSION_INFO_KEY,
};
use crate::Result;

const DATASET_META_KEY: &str = "dataset.json";
const SCHEMA_KEY: &str = "schema.json";

/// Top-level provenance file (§3.4: "a Deep Lake dataset contains a
/// provenance file in JSON format").
#[derive(Debug, Clone, Serialize, Deserialize)]
struct DatasetMeta {
    name: String,
    created_ms: u64,
}

/// Tensor list snapshot per version — schema evolution is tracked over
/// time like content changes (§3.1).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct Schema {
    tensors: Vec<String>,
}

/// Options for [`Dataset::create_tensor_opts`].
#[derive(Debug, Clone)]
pub struct TensorOptions {
    /// Semantic type.
    pub htype: Htype,
    /// Element dtype (`None` = htype default).
    pub dtype: Option<Dtype>,
    /// Sample-level compression (`None` = htype default).
    pub sample_compression: Option<Compression>,
    /// Chunk-level compression (`None` = htype default).
    pub chunk_compression: Option<Compression>,
    /// Chunk size target in bytes (`None` = 8 MB).
    pub chunk_target_bytes: Option<u64>,
    /// Hidden tensors are excluded from listings, rows and streaming.
    pub hidden: bool,
    /// Source tensor this one is derived from (downsampled pyramids etc.).
    pub derived_from: Option<String>,
}

impl TensorOptions {
    /// Options with htype defaults.
    pub fn new(htype: Htype) -> Self {
        TensorOptions {
            htype,
            dtype: None,
            sample_compression: None,
            chunk_compression: None,
            chunk_target_bytes: None,
            hidden: false,
            derived_from: None,
        }
    }
}

/// Decoded chunks pinned per tensor by [`Dataset::prefetch_chunks`],
/// plus the storage round trips the prefetch cost and a fetch/decode
/// cost split for instrumentation.
pub struct PrefetchedChunks {
    by_tensor: HashMap<String, HashMap<u64, Arc<deeplake_format::Chunk>>>,
    round_trips: u64,
    fetch_ns: u64,
    decode_ns: u64,
}

impl PrefetchedChunks {
    /// Storage round trips the prefetch issued (0 when everything was
    /// already decoded, 1 for the single batched call).
    pub fn round_trips(&self) -> u64 {
        self.round_trips
    }

    /// Nanoseconds the prefetch spent inside the storage provider (the
    /// batched `execute` call) — pure I/O wait, no decoding.
    pub fn fetch_ns(&self) -> u64 {
        self.fetch_ns
    }

    /// Nanoseconds the prefetch spent admitting (decompressing +
    /// decoding) the fetched chunks. Together with
    /// [`fetch_ns`](PrefetchedChunks::fetch_ns) this is the split the
    /// loader's `loader.fetch_ns` / `loader.decode_ns` histograms are
    /// built on.
    pub fn decode_ns(&self) -> u64 {
        self.decode_ns
    }

    /// The pinned chunks of one tensor (`None` when the tensor was
    /// unknown at prefetch time).
    pub fn pinned(&self, tensor: &str) -> Option<&HashMap<u64, Arc<deeplake_format::Chunk>>> {
        self.by_tensor.get(tensor)
    }

    /// Read one sample through the pinned chunks, falling back to the
    /// dataset's single-key path for anything not prefetched.
    pub fn get(&self, ds: &Dataset, tensor: &str, row: u64) -> Result<Sample> {
        match self.by_tensor.get(tensor) {
            Some(p) => ds.get_with_pinned(tensor, row, p),
            None => ds.get(tensor, row),
        }
    }
}

/// What [`Dataset::build_vector_index`] built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexBuildReport {
    /// Indexed tensor.
    pub tensor: String,
    /// Rows covered by the index.
    pub rows: u64,
    /// Vector dimensionality.
    pub dim: usize,
    /// Structure built.
    pub kind: IndexKind,
    /// IVF cluster count (0 for flat).
    pub clusters: usize,
}

/// A Deep Lake dataset handle.
///
/// Reads take `&self` and are safe to share across loader threads; all
/// mutation takes `&mut self`. Appended data becomes durable on
/// [`Dataset::flush`] and immutable on [`Dataset::commit`].
pub struct Dataset {
    root: DynProvider,
    name: String,
    tree: VersionTree,
    head: String,
    read_only: bool,
    tensors: BTreeMap<String, TensorStore>,
    /// Per-tensor vector index memo: `Some(idx)` = loaded, `None` =
    /// known absent/stale. Entries drop on any mutation that can
    /// invalidate them and on checkout.
    vindex_cache: Mutex<HashMap<String, Option<Arc<VectorIndex>>>>,
}

fn now_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

impl Dataset {
    /// Create a new dataset on `root`. Writes the provenance file, the
    /// version tree, and the hidden sample-id tensor.
    pub fn create(root: DynProvider, name: impl Into<String>) -> Result<Self> {
        let name = name.into();
        if root.exists(DATASET_META_KEY)? {
            return Err(CoreError::Corrupt(
                "a dataset already exists at this location".into(),
            ));
        }
        let tree = VersionTree::new();
        let head = tree.branch_tip("main")?.to_string();
        let mut ds = Dataset {
            root,
            name,
            tree,
            head,
            read_only: false,
            tensors: BTreeMap::new(),
            vindex_cache: Mutex::new(HashMap::new()),
        };
        let meta = DatasetMeta {
            name: ds.name.clone(),
            created_ms: now_ms(),
        };
        ds.root.put(
            DATASET_META_KEY,
            Bytes::from(serde_json::to_vec_pretty(&meta)?),
        )?;
        ds.persist_tree()?;
        // hidden id tensor powering merge (§4.2)
        let mut opts = TensorOptions::new(Htype::Generic);
        opts.dtype = Some(Dtype::U64);
        opts.hidden = true;
        ds.create_tensor_opts(ID_TENSOR, opts)?;
        Ok(ds)
    }

    /// Open an existing dataset at the tip of `main`.
    pub fn open(root: DynProvider) -> Result<Self> {
        Self::open_at(root, "main")
    }

    /// Open an existing dataset at a branch tip or a specific commit.
    /// Historical commits open read-only.
    pub fn open_at(root: DynProvider, reference: &str) -> Result<Self> {
        let meta: DatasetMeta =
            serde_json::from_slice(&root.get(DATASET_META_KEY).map_err(|_| {
                CoreError::Corrupt("no dataset at this location (missing dataset.json)".into())
            })?)?;
        let tree = VersionTree::from_json(&root.get(VERSION_INFO_KEY)?)?;
        let head = tree.resolve(reference)?;
        let read_only = tree.node(&head)?.committed;
        let mut ds = Dataset {
            root,
            name: meta.name,
            tree,
            head,
            read_only,
            tensors: BTreeMap::new(),
            vindex_cache: Mutex::new(HashMap::new()),
        };
        ds.load_tensors()?;
        Ok(ds)
    }

    fn load_tensors(&mut self) -> Result<()> {
        self.tensors.clear();
        self.vindex_cache.lock().clear();
        let chain = self.tree.chain(&self.head)?;
        let schema = self.load_schema(&chain)?;
        for tensor in schema.tensors {
            let providers: Vec<PrefixProvider> = chain
                .iter()
                .map(|node| PrefixProvider::new(self.root.clone(), tensor_prefix(node, &tensor)))
                .collect();
            let store = TensorStore::open(providers)?;
            self.tensors.insert(tensor, store);
        }
        Ok(())
    }

    fn load_schema(&self, chain: &[String]) -> Result<Schema> {
        for node in chain {
            let key = format!("versions/{node}/{SCHEMA_KEY}");
            if let Ok(data) = self.root.get(&key) {
                return Ok(serde_json::from_slice(&data)?);
            }
        }
        Ok(Schema::default())
    }

    fn persist_schema(&self) -> Result<()> {
        let schema = Schema {
            tensors: self.tensors.keys().cloned().collect(),
        };
        let key = format!("versions/{}/{SCHEMA_KEY}", self.head);
        self.root
            .put(&key, Bytes::from(serde_json::to_vec_pretty(&schema)?))?;
        Ok(())
    }

    fn persist_tree(&self) -> Result<()> {
        self.root
            .put(VERSION_INFO_KEY, Bytes::from(self.tree.to_json()?))?;
        Ok(())
    }

    fn ensure_writable(&self) -> Result<()> {
        if self.read_only {
            Err(CoreError::ReadOnlyVersion)
        } else {
            Ok(())
        }
    }

    /// Dataset name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The storage provider this dataset lives on.
    pub fn provider(&self) -> DynProvider {
        self.root.clone()
    }

    /// Whether this handle is read-only (checked out at a commit).
    pub fn is_read_only(&self) -> bool {
        self.read_only
    }

    /// Number of rows.
    pub fn len(&self) -> u64 {
        self.tensors.get(ID_TENSOR).map(|t| t.len()).unwrap_or(0)
    }

    /// Whether the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    // ------------------------------------------------------------------
    // schema
    // ------------------------------------------------------------------

    /// Create a tensor with htype defaults.
    pub fn create_tensor(
        &mut self,
        name: impl Into<String>,
        htype: Htype,
        dtype: Option<Dtype>,
    ) -> Result<()> {
        let mut opts = TensorOptions::new(htype);
        opts.dtype = dtype;
        self.create_tensor_opts(name, opts)
    }

    /// Create a tensor with explicit options.
    pub fn create_tensor_opts(
        &mut self,
        name: impl Into<String>,
        opts: TensorOptions,
    ) -> Result<()> {
        self.ensure_writable()?;
        let name = name.into();
        if name.is_empty() || name == SCHEMA_KEY || name.contains("..") {
            return Err(CoreError::Corrupt(format!("invalid tensor name {name:?}")));
        }
        if self.tensors.contains_key(&name) {
            return Err(CoreError::TensorExists(name));
        }
        let mut meta = TensorMeta::new(name.clone(), opts.htype, opts.dtype);
        if let Some(c) = opts.sample_compression {
            meta.sample_compression = c;
        }
        if let Some(c) = opts.chunk_compression {
            meta.chunk_compression = c;
        }
        if let Some(t) = opts.chunk_target_bytes {
            meta.chunk_target_bytes = t;
        }
        meta.hidden = opts.hidden;
        meta.derived_from = opts.derived_from;
        let head_dir = PrefixProvider::new(self.root.clone(), tensor_prefix(&self.head, &name));
        let mut store = TensorStore::create(meta, head_dir)?;
        // backfill empty rows so the new tensor aligns with existing rows
        // (schema evolution on a populated dataset)
        let rows = self.len();
        for _ in 0..rows {
            store.append(&Sample::empty(store.meta().dtype))?;
        }
        self.tensors.insert(name, store);
        self.persist_schema()?;
        Ok(())
    }

    /// Visible tensor names (hidden ones excluded), sorted.
    pub fn tensors(&self) -> Vec<&str> {
        self.tensors
            .iter()
            .filter(|(_, t)| !t.meta().hidden)
            .map(|(n, _)| n.as_str())
            .collect()
    }

    /// All tensor names including hidden ones.
    pub fn tensors_all(&self) -> Vec<&str> {
        self.tensors.keys().map(String::as_str).collect()
    }

    /// Visible tensors under a group prefix (§3.1 syntactic nesting):
    /// `group("camera")` lists `camera/left`, `camera/right`, ...
    pub fn group(&self, prefix: &str) -> Vec<&str> {
        let want = format!("{}/", prefix.trim_end_matches('/'));
        self.tensors()
            .into_iter()
            .filter(|n| n.starts_with(&want))
            .collect()
    }

    /// Metadata of a tensor.
    pub fn tensor_meta(&self, name: &str) -> Result<&TensorMeta> {
        Ok(self.store(name)?.meta())
    }

    /// Borrow a tensor's storage engine (low-level access for the
    /// streaming and query layers).
    pub fn store(&self, name: &str) -> Result<&TensorStore> {
        self.tensors
            .get(name)
            .ok_or_else(|| CoreError::NoSuchTensor(name.to_string()))
    }

    fn store_mut(&mut self, name: &str) -> Result<&mut TensorStore> {
        self.tensors
            .get_mut(name)
            .ok_or_else(|| CoreError::NoSuchTensor(name.to_string()))
    }

    // ------------------------------------------------------------------
    // rows
    // ------------------------------------------------------------------

    /// Append one row. Tensors absent from the row store the empty marker;
    /// a fresh sample id is generated into the hidden id tensor.
    pub fn append_row<'a>(
        &mut self,
        values: impl IntoIterator<Item = (&'a str, Sample)>,
    ) -> Result<()> {
        self.ensure_writable()?;
        let mut row: Row = values.into_iter().collect();
        // reject unknown tensors up front so the row stays atomic
        for tensor in row.tensors() {
            if !self.tensors.contains_key(tensor) {
                return Err(CoreError::NoSuchTensor(tensor.to_string()));
            }
            if self.tensors[tensor].meta().hidden {
                return Err(CoreError::NoSuchTensor(format!("{tensor} (hidden)")));
            }
        }
        for (name, store) in self.tensors.iter_mut() {
            if name == ID_TENSOR {
                store.append(&Sample::scalar(sample_id::generate()))?;
            } else if store.meta().hidden {
                store.append(&Sample::empty(store.meta().dtype))?;
            } else if let Some(sample) = row.take(name) {
                store.append(&sample)?;
            } else {
                store.append(&Sample::empty(store.meta().dtype))?;
            }
        }
        Ok(())
    }

    /// Append many rows.
    pub fn extend_rows(&mut self, rows: impl IntoIterator<Item = Row>) -> Result<()> {
        for row in rows {
            let pairs: Vec<(String, Sample)> = row
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect();
            self.append_row(pairs.iter().map(|(k, v)| (k.as_str(), v.clone())))?;
        }
        Ok(())
    }

    /// Read one sample.
    pub fn get(&self, tensor: &str, row: u64) -> Result<Sample> {
        self.store(tensor)?.get(row)
    }

    /// Read only a sample's shape (fast path used by queries, §3.4's
    /// hidden shape use case).
    pub fn get_shape(&self, tensor: &str, row: u64) -> Result<deeplake_tensor::Shape> {
        self.store(tensor)?.get_shape(row)
    }

    /// Read a whole row across visible tensors.
    pub fn get_row(&self, row: u64) -> Result<Row> {
        if row >= self.len() {
            return Err(CoreError::RowOutOfRange {
                row,
                len: self.len(),
            });
        }
        let mut out = Row::new();
        for (name, store) in &self.tensors {
            if store.meta().hidden {
                continue;
            }
            out.set(name.clone(), store.get(row)?);
        }
        Ok(out)
    }

    /// Read a block of rows with **one storage call** for all the chunks
    /// they need (§3.5/§4.6 batched scatter-gather I/O).
    ///
    /// Prefetches every not-yet-decoded chunk across `tensors` for `rows`
    /// through [`Dataset::prefetch_chunks`], then assembles rows from the
    /// decoded chunks. This is what loader workers call per task instead
    /// of N single-key reads; a chunk the plan could not resolve (or
    /// whose fetch failed) transparently falls back to the single-key
    /// path, so error reporting matches [`Dataset::get`].
    pub fn get_rows_batch(&self, tensors: &[String], rows: &[u64]) -> Result<Vec<Row>> {
        let len = self.len();
        if let Some(&bad) = rows.iter().find(|&&r| r >= len) {
            return Err(CoreError::RowOutOfRange { row: bad, len });
        }
        for name in tensors {
            self.store(name)?; // validate up front: whole-batch error
        }
        let prefetched = self.prefetch_chunks(tensors, rows)?;
        rows.iter()
            .map(|&row| {
                let mut out = Row::new();
                for name in tensors {
                    out.set(name.clone(), prefetched.get(self, name, row)?);
                }
                Ok(out)
            })
            .collect()
    }

    /// Fetch and decode, in **one batched storage call**, every chunk the
    /// given `tensors` need to serve `rows` — the chunk-granular scan
    /// primitive shared by the loader's task reads and TQL's pushdown
    /// executor. Returns the decoded chunks *pinned* per tensor (the
    /// shared chunk memo is FIFO across worker threads; pinning keeps a
    /// task's chunks alive for its whole assembly) plus the number of
    /// storage round trips issued (0 or 1).
    ///
    /// Tensors that don't exist are skipped — readers hitting them later
    /// report the per-row error exactly like [`Dataset::get`]. Fetch or
    /// decode failures are likewise deferred to the single-key fallback.
    pub fn prefetch_chunks(&self, tensors: &[String], rows: &[u64]) -> Result<PrefetchedChunks> {
        let mut plan = ReadPlan::new();
        let mut admissions: Vec<(usize, u64, usize)> = Vec::new();
        let mut pinned: HashMap<String, HashMap<u64, Arc<deeplake_format::Chunk>>> =
            HashMap::with_capacity(tensors.len());
        for (tensor_index, name) in tensors.iter().enumerate() {
            let Ok(store) = self.store(name) else {
                continue;
            };
            pinned.entry(name.clone()).or_default();
            for (chunk_id, key) in store.batch_fetches(rows) {
                if let Some(key) = key {
                    let index = plan.whole(key);
                    admissions.push((tensor_index, chunk_id, index));
                }
            }
        }
        let mut round_trips = 0;
        let mut fetch_ns = 0;
        let mut decode_ns = 0;
        if !plan.is_empty() {
            round_trips = 1;
            let fetch_t = std::time::Instant::now();
            let outcome = self.root.execute(&plan);
            fetch_ns = fetch_t.elapsed().as_nanos() as u64;
            let decode_t = std::time::Instant::now();
            for (tensor_index, chunk_id, index) in admissions {
                if let Ok(data) = &outcome.results[index] {
                    // a corrupt blob is NOT an error here: the single-key
                    // path retries it and reports the row-level error,
                    // matching `Dataset::get` semantics
                    let name = &tensors[tensor_index];
                    if let Ok(chunk) = self.store(name)?.admit_chunk(chunk_id, data) {
                        pinned
                            .get_mut(name)
                            .expect("entry created above")
                            .insert(chunk_id, chunk);
                    }
                }
            }
            decode_ns = decode_t.elapsed().as_nanos() as u64;
        }
        Ok(PrefetchedChunks {
            by_tensor: pinned,
            round_trips,
            fetch_ns,
            decode_ns,
        })
    }

    /// Read one sample, preferring pinned decoded chunks over the shared
    /// memo (see [`Dataset::prefetch_chunks`]).
    pub fn get_with_pinned(
        &self,
        tensor: &str,
        row: u64,
        pinned: &HashMap<u64, Arc<deeplake_format::Chunk>>,
    ) -> Result<Sample> {
        self.store(tensor)?.get_with_chunks(row, pinned)
    }

    /// Conservative scalar summary of `tensor`'s rows `[start, end)`, or
    /// `None` when any covering chunk lacks statistics (see
    /// [`TensorStore::stats_for_rows`]). Unknown tensors report `None`
    /// rather than erroring — the pruning layer treats both as "cannot
    /// prune" and lets row-level evaluation surface the real error.
    pub fn chunk_stats_for_rows(
        &self,
        tensor: &str,
        start: u64,
        end: u64,
    ) -> Option<deeplake_format::ChunkStats> {
        self.tensors.get(tensor)?.stats_for_rows(start, end)
    }

    /// `tensor`'s row space as chunk-aligned spans (see
    /// [`TensorStore::chunk_spans`]).
    pub fn chunk_spans(&self, tensor: &str) -> Result<Vec<(Option<u64>, u64, u64)>> {
        Ok(self.store(tensor)?.chunk_spans())
    }

    // ------------------------------------------------------------------
    // vector (embedding) search index
    // ------------------------------------------------------------------

    /// Build (or rebuild) a vector similarity index over `tensor` and
    /// persist it under the tensor's `vector_index/` key family in the
    /// HEAD version. The tensor must hold fixed-shape rank-1 `F32`/`F64`
    /// vectors in every row.
    ///
    /// The index covers the rows present at build time; later appends
    /// leave it valid (consumers exact-scan the unindexed tail), while
    /// in-place updates and re-chunking tombstone it so it can never
    /// serve wrong rows — rebuild after such mutations to regain the
    /// approximate path.
    pub fn build_vector_index(
        &mut self,
        tensor: &str,
        spec: &IndexSpec,
    ) -> Result<IndexBuildReport> {
        self.ensure_writable()?;
        let meta = self.tensor_meta(tensor)?;
        if !matches!(meta.dtype, Dtype::F32 | Dtype::F64) {
            return Err(CoreError::Index(deeplake_index::IndexError::Unsupported(
                format!("tensor {tensor:?} has dtype {:?}, need F32/F64", meta.dtype),
            )));
        }
        if meta.length == 0 {
            return Err(CoreError::Index(deeplake_index::IndexError::Unsupported(
                format!("tensor {tensor:?} has no rows to index"),
            )));
        }
        if !meta.is_uniform() || meta.max_shape.rank() != 1 || meta.max_shape.dims()[0] == 0 {
            return Err(CoreError::Index(deeplake_index::IndexError::Unsupported(
                format!(
                    "tensor {tensor:?} is not fixed-shape rank-1 (shapes {:?}..{:?})",
                    meta.min_shape, meta.max_shape
                ),
            )));
        }
        let dim = meta.max_shape.dims()[0] as usize;
        let n = self.store(tensor)?.len();

        // batched read of every vector: block-prefetch the chunks, decode
        // each once, flatten to f32
        let tensors = [tensor.to_string()];
        let mut vectors: Vec<f32> = Vec::with_capacity(n as usize * dim);
        const BLOCK: u64 = 1024;
        let mut start = 0u64;
        while start < n {
            let rows: Vec<u64> = (start..(start + BLOCK).min(n)).collect();
            let prefetched = self.prefetch_chunks(&tensors, &rows)?;
            for &row in &rows {
                let sample = prefetched.get(self, tensor, row)?;
                let values = sample.to_f64_vec();
                if values.len() != dim {
                    return Err(CoreError::Index(deeplake_index::IndexError::Unsupported(
                        format!(
                            "row {row} of {tensor:?} has {} elements, expected {dim}",
                            values.len()
                        ),
                    )));
                }
                vectors.extend(values.iter().map(|&v| v as f32));
            }
            start += BLOCK;
        }

        let index = VectorIndex::build(&vectors, dim, spec)?;
        let report = IndexBuildReport {
            tensor: tensor.to_string(),
            rows: index.rows(),
            dim,
            kind: index.kind(),
            clusters: match &index {
                VectorIndex::Ivf(ivf) => ivf.nlist(),
                VectorIndex::Flat { .. } => 0,
            },
        };
        let shared = Arc::new(index);
        self.store_mut(tensor)?.save_vector_index(&shared)?;
        self.vindex_cache
            .lock()
            .insert(tensor.to_string(), Some(shared));
        Ok(report)
    }

    /// The tensor's vector index, if a valid one is resolvable through
    /// the version chain (`None` when never built, tombstoned by an
    /// update/re-chunk, unreadable, or the dataset predates the
    /// `vector_index/` key family). Loaded once per handle and memoized.
    pub fn vector_index(&self, tensor: &str) -> Option<Arc<VectorIndex>> {
        if let Some(cached) = self.vindex_cache.lock().get(tensor) {
            return cached.clone();
        }
        let loaded = self
            .tensors
            .get(tensor)
            .and_then(|store| store.load_vector_index().ok().flatten())
            .map(Arc::new);
        self.vindex_cache
            .lock()
            .insert(tensor.to_string(), loaded.clone());
        loaded
    }

    /// Stable sample id of a row.
    pub fn sample_id(&self, row: u64) -> Result<u64> {
        let s = self.store(ID_TENSOR)?.get(row)?;
        Ok(s.to_vec::<u64>()?[0])
    }

    /// Update one sample in place (§3.5 random-access writes, e.g.
    /// annotators writing labels or models storing predictions back).
    pub fn update(&mut self, tensor: &str, row: u64, sample: &Sample) -> Result<()> {
        self.ensure_writable()?;
        if tensor == ID_TENSOR {
            return Err(CoreError::Corrupt("sample ids are immutable".into()));
        }
        self.vindex_cache.lock().remove(tensor);
        self.store_mut(tensor)?.update(row, sample)
    }

    /// Optimize chunk layout (§3.5 re-chunking): every tensor whose
    /// fragmentation exceeds `threshold` (runs per chunk; 1.0 is perfect)
    /// is rewritten into fresh sequential chunks. Returns
    /// `(tensor, before, after)` for each re-chunked tensor.
    pub fn optimize(&mut self, threshold: f64) -> Result<Vec<(String, f64, f64)>> {
        self.ensure_writable()?;
        self.vindex_cache.lock().clear();
        let mut out = Vec::new();
        let names: Vec<String> = self.tensors.keys().cloned().collect();
        for name in names {
            let store = self.tensors.get_mut(&name).expect("own keys");
            if store.fragmentation() > threshold {
                let (before, after) = store.rechunk()?;
                out.push((name, before, after));
            }
        }
        self.flush()?;
        Ok(out)
    }

    /// Persist all pending state.
    pub fn flush(&mut self) -> Result<()> {
        for store in self.tensors.values_mut() {
            store.flush()?;
        }
        self.persist_schema()?;
        self.persist_tree()?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // version control (§4.2)
    // ------------------------------------------------------------------

    /// Commit: seal the current state as an immutable snapshot. Returns
    /// the commit id.
    pub fn commit(&mut self, message: &str) -> Result<String> {
        self.ensure_writable()?;
        self.flush()?;
        let branch = self.tree.node(&self.head)?.branch.clone();
        let (sealed, new_tip) = self.tree.commit(&branch, message)?;
        for (name, store) in self.tensors.iter_mut() {
            let dir = PrefixProvider::new(self.root.clone(), tensor_prefix(&new_tip, name));
            store.start_new_version(dir)?;
        }
        self.head = new_tip;
        self.persist_schema()?;
        self.persist_tree()?;
        Ok(sealed)
    }

    /// Checkout a branch (writable) or a commit id (read-only snapshot).
    pub fn checkout(&mut self, reference: &str) -> Result<()> {
        if !self.read_only {
            self.flush()?;
        }
        let target = self.tree.resolve(reference)?;
        self.read_only = self.tree.node(&target)?.committed;
        self.head = target;
        self.load_tensors()?;
        Ok(())
    }

    /// Create a new branch off the last commit of the current branch and
    /// check it out.
    pub fn checkout_new_branch(&mut self, name: &str) -> Result<()> {
        self.flush()?;
        let from = match &self.tree.node(&self.head)?.parent {
            Some(parent) => parent.clone(),
            None => {
                return Err(CoreError::Corrupt(
                    "commit at least once before branching".into(),
                ))
            }
        };
        let tip = self.tree.create_branch(name, &from)?;
        self.head = tip;
        self.read_only = false;
        self.persist_tree()?;
        self.load_tensors()?;
        self.persist_schema()?;
        Ok(())
    }

    /// All branch names.
    pub fn branches(&self) -> Vec<&str> {
        self.tree.branches()
    }

    /// Current branch name.
    pub fn current_branch(&self) -> Result<&str> {
        Ok(&self.tree.node(&self.head)?.branch)
    }

    /// Current head node id (the mutable tip, not the last commit).
    pub fn head_id(&self) -> &str {
        &self.head
    }

    /// Commit log of the current branch: `(id, message, timestamp_ms)`.
    pub fn log(&self) -> Result<Vec<(String, String, u64)>> {
        let branch = self.current_branch()?.to_string();
        Ok(self
            .tree
            .log(&branch)?
            .into_iter()
            .map(|n| {
                (
                    n.id.clone(),
                    n.message.clone().unwrap_or_default(),
                    n.timestamp_ms,
                )
            })
            .collect())
    }

    /// The version tree (read access for tooling).
    pub fn version_tree(&self) -> &VersionTree {
        &self.tree
    }

    /// Accumulated per-tensor changes of `tip` since `base` (both node
    /// ids), read from the stored commit-diff files.
    fn accumulated_diffs(&self, tip: &str, base: &str) -> Result<HashMap<String, CommitDiff>> {
        let mut out: HashMap<String, CommitDiff> = HashMap::new();
        for node in self.tree.path_since(tip, base)? {
            let schema = self.load_schema(&self.tree.chain(&node)?)?;
            for tensor in schema.tensors {
                let key = format!("{}/commit_diff.json", tensor_prefix(&node, &tensor));
                if let Ok(data) = self.root.get(&key) {
                    let diff = CommitDiff::from_json(&data)?;
                    out.entry(tensor).or_default().merge_from(&diff);
                }
            }
        }
        Ok(out)
    }

    /// Compare two refs (§4.2 Diff): per-tensor rows added/updated on each
    /// side since their merge base.
    pub fn diff(&self, a: &str, b: &str) -> Result<DiffSummary> {
        let na = self.tree.resolve(a)?;
        let nb = self.tree.resolve(b)?;
        let base = self.tree.lca(&na, &nb)?;
        let to_vec = |m: HashMap<String, CommitDiff>| -> Vec<TensorDiff> {
            let mut v: Vec<TensorDiff> = m
                .into_iter()
                .map(|(tensor, d)| TensorDiff {
                    tensor,
                    rows_added: d.added.len() as u64,
                    rows_updated: d.updated.len() as u64,
                })
                .collect();
            v.sort_by(|x, y| x.tensor.cmp(&y.tensor));
            v
        };
        Ok(DiffSummary {
            base: base.clone(),
            left: to_vec(self.accumulated_diffs(&na, &base)?),
            right: to_vec(self.accumulated_diffs(&nb, &base)?),
        })
    }

    /// Merge another branch into the current one (§4.2 Merge). Sample ids
    /// align rows across branches; conflicts (updated on both sides since
    /// the base) resolve per `policy`.
    pub fn merge(&mut self, branch: &str, policy: MergePolicy) -> Result<MergeReport> {
        self.ensure_writable()?;
        self.vindex_cache.lock().clear();
        self.flush()?;
        let other_tip = self.tree.resolve(branch)?;
        let base = self.tree.lca(&self.head, &other_tip)?;
        let other = Dataset::open_at(self.root.clone(), &other_tip)?;

        // id -> row maps on both sides
        let mut our_ids: HashMap<u64, u64> = HashMap::new();
        for row in 0..self.len() {
            our_ids.insert(self.sample_id(row)?, row);
        }
        let mut other_rows: Vec<(u64, u64)> = Vec::new(); // (id, other_row)
        for row in 0..other.len() {
            other_rows.push((other.sample_id(row)?, row));
        }

        // changes on each side since base
        let their_diffs = self.accumulated_diffs(&other_tip, &base)?;
        let our_diffs = self.accumulated_diffs(&self.head, &base)?;
        let union_rows = |m: &HashMap<String, CommitDiff>, pick_updated: bool| -> BTreeSet<u64> {
            let mut s = BTreeSet::new();
            for d in m.values() {
                s.extend(if pick_updated {
                    d.updated.iter()
                } else {
                    d.added.iter()
                });
            }
            s
        };
        let their_updated_rows = union_rows(&their_diffs, true);
        let our_updated_rows = union_rows(&our_diffs, true);
        let our_updated_ids: BTreeSet<u64> = our_updated_rows
            .iter()
            .filter_map(|&r| (r < self.len()).then(|| self.sample_id(r).ok()).flatten())
            .collect();

        let mut report = MergeReport::default();
        let visible: Vec<String> = self.tensors().into_iter().map(str::to_string).collect();

        // 1) conflicts + incoming updates
        let mut updates: Vec<(u64, u64)> = Vec::new(); // (our_row, other_row)
        for &(id, other_row) in &other_rows {
            let Some(&our_row) = our_ids.get(&id) else {
                continue;
            };
            if !their_updated_rows.contains(&other_row) {
                continue;
            }
            if our_updated_ids.contains(&id) {
                report.conflicts.push(id);
                match policy {
                    MergePolicy::Fail => {
                        return Err(CoreError::MergeConflict {
                            sample_ids: report.conflicts,
                        })
                    }
                    MergePolicy::Ours => continue,
                    MergePolicy::Theirs => updates.push((our_row, other_row)),
                }
            } else {
                updates.push((our_row, other_row));
            }
        }
        for (our_row, other_row) in updates {
            for tensor in &visible {
                if other.tensors.contains_key(tensor) {
                    let sample = other.get(tensor, other_row)?;
                    self.store_mut(tensor)?.update(our_row, &sample)?;
                }
            }
            report.updates_applied += 1;
        }

        // 2) rows new on the other side
        for &(id, other_row) in &other_rows {
            if our_ids.contains_key(&id) {
                continue;
            }
            // append with the *same* sample id to keep identity stable
            let names: Vec<String> = self.tensors.keys().cloned().collect();
            for name in names {
                let store = self.tensors.get_mut(&name).expect("own keys");
                if name == ID_TENSOR {
                    store.append(&Sample::scalar(id))?;
                } else if store.meta().hidden || !other.tensors.contains_key(&name) {
                    store.append(&Sample::empty(store.meta().dtype))?;
                } else {
                    store.append(&other.get(&name, other_row)?)?;
                }
            }
            report.samples_added += 1;
        }

        self.commit(&format!("merge {branch}"))?;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deeplake_storage::MemoryProvider;
    use std::sync::Arc;

    fn mem() -> DynProvider {
        Arc::new(MemoryProvider::new())
    }

    fn image(fill: u8) -> Sample {
        Sample::from_slice([4, 4, 3], &[fill; 48]).unwrap()
    }

    fn basic() -> Dataset {
        let mut ds = Dataset::create(mem(), "test").unwrap();
        ds.create_tensor_opts("images", {
            let mut o = TensorOptions::new(Htype::Image);
            o.sample_compression = Some(Compression::None);
            o
        })
        .unwrap();
        ds.create_tensor("labels", Htype::ClassLabel, None).unwrap();
        ds
    }

    fn append_n(ds: &mut Dataset, n: u64, offset: u8) {
        for i in 0..n {
            ds.append_row(vec![
                ("images", image(offset + i as u8)),
                ("labels", Sample::scalar((i % 10) as i32)),
            ])
            .unwrap();
        }
    }

    #[test]
    fn create_append_read() {
        let mut ds = basic();
        append_n(&mut ds, 5, 0);
        assert_eq!(ds.len(), 5);
        assert_eq!(ds.get("images", 3).unwrap(), image(3));
        assert_eq!(ds.get("labels", 3).unwrap().get_f64(0).unwrap(), 3.0);
        let row = ds.get_row(2).unwrap();
        assert_eq!(row.tensors().collect::<Vec<_>>(), vec!["images", "labels"]);
        assert!(ds.get_row(5).is_err());
    }

    #[test]
    fn hidden_id_tensor_invisible_but_present() {
        let mut ds = basic();
        append_n(&mut ds, 2, 0);
        assert_eq!(ds.tensors(), vec!["images", "labels"]);
        assert!(ds.tensors_all().contains(&ID_TENSOR));
        let id0 = ds.sample_id(0).unwrap();
        let id1 = ds.sample_id(1).unwrap();
        assert_ne!(id0, id1);
        assert_ne!(id0, 0);
        // hidden tensors can't be written through rows
        assert!(ds
            .append_row(vec![(ID_TENSOR, Sample::scalar(1u64))])
            .is_err());
    }

    #[test]
    fn missing_tensor_in_row_gets_empty_marker() {
        let mut ds = basic();
        ds.append_row(vec![("images", image(1))]).unwrap();
        assert_eq!(ds.len(), 1);
        let label = ds.get("labels", 0).unwrap();
        assert!(label.is_empty());
    }

    #[test]
    fn unknown_tensor_rejected_atomically() {
        let mut ds = basic();
        assert!(ds.append_row(vec![("ghost", Sample::scalar(1u8))]).is_err());
        assert_eq!(ds.len(), 0);
    }

    #[test]
    fn flush_and_reopen() {
        let provider = mem();
        {
            let mut ds = Dataset::create(provider.clone(), "persist").unwrap();
            ds.create_tensor("labels", Htype::ClassLabel, None).unwrap();
            for i in 0..10 {
                ds.append_row(vec![("labels", Sample::scalar(i))]).unwrap();
            }
            ds.flush().unwrap();
        }
        let ds = Dataset::open(provider).unwrap();
        assert_eq!(ds.name(), "persist");
        assert_eq!(ds.len(), 10);
        assert_eq!(ds.get("labels", 7).unwrap().get_f64(0).unwrap(), 7.0);
    }

    #[test]
    fn commit_checkout_time_travel() {
        let mut ds = basic();
        append_n(&mut ds, 3, 0);
        let c1 = ds.commit("three rows").unwrap();
        append_n(&mut ds, 2, 10);
        assert_eq!(ds.len(), 5);
        // time travel to the sealed commit: read-only, 3 rows
        ds.checkout(&c1).unwrap();
        assert!(ds.is_read_only());
        assert_eq!(ds.len(), 3);
        assert!(ds.append_row(vec![("images", image(9))]).is_err());
        // back to the branch tip
        ds.checkout("main").unwrap();
        assert!(!ds.is_read_only());
        assert_eq!(ds.len(), 5);
        assert_eq!(ds.get("images", 4).unwrap(), image(11));
    }

    #[test]
    fn branches_isolate_changes() {
        let mut ds = basic();
        append_n(&mut ds, 2, 0);
        ds.commit("base").unwrap();
        ds.checkout_new_branch("exp").unwrap();
        append_n(&mut ds, 3, 50);
        assert_eq!(ds.len(), 5);
        assert_eq!(ds.current_branch().unwrap(), "exp");
        ds.flush().unwrap();
        ds.checkout("main").unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.current_branch().unwrap(), "main");
        ds.checkout("exp").unwrap();
        assert_eq!(ds.len(), 5);
    }

    #[test]
    fn branch_requires_commit() {
        let mut ds = basic();
        assert!(ds.checkout_new_branch("too-early").is_err());
    }

    #[test]
    fn update_and_diff() {
        let mut ds = basic();
        append_n(&mut ds, 4, 0);
        let c1 = ds.commit("v1").unwrap();
        ds.update("labels", 1, &Sample::scalar(99i32)).unwrap();
        ds.flush().unwrap();
        assert_eq!(ds.get("labels", 1).unwrap().get_f64(0).unwrap(), 99.0);
        let d = ds.diff(&c1, "main").unwrap();
        assert_eq!(d.base, c1);
        assert!(d
            .left
            .iter()
            .all(|t| t.rows_added == 0 && t.rows_updated == 0));
        let labels = d.right.iter().find(|t| t.tensor == "labels").unwrap();
        assert_eq!(labels.rows_updated, 1);
    }

    #[test]
    fn log_lists_commits() {
        let mut ds = basic();
        append_n(&mut ds, 1, 0);
        ds.commit("first").unwrap();
        append_n(&mut ds, 1, 1);
        ds.commit("second").unwrap();
        let log = ds.log().unwrap();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].1, "second");
        assert_eq!(log[1].1, "first");
    }

    #[test]
    fn merge_appends_new_rows() {
        let mut ds = basic();
        append_n(&mut ds, 2, 0);
        ds.commit("base").unwrap();
        ds.checkout_new_branch("side").unwrap();
        append_n(&mut ds, 3, 20);
        ds.commit("side adds").unwrap();
        ds.checkout("main").unwrap();
        let report = ds.merge("side", MergePolicy::Ours).unwrap();
        assert_eq!(report.samples_added, 3);
        assert_eq!(report.updates_applied, 0);
        assert!(report.conflicts.is_empty());
        assert_eq!(ds.len(), 5);
        assert_eq!(ds.get("images", 4).unwrap(), image(22));
    }

    #[test]
    fn merge_applies_their_updates() {
        let mut ds = basic();
        append_n(&mut ds, 3, 0);
        ds.commit("base").unwrap();
        ds.checkout_new_branch("fix").unwrap();
        ds.update("labels", 0, &Sample::scalar(42i32)).unwrap();
        ds.commit("fix label").unwrap();
        ds.checkout("main").unwrap();
        let report = ds.merge("fix", MergePolicy::Ours).unwrap();
        assert_eq!(report.updates_applied, 1);
        assert_eq!(ds.get("labels", 0).unwrap().get_f64(0).unwrap(), 42.0);
    }

    #[test]
    fn merge_conflict_policies() {
        // build two branches updating the same row
        let make = || {
            let mut ds = basic();
            append_n(&mut ds, 2, 0);
            ds.commit("base").unwrap();
            ds.checkout_new_branch("side").unwrap();
            ds.update("labels", 0, &Sample::scalar(7i32)).unwrap();
            ds.commit("side update").unwrap();
            ds.checkout("main").unwrap();
            ds.update("labels", 0, &Sample::scalar(5i32)).unwrap();
            ds.commit("main update").unwrap();
            ds
        };
        // ours: keep 5
        let mut ds = make();
        let r = ds.merge("side", MergePolicy::Ours).unwrap();
        assert_eq!(r.conflicts.len(), 1);
        assert_eq!(ds.get("labels", 0).unwrap().get_f64(0).unwrap(), 5.0);
        // theirs: take 7
        let mut ds = make();
        let r = ds.merge("side", MergePolicy::Theirs).unwrap();
        assert_eq!(r.conflicts.len(), 1);
        assert_eq!(ds.get("labels", 0).unwrap().get_f64(0).unwrap(), 7.0);
        // fail: error out
        let mut ds = make();
        assert!(matches!(
            ds.merge("side", MergePolicy::Fail),
            Err(CoreError::MergeConflict { .. })
        ));
    }

    #[test]
    fn schema_evolution_backfills() {
        let mut ds = basic();
        append_n(&mut ds, 3, 0);
        ds.create_tensor("boxes", Htype::BBox, None).unwrap();
        assert_eq!(ds.len(), 3);
        assert!(ds.get("boxes", 2).unwrap().is_empty());
        // new rows can fill it
        ds.append_row(vec![
            ("images", image(9)),
            (
                "boxes",
                Sample::from_slice([1, 4], &[1.0f32, 2.0, 3.0, 4.0]).unwrap(),
            ),
        ])
        .unwrap();
        assert_eq!(ds.get("boxes", 3).unwrap().shape().dims(), &[1, 4]);
    }

    #[test]
    fn groups_list_members() {
        let mut ds = Dataset::create(mem(), "grouped").unwrap();
        ds.create_tensor("camera/left", Htype::Image, None).unwrap();
        ds.create_tensor("camera/right", Htype::Image, None)
            .unwrap();
        ds.create_tensor("lidar", Htype::Generic, Some(Dtype::F32))
            .unwrap();
        assert_eq!(ds.group("camera"), vec!["camera/left", "camera/right"]);
        assert!(ds.group("lidar").is_empty());
    }

    #[test]
    fn double_create_rejected() {
        let provider = mem();
        let _ds = Dataset::create(provider.clone(), "one").unwrap();
        assert!(Dataset::create(provider, "two").is_err());
    }

    #[test]
    fn open_missing_dataset_fails() {
        assert!(Dataset::open(mem()).is_err());
    }

    #[test]
    fn optimize_rechunks_fragmented_tensors() {
        let mut ds = basic();
        append_n(&mut ds, 20, 0);
        ds.commit("base").unwrap();
        for row in [1u64, 5, 9, 13, 17] {
            ds.update("labels", row, &Sample::scalar(99i32)).unwrap();
        }
        ds.flush().unwrap();
        let report = ds.optimize(1.1).unwrap();
        assert!(
            report.iter().any(|(t, ..)| t == "labels"),
            "labels were fragmented"
        );
        for (_, before, after) in &report {
            assert!(after <= before);
        }
        // values survive
        assert_eq!(ds.get("labels", 5).unwrap().get_f64(0).unwrap(), 99.0);
        assert_eq!(ds.get("labels", 6).unwrap().get_f64(0).unwrap(), 6.0);
        // history still intact
        let log = ds.log().unwrap();
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn updates_blocked_on_id_tensor() {
        let mut ds = basic();
        append_n(&mut ds, 1, 0);
        assert!(ds.update(ID_TENSOR, 0, &Sample::scalar(1u64)).is_err());
    }

    fn embedding_ds(n: u64) -> Dataset {
        let mut ds = Dataset::create(mem(), "emb").unwrap();
        ds.create_tensor("emb", Htype::Embedding, None).unwrap();
        for i in 0..n {
            let v = [(i % 4) as f32 * 10.0, i as f32 * 0.01];
            ds.append_row(vec![("emb", Sample::from_slice([2], &v).unwrap())])
                .unwrap();
        }
        ds.flush().unwrap();
        ds
    }

    #[test]
    fn build_vector_index_and_reload() {
        let mut ds = embedding_ds(32);
        let report = ds
            .build_vector_index(
                "emb",
                &IndexSpec {
                    nlist: Some(4),
                    ..IndexSpec::default()
                },
            )
            .unwrap();
        assert_eq!(report.rows, 32);
        assert_eq!(report.dim, 2);
        assert_eq!(report.kind, IndexKind::Ivf);
        assert_eq!(report.clusters, 4);
        let idx = ds.vector_index("emb").expect("cached");
        assert_eq!(idx.rows(), 32);
        // a fresh handle resolves the persisted index through storage
        ds.flush().unwrap();
        let reopened = Dataset::open(ds.provider()).unwrap();
        let idx = reopened.vector_index("emb").expect("persisted");
        assert_eq!(idx.dim(), 2);
    }

    #[test]
    fn build_vector_index_rejects_unsuitable_tensors() {
        let mut ds = basic();
        append_n(&mut ds, 3, 0);
        // wrong dtype (u8 images), wrong rank
        assert!(matches!(
            ds.build_vector_index("images", &IndexSpec::default()),
            Err(CoreError::Index(_))
        ));
        // unknown tensor
        assert!(ds
            .build_vector_index("ghost", &IndexSpec::default())
            .is_err());
        // empty tensor
        let mut ds = Dataset::create(mem(), "empty").unwrap();
        ds.create_tensor("emb", Htype::Embedding, None).unwrap();
        assert!(matches!(
            ds.build_vector_index("emb", &IndexSpec::default()),
            Err(CoreError::Index(_))
        ));
        // ragged shapes
        let mut ds = Dataset::create(mem(), "ragged").unwrap();
        ds.create_tensor("emb", Htype::Embedding, None).unwrap();
        ds.append_row(vec![(
            "emb",
            Sample::from_slice([2], &[1.0f32, 2.0]).unwrap(),
        )])
        .unwrap();
        ds.append_row(vec![(
            "emb",
            Sample::from_slice([3], &[1.0f32, 2.0, 3.0]).unwrap(),
        )])
        .unwrap();
        assert!(matches!(
            ds.build_vector_index("emb", &IndexSpec::default()),
            Err(CoreError::Index(_))
        ));
    }

    #[test]
    fn update_invalidates_vector_index_commit_keeps_it() {
        let mut ds = embedding_ds(16);
        ds.build_vector_index("emb", &IndexSpec::default()).unwrap();
        assert!(ds.vector_index("emb").is_some());
        ds.commit("indexed").unwrap();
        assert!(ds.vector_index("emb").is_some(), "commit keeps the index");
        ds.update("emb", 0, &Sample::from_slice([2], &[9.0f32, 9.0]).unwrap())
            .unwrap();
        assert!(ds.vector_index("emb").is_none(), "update tombstones it");
        // the tombstone survives flush + reopen
        ds.flush().unwrap();
        let reopened = Dataset::open(ds.provider()).unwrap();
        assert!(reopened.vector_index("emb").is_none());
        // rebuild clears the tombstone
        let mut ds = Dataset::open(reopened.provider()).unwrap();
        ds.build_vector_index("emb", &IndexSpec::default()).unwrap();
        assert!(ds.vector_index("emb").is_some());
    }

    #[test]
    fn build_vector_index_requires_writable_head() {
        let mut ds = embedding_ds(8);
        let c = ds.commit("sealed").unwrap();
        ds.checkout(&c).unwrap();
        assert!(matches!(
            ds.build_vector_index("emb", &IndexSpec::default()),
            Err(CoreError::ReadOnlyVersion)
        ));
    }
}
