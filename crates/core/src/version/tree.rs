//! The branching version tree.

use std::collections::{BTreeMap, HashSet};

use serde::{Deserialize, Serialize};

use crate::error::CoreError;
use crate::Result;

/// One node of the version tree. A node is *uncommitted* while it is the
/// mutable tip of its branch; [`VersionTree::commit`] seals it and opens a
/// fresh child tip.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VersionNode {
    /// Node id (also the name of its storage sub-directory).
    pub id: String,
    /// Parent node, `None` for the root.
    pub parent: Option<String>,
    /// Branch this node belongs to.
    pub branch: String,
    /// Commit message (set when sealed).
    pub message: Option<String>,
    /// Creation timestamp, milliseconds since the Unix epoch.
    pub timestamp_ms: u64,
    /// Whether the node is sealed (immutable snapshot).
    pub committed: bool,
}

/// The whole tree plus branch heads, persisted as
/// `version_control_info.json` at the dataset root.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VersionTree {
    nodes: BTreeMap<String, VersionNode>,
    /// Branch name → tip node id.
    branches: BTreeMap<String, String>,
    next_seq: u64,
}

fn now_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

impl VersionTree {
    /// A fresh tree with an uncommitted root tip on `main`.
    pub fn new() -> Self {
        let mut tree = VersionTree {
            nodes: BTreeMap::new(),
            branches: BTreeMap::new(),
            next_seq: 0,
        };
        let root = tree.new_node(None, "main");
        tree.branches.insert("main".into(), root);
        tree
    }

    fn new_node(&mut self, parent: Option<String>, branch: &str) -> String {
        let id = format!("v{:06}", self.next_seq);
        self.next_seq += 1;
        self.nodes.insert(
            id.clone(),
            VersionNode {
                id: id.clone(),
                parent,
                branch: branch.to_string(),
                message: None,
                timestamp_ms: now_ms(),
                committed: false,
            },
        );
        id
    }

    /// Node by id.
    pub fn node(&self, id: &str) -> Result<&VersionNode> {
        self.nodes
            .get(id)
            .ok_or_else(|| CoreError::NoSuchVersion(id.to_string()))
    }

    /// All branch names.
    pub fn branches(&self) -> Vec<&str> {
        self.branches.keys().map(String::as_str).collect()
    }

    /// Tip node of a branch.
    pub fn branch_tip(&self, branch: &str) -> Result<&str> {
        self.branches
            .get(branch)
            .map(String::as_str)
            .ok_or_else(|| CoreError::NoSuchVersion(branch.to_string()))
    }

    /// Resolve a ref: a branch name (→ its tip) or a node id.
    pub fn resolve(&self, reference: &str) -> Result<String> {
        if let Some(tip) = self.branches.get(reference) {
            return Ok(tip.clone());
        }
        if self.nodes.contains_key(reference) {
            return Ok(reference.to_string());
        }
        Err(CoreError::NoSuchVersion(reference.to_string()))
    }

    /// The chain from `id` up to the root, inclusive — the traversal order
    /// for chunk resolution (§4.2: "the version control tree is traversed
    /// starting from the current commit, heading towards the first
    /// commit").
    pub fn chain(&self, id: &str) -> Result<Vec<String>> {
        let mut out = Vec::new();
        let mut cur = Some(id.to_string());
        while let Some(c) = cur {
            let node = self.node(&c)?;
            out.push(c);
            cur = node.parent.clone();
        }
        Ok(out)
    }

    /// Seal the tip of `branch` with `message` and open a fresh tip.
    /// Returns `(sealed_commit_id, new_tip_id)`.
    pub fn commit(&mut self, branch: &str, message: &str) -> Result<(String, String)> {
        let tip = self.branch_tip(branch)?.to_string();
        {
            let node = self.nodes.get_mut(&tip).expect("tip exists");
            node.committed = true;
            node.message = Some(message.to_string());
            node.timestamp_ms = now_ms();
        }
        let new_tip = self.new_node(Some(tip.clone()), branch);
        self.branches.insert(branch.to_string(), new_tip.clone());
        Ok((tip, new_tip))
    }

    /// Create a branch rooted at `from` (a resolved node id). The new
    /// branch gets its own uncommitted tip whose parent is `from`.
    pub fn create_branch(&mut self, name: &str, from: &str) -> Result<String> {
        if self.branches.contains_key(name) {
            return Err(CoreError::BranchExists(name.to_string()));
        }
        self.node(from)?; // validate
        let tip = self.new_node(Some(from.to_string()), name);
        self.branches.insert(name.to_string(), tip.clone());
        Ok(tip)
    }

    /// Lowest common ancestor of two nodes (merge base).
    pub fn lca(&self, a: &str, b: &str) -> Result<String> {
        let ancestors_a: HashSet<String> = self.chain(a)?.into_iter().collect();
        for node in self.chain(b)? {
            if ancestors_a.contains(&node) {
                return Ok(node);
            }
        }
        Err(CoreError::Corrupt("version tree has no common root".into()))
    }

    /// Nodes strictly after `base` on the chain of `tip` (exclusive of
    /// base, inclusive of tip), root-most first. Used to accumulate commit
    /// diffs along a branch.
    pub fn path_since(&self, tip: &str, base: &str) -> Result<Vec<String>> {
        let mut path = Vec::new();
        for node in self.chain(tip)? {
            if node == base {
                path.reverse();
                return Ok(path);
            }
            path.push(node);
        }
        Err(CoreError::NoSuchVersion(format!(
            "{base} is not an ancestor of {tip}"
        )))
    }

    /// Commit log of a branch: sealed nodes from tip to root.
    pub fn log(&self, branch: &str) -> Result<Vec<&VersionNode>> {
        let tip = self.branch_tip(branch)?.to_string();
        Ok(self
            .chain(&tip)?
            .iter()
            .filter_map(|id| self.nodes.get(id))
            .filter(|n| n.committed)
            .collect())
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> Result<Vec<u8>> {
        Ok(serde_json::to_vec_pretty(self)?)
    }

    /// Parse from JSON.
    pub fn from_json(data: &[u8]) -> Result<Self> {
        Ok(serde_json::from_slice(data)?)
    }
}

impl Default for VersionTree {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_tree_has_main_tip() {
        let t = VersionTree::new();
        let tip = t.branch_tip("main").unwrap();
        assert_eq!(tip, "v000000");
        assert!(!t.node(tip).unwrap().committed);
        assert_eq!(t.chain(tip).unwrap(), vec!["v000000"]);
    }

    #[test]
    fn commit_seals_and_advances() {
        let mut t = VersionTree::new();
        let (sealed, new_tip) = t.commit("main", "first").unwrap();
        assert_eq!(sealed, "v000000");
        assert_eq!(new_tip, "v000001");
        assert!(t.node(&sealed).unwrap().committed);
        assert_eq!(t.node(&sealed).unwrap().message.as_deref(), Some("first"));
        assert!(!t.node(&new_tip).unwrap().committed);
        assert_eq!(t.chain(&new_tip).unwrap(), vec!["v000001", "v000000"]);
    }

    #[test]
    fn branch_from_commit() {
        let mut t = VersionTree::new();
        let (c1, _) = t.commit("main", "base").unwrap();
        let tip = t.create_branch("exp", &c1).unwrap();
        assert_eq!(t.branch_tip("exp").unwrap(), tip);
        assert_eq!(t.node(&tip).unwrap().parent.as_deref(), Some(c1.as_str()));
        assert!(matches!(
            t.create_branch("exp", &c1),
            Err(CoreError::BranchExists(_))
        ));
        assert!(t.create_branch("bad", "nope").is_err());
    }

    #[test]
    fn resolve_branch_and_id() {
        let mut t = VersionTree::new();
        let (c1, tip) = t.commit("main", "x").unwrap();
        assert_eq!(t.resolve("main").unwrap(), tip);
        assert_eq!(t.resolve(&c1).unwrap(), c1);
        assert!(t.resolve("ghost").is_err());
    }

    #[test]
    fn lca_of_branches() {
        let mut t = VersionTree::new();
        let (base, main_tip) = t.commit("main", "base").unwrap();
        let exp_tip = t.create_branch("exp", &base).unwrap();
        assert_eq!(t.lca(&main_tip, &exp_tip).unwrap(), base);
        assert_eq!(t.lca(&base, &exp_tip).unwrap(), base);
        assert_eq!(t.lca(&main_tip, &main_tip).unwrap(), main_tip);
    }

    #[test]
    fn path_since_base() {
        let mut t = VersionTree::new();
        let (c1, _) = t.commit("main", "1").unwrap();
        let (c2, tip) = t.commit("main", "2").unwrap();
        assert_eq!(
            t.path_since(&tip, &c1).unwrap(),
            vec![c2.clone(), tip.clone()]
        );
        assert_eq!(t.path_since(&tip, &tip).unwrap(), Vec::<String>::new());
        assert!(t.path_since(&c1, &tip).is_err());
    }

    #[test]
    fn log_lists_sealed_commits() {
        let mut t = VersionTree::new();
        t.commit("main", "a").unwrap();
        t.commit("main", "b").unwrap();
        let log = t.log("main").unwrap();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].message.as_deref(), Some("b"));
        assert_eq!(log[1].message.as_deref(), Some("a"));
    }

    #[test]
    fn json_roundtrip() {
        let mut t = VersionTree::new();
        t.commit("main", "a").unwrap();
        t.create_branch("dev", "v000000").unwrap();
        let blob = t.to_json().unwrap();
        let back = VersionTree::from_json(&blob).unwrap();
        assert_eq!(back, t);
    }
}
