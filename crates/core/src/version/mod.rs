//! Version control built into the format (§4.2).
//!
//! "Different versions of the dataset exist in the same storage, separated
//! by sub-directories. [...] A version control info file present at the
//! root of the directory keeps track of the relationship between these
//! versions as a branching version-control tree."
//!
//! * [`tree`] — the version tree (nodes, branches, LCA, ref resolution).
//! * [`diff`] — per-tensor commit diffs and user-facing diff summaries.
//! * [`merge`] — merge policies.

pub mod diff;
pub mod merge;
pub mod tree;

pub use diff::{CommitDiff, DiffSummary, TensorDiff};
pub use merge::MergePolicy;
pub use tree::{VersionNode, VersionTree};

/// Key of the version control info file at the dataset root.
pub const VERSION_INFO_KEY: &str = "version_control_info.json";

/// Storage prefix of one version's sub-directory.
pub fn version_prefix(node_id: &str) -> String {
    format!("versions/{node_id}")
}

/// Storage prefix of one tensor within one version.
pub fn tensor_prefix(node_id: &str, tensor: &str) -> String {
    format!("versions/{node_id}/{tensor}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefixes() {
        assert_eq!(version_prefix("v000001"), "versions/v000001");
        assert_eq!(
            tensor_prefix("v000001", "images"),
            "versions/v000001/images"
        );
    }
}
