//! Commit diffs (§4.2: "for each version, a commit diff file is also
//! stored per tensor. This makes it faster to compare across versions and
//! branches").

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::Result;

/// What one version changed in one tensor.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommitDiff {
    /// Rows appended in this version (row indices are dataset-global).
    pub added: BTreeSet<u64>,
    /// Rows updated in place in this version.
    pub updated: BTreeSet<u64>,
}

impl CommitDiff {
    /// Empty diff.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether nothing changed.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.updated.is_empty()
    }

    /// Fold another diff into this one (accumulating along a branch path).
    pub fn merge_from(&mut self, other: &CommitDiff) {
        self.added.extend(other.added.iter().copied());
        self.updated.extend(other.updated.iter().copied());
        // a row both added and updated along the path counts as added
        for a in &self.added {
            self.updated.remove(a);
        }
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> Result<Vec<u8>> {
        Ok(serde_json::to_vec(self)?)
    }

    /// Parse from JSON.
    pub fn from_json(data: &[u8]) -> Result<Self> {
        Ok(serde_json::from_slice(data)?)
    }
}

/// Per-tensor entry of a [`DiffSummary`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TensorDiff {
    /// Tensor name.
    pub tensor: String,
    /// Rows added between the two versions.
    pub rows_added: u64,
    /// Rows updated between the two versions.
    pub rows_updated: u64,
}

/// User-facing summary of `diff(a, b)`: changes on each side relative to
/// the merge base.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiffSummary {
    /// Merge base the two sides are compared against.
    pub base: String,
    /// Changes on the first side since the base.
    pub left: Vec<TensorDiff>,
    /// Changes on the second side since the base.
    pub right: Vec<TensorDiff>,
}

impl DiffSummary {
    /// Whether both sides are identical to the base.
    pub fn is_empty(&self) -> bool {
        self.left
            .iter()
            .all(|d| d.rows_added == 0 && d.rows_updated == 0)
            && self
                .right
                .iter()
                .all(|d| d.rows_added == 0 && d.rows_updated == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_from_accumulates() {
        let mut a = CommitDiff::new();
        a.added.extend([1, 2]);
        let mut b = CommitDiff::new();
        b.added.insert(3);
        b.updated.extend([1, 9]);
        a.merge_from(&b);
        assert_eq!(a.added, BTreeSet::from([1, 2, 3]));
        // row 1 was added earlier on the same path -> not an update
        assert_eq!(a.updated, BTreeSet::from([9]));
    }

    #[test]
    fn empty_checks() {
        assert!(CommitDiff::new().is_empty());
        let mut d = CommitDiff::new();
        d.updated.insert(0);
        assert!(!d.is_empty());
        assert!(DiffSummary::default().is_empty());
    }

    #[test]
    fn json_roundtrip() {
        let mut d = CommitDiff::new();
        d.added.extend([5, 6]);
        d.updated.insert(1);
        let back = CommitDiff::from_json(&d.to_json().unwrap()).unwrap();
        assert_eq!(back, d);
    }
}
