//! Merge policies (§4.2: "Merge: merges two different versions of the
//! dataset, resolving conflicts according to the policy defined by the
//! user").

use serde::{Deserialize, Serialize};

/// How conflicting row updates are resolved when merging a branch in.
///
/// A conflict is a sample (identified by its stable id) that was updated on
/// *both* sides since the merge base.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum MergePolicy {
    /// Keep our version of conflicting samples.
    #[default]
    Ours,
    /// Take the incoming branch's version of conflicting samples.
    Theirs,
    /// Refuse to merge when conflicts exist.
    Fail,
}

impl std::fmt::Display for MergePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergePolicy::Ours => write!(f, "ours"),
            MergePolicy::Theirs => write!(f, "theirs"),
            MergePolicy::Fail => write!(f, "fail"),
        }
    }
}

/// Outcome of a merge.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MergeReport {
    /// Sample ids appended from the incoming branch.
    pub samples_added: u64,
    /// Sample ids whose updates were applied from the incoming branch.
    pub updates_applied: u64,
    /// Conflicting sample ids resolved by the policy (kept ours or took
    /// theirs).
    pub conflicts: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_default() {
        assert_eq!(MergePolicy::default(), MergePolicy::Ours);
        assert_eq!(MergePolicy::Theirs.to_string(), "theirs");
        assert_eq!(MergePolicy::Fail.to_string(), "fail");
    }
}
