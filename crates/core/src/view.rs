//! Dataset views: an ordered subset of rows (§4.4-4.5).
//!
//! TQL queries produce views; views stream to the dataloader or
//! materialize into a new, optimally laid out dataset. Views can be saved
//! to storage (under `views/`) so experiments are reproducible against a
//! pinned version.

use bytes::Bytes;
use deeplake_storage::StorageProvider;
use deeplake_tensor::Sample;
use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;
use crate::error::CoreError;
use crate::row::Row;
use crate::Result;

/// An ordered subset of a dataset's rows.
pub struct DatasetView<'d> {
    dataset: &'d Dataset,
    indices: Vec<u64>,
}

/// Serialized form of a saved view.
#[derive(Debug, Serialize, Deserialize)]
struct SavedView {
    /// The head node id the view was computed at.
    version: String,
    indices: Vec<u64>,
}

impl<'d> DatasetView<'d> {
    /// A view over explicit row indices. Indices are validated lazily on
    /// access (queries may legitimately produce indices then rows get
    /// appended after).
    pub fn new(dataset: &'d Dataset, indices: Vec<u64>) -> Self {
        DatasetView { dataset, indices }
    }

    /// A view of every row, in order.
    pub fn full(dataset: &'d Dataset) -> Self {
        DatasetView {
            indices: (0..dataset.len()).collect(),
            dataset,
        }
    }

    /// The underlying dataset.
    pub fn dataset(&self) -> &'d Dataset {
        self.dataset
    }

    /// Row indices into the source dataset.
    pub fn indices(&self) -> &[u64] {
        &self.indices
    }

    /// Number of rows in the view.
    pub fn len(&self) -> u64 {
        self.indices.len() as u64
    }

    /// Whether the view selects no rows.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Read one sample through the view.
    pub fn get(&self, tensor: &str, i: u64) -> Result<Sample> {
        let row = self.source_row(i)?;
        self.dataset.get(tensor, row)
    }

    /// Read one row through the view.
    pub fn get_row(&self, i: u64) -> Result<Row> {
        let row = self.source_row(i)?;
        self.dataset.get_row(row)
    }

    /// Map a view position to the source row index.
    pub fn source_row(&self, i: u64) -> Result<u64> {
        self.indices
            .get(i as usize)
            .copied()
            .ok_or(CoreError::RowOutOfRange {
                row: i,
                len: self.len(),
            })
    }

    /// Sparseness: mean gap between consecutive source rows. 1.0 means the
    /// view is contiguous (streams at full chunk efficiency); large values
    /// mean scattered chunk reads — the paper's motivation for
    /// materializing query views (§4.5).
    pub fn sparseness(&self) -> f64 {
        if self.indices.len() < 2 {
            return 1.0;
        }
        let mut sorted = self.indices.clone();
        sorted.sort_unstable();
        let span = (sorted[sorted.len() - 1] - sorted[0] + 1) as f64;
        span / self.indices.len() as f64
    }

    /// Compose: a view of this view.
    pub fn subview(&self, positions: &[u64]) -> Result<DatasetView<'d>> {
        let mut indices = Vec::with_capacity(positions.len());
        for &p in positions {
            indices.push(self.source_row(p)?);
        }
        Ok(DatasetView {
            dataset: self.dataset,
            indices,
        })
    }

    /// Persist the view under `views/<name>.json`, pinned to the current
    /// head version.
    pub fn save(&self, name: &str) -> Result<()> {
        let saved = SavedView {
            version: self.dataset.head_id().to_string(),
            indices: self.indices.clone(),
        };
        self.dataset.provider().put(
            &format!("views/{name}.json"),
            Bytes::from(serde_json::to_vec(&saved)?),
        )?;
        Ok(())
    }

    /// Load a saved view. Fails if it was saved at a different version
    /// than the dataset is currently at (views pin their version).
    pub fn load(dataset: &'d Dataset, name: &str) -> Result<DatasetView<'d>> {
        let data = dataset
            .provider()
            .get(&format!("views/{name}.json"))
            .map_err(|_| CoreError::NoSuchVersion(format!("view {name:?} not found")))?;
        let saved: SavedView = serde_json::from_slice(&data)?;
        if saved.version != dataset.head_id() {
            return Err(CoreError::NoSuchVersion(format!(
                "view {name:?} was saved at version {}, dataset is at {}",
                saved.version,
                dataset.head_id()
            )));
        }
        Ok(DatasetView {
            dataset,
            indices: saved.indices,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deeplake_storage::MemoryProvider;
    use deeplake_tensor::Htype;
    use std::sync::Arc;

    fn dataset(n: u64) -> Dataset {
        let mut ds = Dataset::create(Arc::new(MemoryProvider::new()), "v").unwrap();
        ds.create_tensor("labels", Htype::ClassLabel, None).unwrap();
        for i in 0..n {
            ds.append_row(vec![("labels", Sample::scalar(i as i32))])
                .unwrap();
        }
        ds.flush().unwrap();
        ds
    }

    #[test]
    fn full_and_filtered_access() {
        let ds = dataset(10);
        let full = DatasetView::full(&ds);
        assert_eq!(full.len(), 10);
        let v = DatasetView::new(&ds, vec![9, 3, 3, 0]);
        assert_eq!(v.len(), 4);
        assert_eq!(v.get("labels", 0).unwrap().get_f64(0).unwrap(), 9.0);
        assert_eq!(v.get("labels", 2).unwrap().get_f64(0).unwrap(), 3.0);
        assert!(v.get("labels", 4).is_err());
        let row = v.get_row(3).unwrap();
        assert_eq!(row.get("labels").unwrap().get_f64(0).unwrap(), 0.0);
    }

    #[test]
    fn sparseness_measures_gaps() {
        let ds = dataset(100);
        assert_eq!(DatasetView::full(&ds).sparseness(), 1.0);
        let sparse = DatasetView::new(&ds, vec![0, 50, 99]);
        assert!(sparse.sparseness() > 30.0);
        assert_eq!(DatasetView::new(&ds, vec![7]).sparseness(), 1.0);
    }

    #[test]
    fn subview_composes() {
        let ds = dataset(10);
        let v = DatasetView::new(&ds, vec![2, 4, 6, 8]);
        let sub = v.subview(&[0, 3]).unwrap();
        assert_eq!(sub.indices(), &[2, 8]);
        assert!(v.subview(&[9]).is_err());
    }

    #[test]
    fn save_load_roundtrip() {
        let ds = dataset(5);
        let v = DatasetView::new(&ds, vec![4, 1]);
        v.save("evens").unwrap();
        let back = DatasetView::load(&ds, "evens").unwrap();
        assert_eq!(back.indices(), &[4, 1]);
        assert!(DatasetView::load(&ds, "ghost").is_err());
    }

    #[test]
    fn load_rejects_stale_version() {
        let mut ds = dataset(5);
        DatasetView::full(&ds).save("pinned").unwrap();
        ds.commit("advance").unwrap();
        assert!(DatasetView::load(&ds, "pinned").is_err());
    }
}
