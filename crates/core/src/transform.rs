//! Parallel sample-wise transforms (§4.1.2).
//!
//! The paper's `@deeplake.compute` decorator takes `sample_in` and
//! `sample_out`, supports one-to-one and one-to-many mappings, stacks into
//! pipelines, and runs batched over a process pool. The Rust analogue is
//! [`ComputeFn`] (a closure from an input [`Row`] to zero or more output
//! rows), composed into a [`TransformPipeline`] and executed on a
//! crossbeam-scoped thread pool — native threads need no GIL workaround.
//! Arbitrary row iterators can be ingested the same way (the Airbyte
//! connector reduces to exactly this, per DESIGN.md).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::dataset::Dataset;
use crate::error::CoreError;
use crate::row::Row;
use crate::Result;

/// A sample-wise transformation: receives one input row and emits any
/// number of output rows through `emit`.
pub trait ComputeFn: Send + Sync {
    /// Transform `sample_in`, calling `emit` once per output row.
    fn apply(&self, sample_in: &Row, emit: &mut dyn FnMut(Row)) -> Result<()>;
}

impl<F> ComputeFn for F
where
    F: Fn(&Row, &mut dyn FnMut(Row)) -> Result<()> + Send + Sync,
{
    fn apply(&self, sample_in: &Row, emit: &mut dyn FnMut(Row)) -> Result<()> {
        self(sample_in, emit)
    }
}

/// Execution statistics of a transform run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransformStats {
    /// Rows consumed from the source.
    pub rows_in: u64,
    /// Rows appended to the destination.
    pub rows_out: u64,
    /// Worker threads used.
    pub workers: usize,
}

/// A stack of compute functions applied in order ("users can stack
/// together multiple transformations and define complex pipelines").
#[derive(Default, Clone)]
pub struct TransformPipeline {
    stages: Vec<Arc<dyn ComputeFn>>,
}

/// Rows processed per scheduling unit. Batching keeps workers operating on
/// nearby chunks ("the scheduler batches sample-wise transformations
/// operating on nearby chunks").
const BATCH: usize = 32;

impl TransformPipeline {
    /// Empty pipeline (identity).
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a stage.
    pub fn then(mut self, f: impl ComputeFn + 'static) -> Self {
        self.stages.push(Arc::new(f));
        self
    }

    /// Number of stages.
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Run the pipeline over a batch of rows sequentially (used per
    /// worker, and directly in tests).
    pub fn run_rows(&self, rows: Vec<Row>) -> Result<Vec<Row>> {
        let mut current = rows;
        for stage in &self.stages {
            let mut next = Vec::with_capacity(current.len());
            for row in &current {
                let mut failed = None;
                let mut emit = |r: Row| next.push(r);
                if let Err(e) = stage.apply(row, &mut emit) {
                    failed = Some(e);
                }
                if let Some(e) = failed {
                    return Err(e);
                }
            }
            current = next;
        }
        Ok(current)
    }

    /// Transform a dataset into `dest` using `workers` threads. Source
    /// rows are read in contiguous batches; output order matches input
    /// order (batch-stable).
    pub fn apply(
        &self,
        source: &Dataset,
        dest: &mut Dataset,
        workers: usize,
    ) -> Result<TransformStats> {
        let n = source.len();
        let rows: Result<Vec<Row>> = (0..n).map(|i| source.get_row(i)).collect();
        self.ingest_rows(rows?, dest, workers)
    }

    /// Ingest any row iterator through the pipeline into `dest` — the ETL
    /// entry point (§4.1.1: "the user can provide an arbitrary iterator
    /// with custom objects to create ingestion workflows").
    pub fn ingest<I>(&self, rows: I, dest: &mut Dataset, workers: usize) -> Result<TransformStats>
    where
        I: IntoIterator<Item = Row>,
    {
        self.ingest_rows(rows.into_iter().collect(), dest, workers)
    }

    fn ingest_rows(
        &self,
        rows: Vec<Row>,
        dest: &mut Dataset,
        workers: usize,
    ) -> Result<TransformStats> {
        let workers = workers.max(1);
        let rows_in = rows.len() as u64;
        let batches: Vec<Vec<Row>> = rows.chunks(BATCH).map(|c| c.to_vec()).collect();
        let n_batches = batches.len();
        let results: Vec<Mutex<Option<Result<Vec<Row>>>>> =
            (0..n_batches).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let batches = &batches;
        let results = &results;
        let next = &next;

        crossbeam::thread::scope(|scope| {
            for _ in 0..workers.min(n_batches.max(1)) {
                scope.spawn(move |_| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n_batches {
                        break;
                    }
                    let out = self.run_rows(batches[i].clone());
                    *results[i].lock() = Some(out);
                });
            }
        })
        .map_err(|_| CoreError::Corrupt("transform worker panicked".into()))?;

        let mut rows_out = 0u64;
        for slot in results {
            let batch = slot
                .lock()
                .take()
                .ok_or_else(|| CoreError::Corrupt("transform batch missing".into()))??;
            for row in batch {
                let pairs: Vec<(String, _)> = row
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.clone()))
                    .collect();
                dest.append_row(pairs.iter().map(|(k, v)| (k.as_str(), v.clone())))?;
                rows_out += 1;
            }
        }
        Ok(TransformStats {
            rows_in,
            rows_out,
            workers,
        })
    }

    /// Apply a strictly one-to-one pipeline in place ("the transformation
    /// can also be applied in place without creating a new dataset").
    /// Every output row's tensors are written back over the source row.
    pub fn apply_in_place(&self, ds: &mut Dataset, workers: usize) -> Result<TransformStats> {
        let n = ds.len();
        let rows: Result<Vec<Row>> = (0..n).map(|i| ds.get_row(i)).collect();
        let rows = rows?;
        let workers = workers.max(1);
        let outputs: Vec<Mutex<Option<Result<Vec<Row>>>>> =
            rows.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let (rows_ref, outputs_ref, next_ref) = (&rows, &outputs, &next);

        crossbeam::thread::scope(|scope| {
            for _ in 0..workers.min(rows.len().max(1)) {
                scope.spawn(move |_| loop {
                    let i = next_ref.fetch_add(1, Ordering::Relaxed);
                    if i >= rows_ref.len() {
                        break;
                    }
                    let out = self.run_rows(vec![rows_ref[i].clone()]);
                    *outputs_ref[i].lock() = Some(out);
                });
            }
        })
        .map_err(|_| CoreError::Corrupt("transform worker panicked".into()))?;

        for (i, slot) in outputs.iter().enumerate() {
            let out = slot
                .lock()
                .take()
                .ok_or_else(|| CoreError::Corrupt("transform output missing".into()))??;
            if out.len() != 1 {
                return Err(CoreError::Corrupt(format!(
                    "in-place transforms must be one-to-one; row {i} produced {} rows",
                    out.len()
                )));
            }
            for (tensor, sample) in out[0].iter() {
                ds.update(tensor, i as u64, sample)?;
            }
        }
        Ok(TransformStats {
            rows_in: n,
            rows_out: n,
            workers,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deeplake_storage::MemoryProvider;
    use deeplake_tensor::{Htype, Sample};
    use std::sync::Arc as StdArc;

    fn labels_ds(name: &str) -> Dataset {
        let mut ds = Dataset::create(StdArc::new(MemoryProvider::new()), name).unwrap();
        ds.create_tensor("labels", Htype::ClassLabel, None).unwrap();
        ds
    }

    fn filled(n: i32) -> Dataset {
        let mut ds = labels_ds("src");
        for i in 0..n {
            ds.append_row(vec![("labels", Sample::scalar(i))]).unwrap();
        }
        ds.flush().unwrap();
        ds
    }

    fn double_stage() -> impl ComputeFn {
        |row: &Row, emit: &mut dyn FnMut(Row)| {
            let v = row.get("labels").unwrap().get_f64(0).unwrap() as i32;
            emit(Row::new().with("labels", Sample::scalar(v * 2)));
            Ok(())
        }
    }

    #[test]
    fn one_to_one_transform() {
        let src = filled(10);
        let mut dest = labels_ds("dest");
        let stats = TransformPipeline::new()
            .then(double_stage())
            .apply(&src, &mut dest, 4)
            .unwrap();
        assert_eq!(stats.rows_in, 10);
        assert_eq!(stats.rows_out, 10);
        for i in 0..10 {
            assert_eq!(
                dest.get("labels", i).unwrap().get_f64(0).unwrap(),
                (i * 2) as f64
            );
        }
    }

    #[test]
    fn one_to_many_transform() {
        let src = filled(5);
        let mut dest = labels_ds("dest");
        let fanout = |row: &Row, emit: &mut dyn FnMut(Row)| {
            let v = row.get("labels").unwrap().get_f64(0).unwrap() as i32;
            for k in 0..3 {
                emit(Row::new().with("labels", Sample::scalar(v * 10 + k)));
            }
            Ok(())
        };
        let stats = TransformPipeline::new()
            .then(fanout)
            .apply(&src, &mut dest, 2)
            .unwrap();
        assert_eq!(stats.rows_out, 15);
        // order is batch-stable: row 0 fans out first
        assert_eq!(dest.get("labels", 0).unwrap().get_f64(0).unwrap(), 0.0);
        assert_eq!(dest.get("labels", 2).unwrap().get_f64(0).unwrap(), 2.0);
        assert_eq!(dest.get("labels", 3).unwrap().get_f64(0).unwrap(), 10.0);
    }

    #[test]
    fn stacked_stages_compose() {
        let src = filled(4);
        let mut dest = labels_ds("dest");
        let add_one = |row: &Row, emit: &mut dyn FnMut(Row)| {
            let v = row.get("labels").unwrap().get_f64(0).unwrap() as i32;
            emit(Row::new().with("labels", Sample::scalar(v + 1)));
            Ok(())
        };
        let p = TransformPipeline::new().then(double_stage()).then(add_one);
        assert_eq!(p.num_stages(), 2);
        p.apply(&src, &mut dest, 2).unwrap();
        // (v * 2) + 1
        assert_eq!(dest.get("labels", 3).unwrap().get_f64(0).unwrap(), 7.0);
    }

    #[test]
    fn filtering_via_zero_emission() {
        let src = filled(10);
        let mut dest = labels_ds("dest");
        let keep_even = |row: &Row, emit: &mut dyn FnMut(Row)| {
            let v = row.get("labels").unwrap().get_f64(0).unwrap() as i32;
            if v % 2 == 0 {
                emit(row.clone());
            }
            Ok(())
        };
        let stats = TransformPipeline::new()
            .then(keep_even)
            .apply(&src, &mut dest, 3)
            .unwrap();
        assert_eq!(stats.rows_out, 5);
    }

    #[test]
    fn ingest_from_iterator() {
        let mut dest = labels_ds("dest");
        let rows = (0..20).map(|i| Row::new().with("labels", Sample::scalar(i)));
        let stats = TransformPipeline::new().ingest(rows, &mut dest, 4).unwrap();
        assert_eq!(stats.rows_out, 20);
        assert_eq!(dest.len(), 20);
    }

    #[test]
    fn errors_propagate() {
        let src = filled(3);
        let mut dest = labels_ds("dest");
        let failing = |_row: &Row, _emit: &mut dyn FnMut(Row)| -> Result<()> {
            Err(CoreError::Corrupt("boom".into()))
        };
        assert!(TransformPipeline::new()
            .then(failing)
            .apply(&src, &mut dest, 2)
            .is_err());
    }

    #[test]
    fn in_place_transform_updates_rows() {
        let mut ds = filled(6);
        ds.commit("seal").unwrap();
        TransformPipeline::new()
            .then(double_stage())
            .apply_in_place(&mut ds, 3)
            .unwrap();
        for i in 0..6 {
            assert_eq!(
                ds.get("labels", i).unwrap().get_f64(0).unwrap(),
                (i * 2) as f64
            );
        }
        assert_eq!(ds.len(), 6);
    }

    #[test]
    fn in_place_rejects_fanout() {
        let mut ds = filled(2);
        let fanout = |row: &Row, emit: &mut dyn FnMut(Row)| {
            emit(row.clone());
            emit(row.clone());
            Ok(())
        };
        assert!(TransformPipeline::new()
            .then(fanout)
            .apply_in_place(&mut ds, 1)
            .is_err());
    }

    #[test]
    fn identity_pipeline_copies() {
        let src = filled(3);
        let mut dest = labels_ds("dest");
        let stats = TransformPipeline::new().apply(&src, &mut dest, 1).unwrap();
        assert_eq!(stats.rows_out, 3);
        assert_eq!(dest.get("labels", 1).unwrap().get_f64(0).unwrap(), 1.0);
    }
}
