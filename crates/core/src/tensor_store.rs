//! Per-tensor storage engine.
//!
//! A `TensorStore` owns one tensor's chunks, chunk encoder, tile encoder
//! and metadata, bound to a *chain* of version sub-directories (HEAD
//! first). Writes always land in the HEAD directory; reads resolve a chunk
//! id by walking the chain toward the first commit and checking each
//! version's `chunk_set` (§4.2) — copy-on-write at chunk granularity.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use bytes::Bytes;
use deeplake_codec::Compression;
use deeplake_format::chunk::{decode_sample, encode_sample};
use deeplake_format::{
    Chunk, ChunkBuilder, ChunkEncoder, ChunkSizePolicy, ChunkStats, ChunkStatsIndex, FlushReason,
    SampleLocation, TensorMeta, TileEncoder, TileLayout,
};
use deeplake_index::{VectorIndex, VECTOR_INDEX_KEY, VECTOR_INDEX_STALE_KEY};
use deeplake_storage::{PrefixProvider, StorageProvider};
use deeplake_tensor::{Htype, Sample};
use parking_lot::Mutex;

use crate::error::CoreError;
use crate::version::CommitDiff;
use crate::Result;

const META_KEY: &str = "meta.json";
const ENCODER_KEY: &str = "chunk_encoder";
const STATS_KEY: &str = "chunk_stats";
const TILES_KEY: &str = "tile_encoder";
const CHUNK_SET_KEY: &str = "chunk_set.json";
const DIFF_KEY: &str = "commit_diff.json";

/// One version sub-directory of this tensor plus the set of chunks it owns.
pub struct VersionDir {
    /// Provider scoped at `versions/<node>/<tensor>/`.
    pub provider: PrefixProvider,
    /// Ids of chunks written in this version.
    pub chunk_set: HashSet<u64>,
}

impl VersionDir {
    /// Load a version dir, reading its chunk set if present.
    pub fn load(provider: PrefixProvider) -> Result<Self> {
        let chunk_set = match provider.get(CHUNK_SET_KEY) {
            Ok(data) => serde_json::from_slice::<Vec<u64>>(&data)?
                .into_iter()
                .collect(),
            Err(_) => HashSet::new(),
        };
        Ok(VersionDir {
            provider,
            chunk_set,
        })
    }
}

/// Storage engine for one tensor.
pub struct TensorStore {
    meta: TensorMeta,
    encoder: ChunkEncoder,
    /// Per-chunk scalar statistics (the TQL pushdown index). Empty for
    /// datasets written before statistics existed or tensors whose
    /// samples are not scalars — readers treat a missing entry as
    /// "cannot prune".
    stats: ChunkStatsIndex,
    tiles: TileEncoder,
    builder: ChunkBuilder,
    /// HEAD first, root last.
    chain: Vec<VersionDir>,
    diff: CommitDiff,
    /// Small decoded-chunk cache (keyed by chunk id) giving each loader
    /// worker read locality without thrashing across threads.
    chunk_memo: Mutex<Vec<(u64, Arc<Chunk>)>>,
    /// Whether this handle already invalidated (or verified the absence
    /// of) the tensor's vector index — makes repeated updates write at
    /// most one tombstone.
    vector_index_invalidated: bool,
    dirty: bool,
}

fn policy_for(meta: &TensorMeta) -> ChunkSizePolicy {
    let target = meta.chunk_target_bytes as usize;
    if matches!(meta.htype.base(), Htype::Video) {
        ChunkSizePolicy::video(target)
    } else {
        ChunkSizePolicy::with_target(target)
    }
}

impl TensorStore {
    /// Create a fresh tensor in `head`.
    pub fn create(meta: TensorMeta, head: PrefixProvider) -> Result<Self> {
        let builder = ChunkBuilder::new(meta.dtype, meta.sample_compression, policy_for(&meta));
        let store = TensorStore {
            builder,
            meta,
            encoder: ChunkEncoder::new(),
            stats: ChunkStatsIndex::new(),
            tiles: TileEncoder::new(),
            chain: vec![VersionDir {
                provider: head,
                chunk_set: HashSet::new(),
            }],
            diff: CommitDiff::new(),
            chunk_memo: Mutex::new(Vec::new()),
            vector_index_invalidated: false,
            dirty: true,
        };
        Ok(store)
    }

    /// Open an existing tensor given its version chain (HEAD first). State
    /// files are loaded from the most recent version that wrote them.
    pub fn open(chain: Vec<PrefixProvider>) -> Result<Self> {
        let mut dirs = Vec::with_capacity(chain.len());
        for p in chain {
            dirs.push(VersionDir::load(p)?);
        }
        let state_dir = dirs
            .iter()
            .find(|d| d.provider.exists(META_KEY).unwrap_or(false))
            .ok_or_else(|| CoreError::Corrupt("tensor has no meta.json in any version".into()))?;
        let meta = TensorMeta::from_json(&state_dir.provider.get(META_KEY)?)?;
        let encoder = match state_dir.provider.get(ENCODER_KEY) {
            Ok(data) => ChunkEncoder::deserialize(&data)?,
            Err(_) => ChunkEncoder::new(),
        };
        // pre-statistics datasets have no stats file: open with an empty
        // index (pruning silently disabled)
        let stats = match state_dir.provider.get(STATS_KEY) {
            Ok(data) => ChunkStatsIndex::deserialize(&data)?,
            Err(_) => ChunkStatsIndex::new(),
        };
        let tiles = match state_dir.provider.get(TILES_KEY) {
            Ok(data) => TileEncoder::deserialize(&data)?,
            Err(_) => TileEncoder::new(),
        };
        let diff = match dirs[0].provider.get(DIFF_KEY) {
            Ok(data) => CommitDiff::from_json(&data)?,
            Err(_) => CommitDiff::new(),
        };
        let builder = ChunkBuilder::new(meta.dtype, meta.sample_compression, policy_for(&meta));
        Ok(TensorStore {
            builder,
            meta,
            encoder,
            stats,
            tiles,
            chain: dirs,
            diff,
            chunk_memo: Mutex::new(Vec::new()),
            vector_index_invalidated: false,
            dirty: false,
        })
    }

    /// Tensor metadata.
    pub fn meta(&self) -> &TensorMeta {
        &self.meta
    }

    /// Mutable metadata access (schema tweaks; callers must flush).
    pub fn meta_mut(&mut self) -> &mut TensorMeta {
        self.dirty = true;
        &mut self.meta
    }

    /// Number of rows, including unflushed ones.
    pub fn len(&self) -> u64 {
        self.encoder.num_rows() + self.builder.open_samples() as u64
    }

    /// Whether the tensor holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The pending commit diff for the HEAD version.
    pub fn pending_diff(&self) -> &CommitDiff {
        &self.diff
    }

    /// Fragmentation of the chunk layout (see
    /// [`ChunkEncoder::fragmentation`]).
    pub fn fragmentation(&self) -> f64 {
        self.encoder.fragmentation()
    }

    /// Append one sample.
    ///
    /// The empty marker sample (shape `[0]`) is accepted by any htype: rows
    /// with no value for this tensor store it to keep row counts aligned
    /// (§3.1: sample elements are logically independent).
    pub fn append(&mut self, sample: &Sample) -> Result<()> {
        let is_empty_marker = sample.shape().dims() == [0];
        if !is_empty_marker {
            self.meta.htype.validate(sample)?;
        }
        if sample.dtype() != self.meta.dtype {
            return Err(CoreError::Tensor(
                deeplake_tensor::TensorError::DtypeMismatch {
                    left: sample.dtype(),
                    right: self.meta.dtype,
                },
            ));
        }
        let row = self.len();
        match self.builder.push(sample)? {
            FlushReason::Buffered => {}
            FlushReason::ChunkFull(chunk) => {
                self.write_sealed_chunk(chunk)?;
            }
            FlushReason::NeedsTiling { .. } => {
                self.append_tiled(sample)?;
            }
        }
        self.meta.observe(sample);
        self.diff.added.insert(row);
        self.dirty = true;
        Ok(())
    }

    /// Append a pre-encoded blob whose codec matches the tensor's sample
    /// compression (§5: the binary is copied into a chunk without
    /// additional decoding). The caller supplies the decoded shape.
    pub fn append_encoded(&mut self, blob: Vec<u8>, shape: deeplake_tensor::Shape) -> Result<()> {
        let row = self.len();
        let synthetic = Sample::zeros(self.meta.dtype, shape.clone());
        self.meta.htype.validate(&synthetic)?;
        match self.builder.push_encoded(blob, shape)? {
            FlushReason::Buffered => {}
            FlushReason::ChunkFull(chunk) => self.write_sealed_chunk(chunk)?,
            FlushReason::NeedsTiling { .. } => {
                return Err(CoreError::Corrupt(
                    "pre-encoded oversized blobs cannot be tiled; append the decoded sample".into(),
                ))
            }
        }
        self.meta.observe(&synthetic);
        self.diff.added.insert(row);
        self.dirty = true;
        Ok(())
    }

    fn append_tiled(&mut self, sample: &Sample) -> Result<()> {
        let row = self.encoder.num_rows() + self.builder.open_samples() as u64;
        // tiles must map to rows *after* currently open samples: seal them
        self.seal_open_chunk()?;
        debug_assert_eq!(row, self.encoder.num_rows());

        let tile_shape = deeplake_format::tile_encoder::compute_tile_shape(
            sample.shape(),
            sample.dtype().size(),
            self.builder.policy().target_bytes,
        );
        let pieces = deeplake_format::tile_encoder::split_into_tiles(sample, &tile_shape)?;
        let mut tile_chunks = Vec::with_capacity(pieces.len());
        for (_, tile) in &pieces {
            let mut chunk = Chunk::new(self.meta.dtype);
            chunk.append_sample(tile, self.meta.sample_compression)?;
            let id = self.put_chunk(&chunk)?;
            tile_chunks.push(id);
        }
        let first = tile_chunks[0];
        self.tiles.insert(
            row,
            TileLayout {
                sample_shape: sample.shape().clone(),
                tile_shape,
                tile_chunks,
            },
        );
        // the encoder still owns row accounting: point the row at its first
        // tile chunk (readers consult the tile encoder before the map)
        self.encoder.append_run(first, 0, 1);
        Ok(())
    }

    /// Update a row in place (§3.5 random access writes). The new value is
    /// written to a fresh chunk in the HEAD version; the index map is
    /// re-pointed.
    pub fn update(&mut self, row: u64, sample: &Sample) -> Result<()> {
        if row >= self.len() {
            return Err(CoreError::RowOutOfRange {
                row,
                len: self.len(),
            });
        }
        self.meta.htype.validate(sample)?;
        if sample.dtype() != self.meta.dtype {
            return Err(CoreError::Tensor(
                deeplake_tensor::TensorError::DtypeMismatch {
                    left: sample.dtype(),
                    right: self.meta.dtype,
                },
            ));
        }
        self.invalidate_vector_index()?;
        // rows still in the open chunk get sealed first so the encoder owns them
        if row >= self.encoder.num_rows() {
            self.seal_open_chunk()?;
        }
        let blob = encode_sample(sample, self.meta.sample_compression)?;
        if blob.len() > self.builder.policy().max_bytes && !self.builder.policy().allow_oversized {
            // oversized replacement: tile it
            let tile_shape = deeplake_format::tile_encoder::compute_tile_shape(
                sample.shape(),
                sample.dtype().size(),
                self.builder.policy().target_bytes,
            );
            let pieces = deeplake_format::tile_encoder::split_into_tiles(sample, &tile_shape)?;
            let mut tile_chunks = Vec::with_capacity(pieces.len());
            for (_, tile) in &pieces {
                let mut chunk = Chunk::new(self.meta.dtype);
                chunk.append_sample(tile, self.meta.sample_compression)?;
                tile_chunks.push(self.put_chunk(&chunk)?);
            }
            let first = tile_chunks[0];
            self.tiles.insert(
                row,
                TileLayout {
                    sample_shape: sample.shape().clone(),
                    tile_shape,
                    tile_chunks,
                },
            );
            self.encoder.replace_row(
                row,
                SampleLocation {
                    chunk_id: first,
                    local_index: 0,
                },
            )?;
        } else {
            let mut chunk = Chunk::new(self.meta.dtype);
            chunk.append_blob(&blob, sample.shape().clone());
            let id = self.put_chunk(&chunk)?;
            if sample.num_elements() == 1 {
                if let Ok(v) = sample.get_f64(0) {
                    self.record_stats(id, ChunkStats::single(v));
                }
            }
            self.tiles.remove(row);
            self.encoder.replace_row(
                row,
                SampleLocation {
                    chunk_id: id,
                    local_index: 0,
                },
            )?;
        }
        self.meta.observe(sample);
        self.meta.length -= 1; // observe() counts a new row; updates do not add one
        if !self.diff.added.contains(&row) {
            self.diff.updated.insert(row);
        }
        self.chunk_memo.lock().clear();
        self.dirty = true;
        Ok(())
    }

    /// Read one sample.
    pub fn get(&self, row: u64) -> Result<Sample> {
        self.get_inner(row, None)
    }

    /// Read one sample, preferring `pinned` decoded chunks over the
    /// shared memo. The batched read path pins each task's chunks so
    /// concurrent workers cannot evict them mid-assembly (the memo is
    /// FIFO and shared across all workers).
    pub fn get_with_chunks(&self, row: u64, pinned: &HashMap<u64, Arc<Chunk>>) -> Result<Sample> {
        self.get_inner(row, Some(pinned))
    }

    fn get_inner(&self, row: u64, pinned: Option<&HashMap<u64, Arc<Chunk>>>) -> Result<Sample> {
        let chunk_of = |id: u64| -> Result<Arc<Chunk>> {
            if let Some(map) = pinned {
                if let Some(chunk) = map.get(&id) {
                    return Ok(chunk.clone());
                }
            }
            self.read_chunk(id)
        };
        if row >= self.len() {
            return Err(CoreError::RowOutOfRange {
                row,
                len: self.len(),
            });
        }
        if let Some(layout) = self.tiles.get(row) {
            let layout = layout.clone();
            let mut tiles = Vec::with_capacity(layout.tile_chunks.len());
            for &cid in &layout.tile_chunks {
                let chunk = chunk_of(cid)?;
                tiles.push(chunk.sample(0)?);
            }
            return Ok(deeplake_format::tile_encoder::reassemble_tiles(
                &layout,
                self.meta.dtype,
                &tiles,
            )?);
        }
        if row >= self.encoder.num_rows() {
            let local = (row - self.encoder.num_rows()) as usize;
            return Ok(self.builder.open_chunk().sample(local)?);
        }
        let loc = self.encoder.locate(row)?;
        let chunk = chunk_of(loc.chunk_id)?;
        Ok(chunk.sample(loc.local_index as usize)?)
    }

    /// Read only the shape of a row (decodes the chunk directory, not the
    /// sample payload, unless the row is tiled).
    pub fn get_shape(&self, row: u64) -> Result<deeplake_tensor::Shape> {
        if let Some(layout) = self.tiles.get(row) {
            return Ok(layout.sample_shape.clone());
        }
        if row >= self.len() {
            return Err(CoreError::RowOutOfRange {
                row,
                len: self.len(),
            });
        }
        if row >= self.encoder.num_rows() {
            let local = (row - self.encoder.num_rows()) as usize;
            return Ok(self.builder.open_chunk().records()[local].shape.clone());
        }
        let loc = self.encoder.locate(row)?;
        let chunk = self.read_chunk(loc.chunk_id)?;
        Ok(chunk.records()[loc.local_index as usize].shape.clone())
    }

    /// Recorded statistics of one chunk, if any.
    pub fn chunk_stats(&self, chunk_id: u64) -> Option<ChunkStats> {
        self.stats.get(chunk_id)
    }

    /// Number of chunks with recorded statistics.
    pub fn stats_coverage(&self) -> usize {
        self.stats.len()
    }

    /// Load the tensor's vector (embedding) index, resolving through the
    /// version chain: the most recent version that wrote either the
    /// index or a stale tombstone decides. Returns `None` for tensors
    /// that never built one, whose index was invalidated by an in-place
    /// update or re-chunk, or datasets written before the
    /// `vector_index/` key family existed.
    pub fn load_vector_index(&self) -> Result<Option<VectorIndex>> {
        for dir in &self.chain {
            // a storage error probing the tombstone means "unknown":
            // treated as stale, mirroring the write path's conservatism
            // — never resolve an ancestor index past a tombstone we
            // could not rule out
            match dir.provider.exists(VECTOR_INDEX_STALE_KEY) {
                Ok(false) => {}
                Ok(true) | Err(_) => return Ok(None),
            }
            if let Ok(data) = dir.provider.get(VECTOR_INDEX_KEY) {
                let index = VectorIndex::deserialize(&data)
                    .map_err(|e| CoreError::Corrupt(format!("vector index: {e}")))?;
                return Ok(Some(index));
            }
        }
        Ok(None)
    }

    /// Persist a freshly built vector index into the HEAD version
    /// (clearing any stale tombstone there).
    pub fn save_vector_index(&mut self, index: &VectorIndex) -> Result<()> {
        let head = &self.chain[0].provider;
        head.put(VECTOR_INDEX_KEY, Bytes::from(index.serialize()))?;
        head.delete(VECTOR_INDEX_STALE_KEY)?;
        self.vector_index_invalidated = false;
        Ok(())
    }

    /// Invalidate the tensor's vector index: called by every mutation
    /// that can change the value behind an already-indexed row (in-place
    /// update, re-chunk). Deletes the HEAD copy and writes a tombstone
    /// so an index persisted in an *ancestor* version directory cannot
    /// be resolved either; a stale index can never serve wrong rows.
    /// Appends don't invalidate — indexed rows keep their values and the
    /// consumer exact-scans the unindexed tail.
    fn invalidate_vector_index(&mut self) -> Result<()> {
        if self.vector_index_invalidated {
            return Ok(());
        }
        // decide whether a tombstone is needed; a storage error while
        // probing means "unknown", which must count as "an index might
        // exist" — skipping on error could leave a stale index live
        let mut must_tombstone = false;
        'walk: for dir in &self.chain {
            match dir.provider.exists(VECTOR_INDEX_STALE_KEY) {
                Ok(true) => break 'walk, // already tombstoned this recently
                Ok(false) => {}
                Err(_) => {
                    must_tombstone = true;
                    break 'walk;
                }
            }
            match dir.provider.exists(VECTOR_INDEX_KEY) {
                Ok(true) | Err(_) => {
                    must_tombstone = true;
                    break 'walk;
                }
                Ok(false) => {}
            }
        }
        if must_tombstone {
            let head = &self.chain[0].provider;
            head.delete(VECTOR_INDEX_KEY)?;
            head.put(VECTOR_INDEX_STALE_KEY, Bytes::from_static(b"1"))?;
        }
        // memoized only on success: a failed tombstone write (the `?`
        // above) leaves the flag clear so the next mutation retries
        self.vector_index_invalidated = true;
        Ok(())
    }

    /// Conservative scalar summary of rows `[start, end)`, or `None` when
    /// any covering chunk lacks statistics (stat-less dataset, non-scalar
    /// samples, tiled rows, or rows still in the open chunk). The query
    /// planner prunes a row span only when this returns `Some` and the
    /// filter provably rejects the whole interval.
    pub fn stats_for_rows(&self, start: u64, end: u64) -> Option<ChunkStats> {
        if start >= end || end > self.encoder.num_rows() {
            return None;
        }
        let spans = self.encoder.locate_range(start, end).ok()?;
        self.stats.merge_all(spans.into_iter().map(|(id, _, _)| id))
    }

    /// The tensor's row space as chunk-aligned spans `(chunk_id, start,
    /// len)` in row order; rows still in the open chunk report
    /// `chunk_id = None`. One span = one decodable unit — the task
    /// skeleton for chunk-granular query execution.
    pub fn chunk_spans(&self) -> Vec<(Option<u64>, u64, u64)> {
        let mut out: Vec<(Option<u64>, u64, u64)> = self
            .encoder
            .spans()
            .into_iter()
            .map(|(id, start, len)| (Some(id), start, len as u64))
            .collect();
        let open = self.builder.open_samples() as u64;
        if open > 0 {
            out.push((None, self.encoder.num_rows(), open));
        }
        out
    }

    /// Per-chunk spans covering rows `[start, end)` — the streaming
    /// layer's fetch plan. Rows still in the open chunk are reported with
    /// chunk id `u64::MAX`.
    pub fn chunk_plan(&self, start: u64, end: u64) -> Result<Vec<(u64, u32, u32)>> {
        let sealed_end = end.min(self.encoder.num_rows());
        let mut plan = if start < sealed_end {
            self.encoder.locate_range(start, sealed_end)?
        } else {
            vec![]
        };
        if end > self.encoder.num_rows() {
            let open_start = start.max(self.encoder.num_rows()) - self.encoder.num_rows();
            let open_end = end - self.encoder.num_rows();
            if open_end > open_start {
                plan.push((u64::MAX, open_start as u32, (open_end - open_start) as u32));
            }
        }
        Ok(plan)
    }

    /// Fetch and decode a chunk by id, resolving through the version chain.
    pub fn read_chunk(&self, chunk_id: u64) -> Result<Arc<Chunk>> {
        if let Some((_, chunk)) = self
            .chunk_memo
            .lock()
            .iter()
            .find(|(id, _)| *id == chunk_id)
        {
            return Ok(chunk.clone());
        }
        let key = chunk_key(chunk_id);
        for dir in &self.chain {
            if dir.chunk_set.contains(&chunk_id) {
                let data = dir.provider.get(&key)?;
                let chunk = Arc::new(Chunk::deserialize(&data)?);
                self.memoize(chunk_id, chunk.clone());
                return Ok(chunk);
            }
        }
        // fall back to probing directories (tolerates missing chunk_set files)
        for dir in &self.chain {
            if let Ok(data) = dir.provider.get(&key) {
                let chunk = Arc::new(Chunk::deserialize(&data)?);
                self.memoize(chunk_id, chunk.clone());
                return Ok(chunk);
            }
        }
        Err(CoreError::Corrupt(format!(
            "chunk {chunk_id} not found in any version"
        )))
    }

    /// The chunks rows `rows` need that are not already decoded, as
    /// `(chunk_id, absolute storage key)` pairs — the tensor's
    /// contribution to a task-level [`deeplake_storage::ReadPlan`]. Rows
    /// still in the open chunk need no fetch; a chunk whose owning
    /// version cannot be resolved from the chunk sets reports `None` and
    /// is left for [`read_chunk`](Self::read_chunk)'s probing fallback.
    pub fn batch_fetches(&self, rows: &[u64]) -> Vec<(u64, Option<String>)> {
        let sealed = self.encoder.num_rows();
        let mut ids: Vec<u64> = Vec::new();
        for &row in rows {
            if let Some(layout) = self.tiles.get(row) {
                ids.extend_from_slice(&layout.tile_chunks);
            } else if row < sealed {
                if let Ok(loc) = self.encoder.locate(row) {
                    ids.push(loc.chunk_id);
                }
            }
        }
        ids.sort_unstable();
        ids.dedup();
        let memo = self.chunk_memo.lock();
        ids.retain(|id| !memo.iter().any(|(m, _)| m == id));
        drop(memo);
        ids.into_iter()
            .map(|id| (id, self.resolve_chunk_key(id)))
            .collect()
    }

    /// Absolute storage key of a chunk, resolved through the version
    /// chain's chunk sets.
    fn resolve_chunk_key(&self, chunk_id: u64) -> Option<String> {
        let key = chunk_key(chunk_id);
        self.chain
            .iter()
            .find(|dir| dir.chunk_set.contains(&chunk_id))
            .map(|dir| dir.provider.absolute(&key))
    }

    /// Decode fetched chunk bytes into the memo so subsequent
    /// [`get`](Self::get) calls on its rows hit memory. The batched read
    /// path fetches bytes through one storage call and admits them here.
    pub fn admit_chunk(&self, chunk_id: u64, data: &bytes::Bytes) -> Result<Arc<Chunk>> {
        let chunk = Arc::new(Chunk::deserialize(data)?);
        self.memoize(chunk_id, chunk.clone());
        Ok(chunk)
    }

    /// Insert a decoded chunk into the bounded memo (FIFO eviction).
    ///
    /// Sized to hold every chunk one loader task touches (a shuffle block
    /// of rows across a handful of tensors); overflow only costs a
    /// refetch through the single-key path.
    fn memoize(&self, chunk_id: u64, chunk: Arc<Chunk>) {
        const MEMO_SLOTS: usize = 64;
        let mut memo = self.chunk_memo.lock();
        if memo.iter().any(|(id, _)| *id == chunk_id) {
            return;
        }
        if memo.len() >= MEMO_SLOTS {
            memo.remove(0);
        }
        memo.push((chunk_id, chunk));
    }

    /// Decode one sample out of the open chunk (rows past the sealed
    /// region). `local` is relative to the open chunk.
    pub fn open_chunk_sample(&self, local: usize) -> Result<Sample> {
        Ok(self.builder.open_chunk().sample(local)?)
    }

    /// Number of rows safely covered by sealed chunks.
    pub fn sealed_rows(&self) -> u64 {
        self.encoder.num_rows()
    }

    /// Whether the given row is stored tiled.
    pub fn is_tiled(&self, row: u64) -> bool {
        self.tiles.get(row).is_some()
    }

    /// Re-chunking (§3.5): "random assignment over time will produce
    /// inefficiently stored data chunks. To fix the data layout, we
    /// implement an on-the-fly re-chunking algorithm to optimize the data
    /// layout."
    ///
    /// Rewrites every row into fresh, sequential, size-bounded chunks in
    /// the HEAD version. Returns `(fragmentation_before,
    /// fragmentation_after)`. Old chunks stay in their version
    /// directories, so history remains readable.
    pub fn rechunk(&mut self) -> Result<(f64, f64)> {
        self.invalidate_vector_index()?;
        self.seal_open_chunk()?;
        let before = self.fragmentation();
        let rows = self.encoder.num_rows();
        // decode through the old layout first
        let mut samples = Vec::with_capacity(rows as usize);
        for r in 0..rows {
            samples.push(self.get(r)?);
        }
        // rebuild the layout from scratch
        self.encoder = ChunkEncoder::new();
        self.stats.clear();
        self.tiles = TileEncoder::new();
        self.builder = ChunkBuilder::new(
            self.meta.dtype,
            self.meta.sample_compression,
            policy_for(&self.meta),
        );
        self.chunk_memo.lock().clear();
        for s in &samples {
            match self.builder.push(s)? {
                FlushReason::Buffered => {}
                FlushReason::ChunkFull(chunk) => self.write_sealed_chunk(chunk)?,
                FlushReason::NeedsTiling { .. } => self.append_tiled(s)?,
            }
        }
        self.seal_open_chunk()?;
        debug_assert_eq!(self.encoder.num_rows(), rows);
        self.dirty = true;
        Ok((before, self.fragmentation()))
    }

    fn seal_open_chunk(&mut self) -> Result<()> {
        if let Some(chunk) = self.builder.finish() {
            self.write_sealed_chunk(chunk)?;
        }
        Ok(())
    }

    fn write_sealed_chunk(&mut self, chunk: Chunk) -> Result<()> {
        let n = chunk.sample_count() as u32;
        let stats = self.builder.sealed_stats();
        let id = self.put_chunk(&chunk)?;
        self.record_stats(id, stats);
        self.encoder.append_run(id, 0, n);
        Ok(())
    }

    /// Record a sealed chunk's statistics when the tensor opted in
    /// (pre-statistics tensors keep recording off so their layout stays
    /// byte-identical to what an old writer would produce).
    fn record_stats(&mut self, chunk_id: u64, stats: Option<ChunkStats>) {
        if self.meta.chunk_stats {
            if let Some(s) = stats {
                self.stats.insert(chunk_id, s);
            }
        }
    }

    fn put_chunk(&mut self, chunk: &Chunk) -> Result<u64> {
        let id = self.meta.next_chunk_id;
        self.meta.next_chunk_id += 1;
        let blob = chunk.serialize(self.meta.chunk_compression);
        self.chain[0]
            .provider
            .put(&chunk_key(id), Bytes::from(blob))?;
        self.chain[0].chunk_set.insert(id);
        self.dirty = true;
        Ok(id)
    }

    /// Persist all pending state (open chunk, encoders, metadata, chunk
    /// set, commit diff) to the HEAD version directory.
    pub fn flush(&mut self) -> Result<()> {
        if !self.dirty {
            return Ok(());
        }
        self.seal_open_chunk()?;
        let head = &self.chain[0].provider;
        head.put(META_KEY, Bytes::from(self.meta.to_json()?))?;
        head.put(ENCODER_KEY, Bytes::from(self.encoder.serialize()))?;
        if self.meta.chunk_stats {
            head.put(STATS_KEY, Bytes::from(self.stats.serialize()))?;
        }
        if !self.tiles.is_empty() {
            head.put(TILES_KEY, Bytes::from(self.tiles.serialize()))?;
        }
        let chunk_ids: Vec<u64> = {
            let mut v: Vec<u64> = self.chain[0].chunk_set.iter().copied().collect();
            v.sort_unstable();
            v
        };
        head.put(CHUNK_SET_KEY, Bytes::from(serde_json::to_vec(&chunk_ids)?))?;
        head.put(DIFF_KEY, Bytes::from(self.diff.to_json()?))?;
        self.dirty = false;
        Ok(())
    }

    /// Move the write frontier into a new version directory after a
    /// commit: the sealed version keeps its chunks; new writes go to
    /// `new_head` with a fresh chunk set and diff.
    pub fn start_new_version(&mut self, new_head: PrefixProvider) -> Result<()> {
        self.flush()?;
        self.chain.insert(
            0,
            VersionDir {
                provider: new_head,
                chunk_set: HashSet::new(),
            },
        );
        self.diff = CommitDiff::new();
        Ok(())
    }

    /// Decode a stored blob into a sample (helper for the streaming layer,
    /// which fetches chunk bytes itself).
    pub fn decode(&self, blob: &[u8], shape: deeplake_tensor::Shape) -> Result<Sample> {
        Ok(decode_sample(blob, self.meta.dtype, shape)?)
    }
}

fn chunk_key(id: u64) -> String {
    format!("chunks/{id:016x}")
}

/// Compression the §5 verbatim-copy path expects for a tensor: raw files
/// may be appended via [`TensorStore::append_encoded`] only when their
/// codec equals this.
pub fn expected_sample_compression(meta: &TensorMeta) -> Compression {
    meta.sample_compression
}

#[cfg(test)]
mod tests {
    use super::*;
    use deeplake_storage::MemoryProvider;
    use deeplake_tensor::{Dtype, Shape};
    use std::sync::Arc as StdArc;

    fn head() -> PrefixProvider {
        PrefixProvider::new(StdArc::new(MemoryProvider::new()), "versions/v000000/t")
    }

    fn small_meta(name: &str, target: u64) -> TensorMeta {
        let mut m = TensorMeta::new(name, Htype::Generic, Some(Dtype::U8));
        m.chunk_target_bytes = target;
        m
    }

    fn sample(n: usize, fill: u8) -> Sample {
        Sample::from_slice([n as u64], &vec![fill; n]).unwrap()
    }

    #[test]
    fn append_get_roundtrip() {
        let mut t = TensorStore::create(small_meta("x", 1000), head()).unwrap();
        for i in 0..10 {
            t.append(&sample(100, i)).unwrap();
        }
        assert_eq!(t.len(), 10);
        for i in 0..10 {
            assert_eq!(t.get(i as u64).unwrap(), sample(100, i as u8));
        }
        assert!(t.get(10).is_err());
    }

    #[test]
    fn flush_and_reopen() {
        let base = StdArc::new(MemoryProvider::new());
        let p = PrefixProvider::new(base.clone(), "versions/v000000/x");
        let mut t = TensorStore::create(small_meta("x", 500), p.clone()).unwrap();
        for i in 0..20 {
            t.append(&sample(60, i)).unwrap();
        }
        t.flush().unwrap();
        let back = TensorStore::open(vec![p]).unwrap();
        assert_eq!(back.len(), 20);
        for i in 0..20 {
            assert_eq!(back.get(i as u64).unwrap(), sample(60, i as u8));
        }
        assert_eq!(back.meta().length, 20);
    }

    #[test]
    fn dtype_mismatch_rejected() {
        let mut t = TensorStore::create(small_meta("x", 1000), head()).unwrap();
        let bad = Sample::scalar(1.0f32);
        assert!(t.append(&bad).is_err());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn htype_validation_applies() {
        let meta = TensorMeta::new("img", Htype::Image, None);
        let mut t = TensorStore::create(meta, head()).unwrap();
        assert!(t.append(&Sample::zeros(Dtype::U8, [4, 4])).is_err());
        assert!(t.append(&Sample::zeros(Dtype::U8, [4, 4, 3])).is_ok());
    }

    #[test]
    fn oversized_sample_gets_tiled_and_reassembles() {
        let mut t = TensorStore::create(small_meta("x", 1000), head()).unwrap();
        // max = 2000; a 5000-element sample must tile
        let big: Vec<u8> = (0..5000).map(|i| (i % 251) as u8).collect();
        let s = Sample::from_slice([50, 100], &big).unwrap();
        t.append(&s).unwrap();
        assert_eq!(t.len(), 1);
        assert!(t.is_tiled(0));
        assert_eq!(t.get(0).unwrap(), s);
    }

    #[test]
    fn tiled_and_plain_rows_interleave() {
        let mut t = TensorStore::create(small_meta("x", 1000), head()).unwrap();
        t.append(&sample(50, 1)).unwrap();
        let big: Vec<u8> = (0..4000).map(|i| (i % 13) as u8).collect();
        let s = Sample::from_slice([4000], &big).unwrap();
        t.append(&s).unwrap();
        t.append(&sample(30, 3)).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(0).unwrap(), sample(50, 1));
        assert_eq!(t.get(1).unwrap(), s);
        assert_eq!(t.get(2).unwrap(), sample(30, 3));
        assert!(t.is_tiled(1));
        assert!(!t.is_tiled(2));
    }

    #[test]
    fn update_repoints_row() {
        let mut t = TensorStore::create(small_meta("x", 1000), head()).unwrap();
        for i in 0..5 {
            t.append(&sample(100, i)).unwrap();
        }
        t.update(2, &sample(40, 99)).unwrap();
        assert_eq!(t.get(2).unwrap(), sample(40, 99));
        assert_eq!(t.get(1).unwrap(), sample(100, 1));
        assert_eq!(t.get(3).unwrap(), sample(100, 3));
        assert_eq!(t.len(), 5);
        // diff recorded the update (row 2 was added in this same version,
        // so it stays an add)
        assert!(t.pending_diff().added.contains(&2));
    }

    #[test]
    fn update_out_of_range() {
        let mut t = TensorStore::create(small_meta("x", 1000), head()).unwrap();
        t.append(&sample(10, 0)).unwrap();
        assert!(t.update(1, &sample(10, 1)).is_err());
    }

    #[test]
    fn get_shape_matches_get() {
        let mut t = TensorStore::create(small_meta("x", 1000), head()).unwrap();
        t.append(&Sample::from_slice([3, 7], &[0u8; 21]).unwrap())
            .unwrap();
        t.append(&sample(9, 1)).unwrap();
        assert_eq!(t.get_shape(0).unwrap(), Shape::from([3, 7]));
        assert_eq!(t.get_shape(1).unwrap(), Shape::from([9]));
        assert!(t.get_shape(2).is_err());
    }

    #[test]
    fn chunk_plan_covers_sealed_and_open() {
        let mut t = TensorStore::create(small_meta("x", 500), head()).unwrap();
        for i in 0..9 {
            t.append(&sample(100, i)).unwrap();
        }
        let plan = t.chunk_plan(0, 9).unwrap();
        let total: u32 = plan.iter().map(|&(_, _, n)| n).sum();
        assert_eq!(total, 9);
        // last span may be the open chunk
        if t.sealed_rows() < 9 {
            assert_eq!(plan.last().unwrap().0, u64::MAX);
        }
    }

    #[test]
    fn version_chain_resolves_old_chunks() {
        let base = StdArc::new(MemoryProvider::new());
        let v0 = PrefixProvider::new(base.clone(), "versions/v0/x");
        let mut t = TensorStore::create(small_meta("x", 500), v0).unwrap();
        for i in 0..4 {
            t.append(&sample(100, i)).unwrap();
        }
        t.flush().unwrap();
        // commit: writes continue in v1
        let v1 = PrefixProvider::new(base.clone(), "versions/v1/x");
        t.start_new_version(v1).unwrap();
        t.update(1, &sample(100, 77)).unwrap();
        t.append(&sample(100, 4)).unwrap();
        t.flush().unwrap();
        // rows 0,2,3 resolve from v0 chunks; 1 and 4 from v1
        assert_eq!(t.get(0).unwrap(), sample(100, 0));
        assert_eq!(t.get(1).unwrap(), sample(100, 77));
        assert_eq!(t.get(3).unwrap(), sample(100, 3));
        assert_eq!(t.get(4).unwrap(), sample(100, 4));
        // v0 directory still holds the original chunk for row 1's old data
        let reopened =
            TensorStore::open(vec![PrefixProvider::new(base.clone(), "versions/v0/x")]).unwrap();
        assert_eq!(reopened.get(1).unwrap(), sample(100, 1));
        assert_eq!(reopened.len(), 4);
    }

    #[test]
    fn append_encoded_verbatim_copy() {
        let meta = TensorMeta::new("img", Htype::Image, None);
        let codec = meta.sample_compression;
        let mut t = TensorStore::create(meta, head()).unwrap();
        let pixels = vec![127u8; 8 * 8 * 3];
        let blob = codec.compress_image(&pixels, 8, 8, 3).unwrap();
        t.append_encoded(blob, Shape::from([8, 8, 3])).unwrap();
        let s = t.get(0).unwrap();
        assert_eq!(s.shape(), &Shape::from([8, 8, 3]));
    }

    #[test]
    fn rechunk_restores_sequential_layout() {
        let mut t = TensorStore::create(small_meta("x", 500), head()).unwrap();
        for i in 0..20 {
            t.append(&sample(100, i)).unwrap();
        }
        t.flush().unwrap();
        for row in [2u64, 6, 10, 14] {
            t.update(row, &sample(100, 200 + row as u8)).unwrap();
        }
        let expect: Vec<Sample> = (0..20).map(|r| t.get(r).unwrap()).collect();
        let (before, after) = t.rechunk().unwrap();
        assert!(before > 1.0, "updates fragmented the layout: {before}");
        assert!(
            (after - 1.0).abs() < 1e-9,
            "rechunk must be sequential: {after}"
        );
        assert_eq!(t.len(), 20);
        for (r, want) in expect.iter().enumerate() {
            assert_eq!(&t.get(r as u64).unwrap(), want);
        }
        // flush + reopen keeps the optimized layout
        t.flush().unwrap();
    }

    #[test]
    fn rechunk_handles_tiled_rows() {
        let mut t = TensorStore::create(small_meta("x", 1000), head()).unwrap();
        t.append(&sample(100, 1)).unwrap();
        let big: Vec<u8> = (0..5000).map(|i| (i % 13) as u8).collect();
        let big = Sample::from_slice([5000], &big).unwrap();
        t.append(&big).unwrap();
        t.append(&sample(100, 3)).unwrap();
        t.update(0, &sample(40, 9)).unwrap();
        let (_, after) = t.rechunk().unwrap();
        assert!(after >= 1.0);
        assert_eq!(t.get(0).unwrap(), sample(40, 9));
        assert_eq!(t.get(1).unwrap(), big);
        assert!(t.is_tiled(1));
        assert_eq!(t.get(2).unwrap(), sample(100, 3));
    }

    #[test]
    fn scalar_chunks_record_stats_and_survive_reopen() {
        let base = StdArc::new(MemoryProvider::new());
        let p = PrefixProvider::new(base.clone(), "versions/v000000/labels");
        let mut m = TensorMeta::new("labels", Htype::ClassLabel, None);
        m.chunk_target_bytes = 40; // a handful of scalars per chunk
        let mut t = TensorStore::create(m, p.clone()).unwrap();
        for i in 0..32 {
            t.append(&Sample::scalar(i % 8)).unwrap();
        }
        t.flush().unwrap();
        assert!(t.stats_coverage() > 1, "labels span several chunks");
        let all = t.stats_for_rows(0, 32).unwrap();
        assert_eq!((all.min, all.max, all.samples), (0.0, 7.0, 32));

        let back = TensorStore::open(vec![p]).unwrap();
        assert_eq!(back.stats_coverage(), t.stats_coverage());
        let s = back.stats_for_rows(0, 32).unwrap();
        assert_eq!((s.min, s.max), (0.0, 7.0));
        // every sealed chunk of a scalar tensor has stats
        for (id, start, len) in back.chunk_spans() {
            let id = id.expect("flushed tensor has no open chunk");
            let cs = back.chunk_stats(id).expect("scalar chunk has stats");
            assert_eq!(cs.samples, len);
            assert!(start < 32);
        }
    }

    #[test]
    fn non_scalar_tensors_have_no_stats() {
        let mut t = TensorStore::create(small_meta("x", 500), head()).unwrap();
        for i in 0..10 {
            t.append(&sample(100, i)).unwrap();
        }
        t.flush().unwrap();
        assert_eq!(t.stats_coverage(), 0);
        assert!(t.stats_for_rows(0, 10).is_none());
    }

    #[test]
    fn stats_disabled_tensors_write_no_index() {
        let base = StdArc::new(MemoryProvider::new());
        let p = PrefixProvider::new(base.clone(), "versions/v000000/labels");
        let mut m = TensorMeta::new("labels", Htype::ClassLabel, None);
        m.chunk_stats = false; // a pre-statistics dataset
        let mut t = TensorStore::create(m, p.clone()).unwrap();
        for i in 0..8 {
            t.append(&Sample::scalar(i)).unwrap();
        }
        t.flush().unwrap();
        assert!(!p.exists(STATS_KEY).unwrap());
        let back = TensorStore::open(vec![p]).unwrap();
        assert_eq!(back.stats_coverage(), 0);
        assert!(back.stats_for_rows(0, 8).is_none());
    }

    #[test]
    fn open_chunk_rows_are_not_summarized() {
        let mut m = TensorMeta::new("labels", Htype::ClassLabel, None);
        m.chunk_target_bytes = 40;
        let mut t = TensorStore::create(m, head()).unwrap();
        for i in 0..9 {
            t.append(&Sample::scalar(i)).unwrap();
        }
        // unflushed: trailing rows live in the open chunk
        let spans = t.chunk_spans();
        assert_eq!(spans.last().unwrap().0, None);
        let total: u64 = spans.iter().map(|&(_, _, n)| n).sum();
        assert_eq!(total, 9);
        assert!(t.stats_for_rows(0, 9).is_none(), "open rows block summary");
        if t.sealed_rows() > 0 {
            assert!(t.stats_for_rows(0, t.sealed_rows()).is_some());
        }
    }

    #[test]
    fn update_keeps_stats_conservative() {
        let mut m = TensorMeta::new("labels", Htype::ClassLabel, None);
        m.chunk_target_bytes = 40;
        let mut t = TensorStore::create(m, head()).unwrap();
        for _ in 0..16 {
            t.append(&Sample::scalar(2i32)).unwrap();
        }
        t.flush().unwrap();
        t.update(5, &Sample::scalar(99i32)).unwrap();
        // the span holding row 5 must now admit 99
        let s = t.stats_for_rows(5, 6).unwrap();
        assert!(s.min <= 99.0 && s.max >= 99.0);
        // the merged whole-tensor summary still covers both values
        let all = t.stats_for_rows(0, 16).unwrap();
        assert!(all.min <= 2.0 && all.max >= 99.0);
    }

    #[test]
    fn rechunk_rebuilds_stats() {
        let mut m = TensorMeta::new("labels", Htype::ClassLabel, None);
        m.chunk_target_bytes = 40;
        let mut t = TensorStore::create(m, head()).unwrap();
        for i in 0..20 {
            t.append(&Sample::scalar(i % 4)).unwrap();
        }
        t.flush().unwrap();
        for row in [3u64, 9, 15] {
            t.update(row, &Sample::scalar(50i32)).unwrap();
        }
        t.rechunk().unwrap();
        let s = t.stats_for_rows(0, 20).unwrap();
        assert_eq!((s.min, s.max, s.samples), (0.0, 50.0, 20));
    }

    #[test]
    fn fragmentation_reported() {
        let mut t = TensorStore::create(small_meta("x", 500), head()).unwrap();
        for i in 0..20 {
            t.append(&sample(100, i)).unwrap();
        }
        t.flush().unwrap();
        let before = t.fragmentation();
        // mid-chunk rows split their run into three pieces
        for row in [2u64, 6, 10] {
            t.update(row, &sample(10, 0)).unwrap();
        }
        assert!(t.fragmentation() > before);
    }
}
