//! # deeplake-obs
//!
//! The observability layer every serving-stack crate instruments
//! against: a lock-free metrics registry, wire-portable request
//! tracing, and a slow-query log — so tail latency and cache behaviour
//! are visible on a *live* process, not only post-hoc in `BENCH_*.json`
//! files.
//!
//! Three pieces:
//!
//! * **Instruments** — [`Counter`] and [`Gauge`] are single relaxed
//!   atomics; [`Histogram`] is a fixed array of atomic buckets on a
//!   log scale (4 sub-buckets per power of two, quantile estimates
//!   within one bucket width of the true sample — ≤ 25% relative
//!   error). Recording never allocates and never locks, so
//!   instruments sit on request hot paths. All three are cheap-clone
//!   handles over shared state: a [`MetricsRegistry`] hands the *same*
//!   instrument to every caller asking for a name, which is what makes
//!   per-thread recorders mergeable — they already share buckets.
//! * **Tracing** — [`TraceContext`] is a `(trace id, span id)` pair
//!   generated at the client and carried over the wire (see
//!   `deeplake-remote`'s `Traced` request wrapper); each hop derives
//!   child spans with [`TraceContext::child`], and a finished request
//!   decomposes into named [`SpanRecord`]s (queue-wait, execute,
//!   storage round-trips, …) that all point back to the client's root.
//! * **Slow-query log** — [`SlowQueryLog`] is a fixed-capacity ring of
//!   [`SlowQueryEntry`] values (canonical query text, dataset, version,
//!   span breakdown) for queries over a threshold; oldest entries are
//!   evicted first, and evictions are counted so a saturated ring is
//!   detectable.
//! * **Windowed rates** — [`RateWindow`] and [`WindowedHistogram`] are
//!   rings of per-second atomic slots giving recent throughput (q/s,
//!   error/s, bytes/s) and recent tail latency over the last
//!   1 s / 10 s / 60 s, where the monotonic instruments only give
//!   lifetime totals. Lock-free on the record path like everything
//!   else.
//! * **Flight recorder** — [`FlightRecorder`] is a fixed-capacity,
//!   always-on ring of notable [`FlightEvent`]s (connections cut, Busy
//!   rejections, node deaths, …) with wall-clock timestamps and trace
//!   ids — the "what happened in the last minute" answer histograms
//!   cannot give.
//!
//! A [`MetricsRegistry::snapshot`] freezes everything into a
//! [`MetricsSnapshot`] — plain owned values, safe to serialize (the
//! hub's `Metrics` opcode ships one to remote clients). Snapshots
//! [`merge`](MetricsSnapshot::merge) per name, which is how a cluster
//! client folds every node's snapshot into one fleet view.
//!
//! ## Metric naming
//!
//! Dotted lowercase paths, `<subsystem>.<instrument>[_<unit>]`:
//! `hub.queue_wait_ns`, `hub.cache.hits`, `client.round_trip_ns`,
//! `storage.bytes_read`, `tql.prune_ns`. Histograms record
//! **nanoseconds**; counters count events or bytes (suffix `_bytes`).
//! Windowed instruments add two more conventions: a [`RateWindow`]
//! shadows the monotonic counter it windows with a `_rate` suffix
//! (`hub.queries_rate` beside `hub.queries`), and a
//! [`WindowedHistogram`] emits per-window snapshot entries under
//! `.w1` / `.w10` / `.w60` suffixes (`hub.query_ns.w10`).

mod events;
mod hist;
mod registry;
mod slowlog;
mod trace;
mod window;

pub use events::{FlightEvent, FlightRecorder};
pub use hist::{Histogram, HistogramSnapshot, BUCKETS};
pub use registry::{Counter, Gauge, MetricsRegistry, MetricsSnapshot};
pub use slowlog::{SlowQueryEntry, SlowQueryLog};
pub use trace::{current_trace, next_id, with_current, SpanRecord, SpanTimer, TraceContext};
pub use window::{window_name, RateSnapshot, RateWindow, WindowedHistogram, WINDOW_SECS};
