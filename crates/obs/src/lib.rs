//! # deeplake-obs
//!
//! The observability layer every serving-stack crate instruments
//! against: a lock-free metrics registry, wire-portable request
//! tracing, and a slow-query log — so tail latency and cache behaviour
//! are visible on a *live* process, not only post-hoc in `BENCH_*.json`
//! files.
//!
//! Three pieces:
//!
//! * **Instruments** — [`Counter`] and [`Gauge`] are single relaxed
//!   atomics; [`Histogram`] is a fixed array of atomic buckets on a
//!   log scale (4 sub-buckets per power of two, quantile estimates
//!   within one bucket width of the true sample — ≤ 25% relative
//!   error). Recording never allocates and never locks, so
//!   instruments sit on request hot paths. All three are cheap-clone
//!   handles over shared state: a [`MetricsRegistry`] hands the *same*
//!   instrument to every caller asking for a name, which is what makes
//!   per-thread recorders mergeable — they already share buckets.
//! * **Tracing** — [`TraceContext`] is a `(trace id, span id)` pair
//!   generated at the client and carried over the wire (see
//!   `deeplake-remote`'s `Traced` request wrapper); each hop derives
//!   child spans with [`TraceContext::child`], and a finished request
//!   decomposes into named [`SpanRecord`]s (queue-wait, execute,
//!   storage round-trips, …) that all point back to the client's root.
//! * **Slow-query log** — [`SlowQueryLog`] is a fixed-capacity ring of
//!   [`SlowQueryEntry`] values (canonical query text, dataset, version,
//!   span breakdown) for queries over a threshold; oldest entries are
//!   evicted first.
//!
//! A [`MetricsRegistry::snapshot`] freezes everything into a
//! [`MetricsSnapshot`] — plain owned values, safe to serialize (the
//! hub's `Metrics` opcode ships one to remote clients).
//!
//! ## Metric naming
//!
//! Dotted lowercase paths, `<subsystem>.<instrument>[_<unit>]`:
//! `hub.queue_wait_ns`, `hub.cache.hits`, `client.round_trip_ns`,
//! `storage.bytes_read`, `tql.prune_ns`. Histograms record
//! **nanoseconds**; counters count events or bytes (suffix `_bytes`).

mod hist;
mod registry;
mod slowlog;
mod trace;

pub use hist::{Histogram, HistogramSnapshot, BUCKETS};
pub use registry::{Counter, Gauge, MetricsRegistry, MetricsSnapshot};
pub use slowlog::{SlowQueryEntry, SlowQueryLog};
pub use trace::{next_id, SpanRecord, SpanTimer, TraceContext};
