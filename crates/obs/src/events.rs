//! The flight recorder: a fixed-capacity, always-on ring of notable
//! events — the "what happened in the last minute" answer histograms
//! cannot give.
//!
//! Counters say *how many* connections were cut; the recorder says
//! *which ones, when, and during which trace*. Each hub owns one ring
//! and records connection accepts/cuts, `Busy` rejections, stall cuts,
//! cache invalidations, mount changes and observed node deaths into it;
//! the ring travels in [`MetricsSnapshot::events`] through the
//! `Metrics`/`Health` opcodes so a client can dump a node's recent
//! history on demand. Always on: recording is one short mutex hold and
//! the capacity is fixed, so there is no run/stop state to manage and
//! no unbounded growth — old events simply fall off the back.
//!
//! Event kinds are dotted lowercase strings (`conn.accept`,
//! `conn.cut`, `busy`, `stall.cut`, `cache.invalidate`, `mount`,
//! `unmount`, `node.dead`, `node.live`) — see the `kind` constants on
//! [`FlightEvent`].
//!
//! [`MetricsSnapshot::events`]: crate::MetricsSnapshot

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// One recorded event.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlightEvent {
    /// Wall-clock milliseconds since the Unix epoch when the event was
    /// recorded — wall clock (not the monotonic rate-window epoch) so
    /// events from different nodes line up in a merged fleet view.
    pub at_unix_ms: u64,
    /// Per-recorder sequence number, strictly increasing — the
    /// tie-breaker that keeps same-millisecond events ordered.
    pub seq: u64,
    /// Dotted lowercase event kind (see the associated constants).
    pub kind: String,
    /// Trace the event belongs to, 0 when none applies.
    pub trace_id: u64,
    /// Free-form detail (peer address, dataset name, node address, …).
    pub detail: String,
}

impl FlightEvent {
    /// A client connection was accepted.
    pub const CONN_ACCEPT: &'static str = "conn.accept";
    /// A client connection ended (EOF, error, or shutdown).
    pub const CONN_CUT: &'static str = "conn.cut";
    /// A request was rejected with `Busy` (queue full or in-flight cap).
    pub const BUSY: &'static str = "busy";
    /// A stalled connection was cut by the stall timeout.
    pub const STALL_CUT: &'static str = "stall.cut";
    /// Cached results for a dataset were invalidated.
    pub const CACHE_INVALIDATE: &'static str = "cache.invalidate";
    /// A dataset was mounted.
    pub const MOUNT: &'static str = "mount";
    /// A dataset was unmounted.
    pub const UNMOUNT: &'static str = "unmount";
    /// A peer node was observed dead (health probe or manual kill).
    pub const NODE_DEAD: &'static str = "node.dead";
    /// A peer node was observed live again.
    pub const NODE_LIVE: &'static str = "node.live";
}

struct RecorderInner {
    cap: usize,
    seq: AtomicU64,
    ring: Mutex<VecDeque<FlightEvent>>,
}

/// A fixed-capacity, always-on event ring. Cheap-clone handle: clones
/// share the ring, so a hub can hand recorder handles to its reader
/// loops, cache, and cluster-map observer and one
/// [`events`](FlightRecorder::events) read sees them all.
#[derive(Clone)]
pub struct FlightRecorder(Arc<RecorderInner>);

impl FlightRecorder {
    /// A recorder holding at most `cap` events (`cap == 0` disables it).
    pub fn new(cap: usize) -> Self {
        FlightRecorder(Arc::new(RecorderInner {
            cap,
            seq: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::with_capacity(cap.min(1024))),
        }))
    }

    /// Capacity the recorder was built with.
    pub fn capacity(&self) -> usize {
        self.0.cap
    }

    /// Record an event, evicting the oldest when full. `trace_id` is 0
    /// for events outside any trace.
    pub fn record(&self, kind: &str, trace_id: u64, detail: impl Into<String>) {
        if self.0.cap == 0 {
            return;
        }
        let at_unix_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis().min(u64::MAX as u128) as u64)
            .unwrap_or(0);
        let event = FlightEvent {
            at_unix_ms,
            seq: self.0.seq.fetch_add(1, Ordering::Relaxed),
            kind: kind.to_string(),
            trace_id,
            detail: detail.into(),
        };
        let mut ring = self.0.ring.lock();
        if ring.len() == self.0.cap {
            ring.pop_front();
        }
        ring.push_back(event);
    }

    /// Current contents, oldest first.
    pub fn events(&self) -> Vec<FlightEvent> {
        self.0.ring.lock().iter().cloned().collect()
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.0.ring.lock().len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.0.ring.lock().is_empty()
    }

    /// Drop every event.
    pub fn clear(&self) {
        self.0.ring.lock().clear();
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FlightRecorder({}/{})", self.len(), self.0.cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_the_newest_events() {
        let rec = FlightRecorder::new(3);
        for i in 0..5u64 {
            rec.record(FlightEvent::CONN_ACCEPT, 0, format!("peer{i}"));
        }
        let events = rec.events();
        let details: Vec<&str> = events.iter().map(|e| e.detail.as_str()).collect();
        assert_eq!(details, ["peer2", "peer3", "peer4"]);
        // sequence numbers keep counting across evictions
        assert_eq!(events.iter().map(|e| e.seq).collect::<Vec<_>>(), [2, 3, 4]);
        assert_eq!(rec.len(), 3);
    }

    #[test]
    fn zero_capacity_disables() {
        let rec = FlightRecorder::new(0);
        rec.record(FlightEvent::BUSY, 7, "q full");
        assert!(rec.is_empty());
    }

    #[test]
    fn events_carry_trace_and_wall_clock() {
        let rec = FlightRecorder::new(8);
        rec.record(FlightEvent::NODE_DEAD, 42, "127.0.0.1:9999");
        let e = &rec.events()[0];
        assert_eq!(e.kind, FlightEvent::NODE_DEAD);
        assert_eq!(e.trace_id, 42);
        assert!(e.at_unix_ms > 1_500_000_000_000, "wall clock, not uptime");
    }

    #[test]
    fn clones_share_the_ring() {
        let rec = FlightRecorder::new(4);
        let other = rec.clone();
        other.record(FlightEvent::MOUNT, 0, "ds0");
        assert_eq!(rec.len(), 1);
    }
}
