//! Fixed-bucket log-scale latency histogram.
//!
//! Values (nanoseconds by convention) land in one of [`BUCKETS`] atomic
//! buckets: 4 linear sub-buckets per power of two, so a bucket's width
//! is at most a quarter of its lower bound. Quantiles read back the
//! bucket midpoint (clamped to the exact max), which keeps the estimate
//! within one bucket width — ≤ 25% relative error worst-case, ≤ 12.5%
//! in the common unclamped case — tight enough to compare tail
//! latencies across PRs while the whole histogram stays one fixed
//! allocation that records with three relaxed atomic ops and no locks.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Sub-bucket resolution: `1 << SUB` linear buckets per power of two.
const SUB: u32 = 2;

/// Total bucket count covering the full `u64` range.
pub const BUCKETS: usize = ((63 - SUB as usize + 1) << SUB) + (1 << SUB);

/// Bucket index for a value. Values below `1 << SUB` get exact buckets;
/// above, the top `SUB` bits below the most significant bit pick the
/// sub-bucket within the value's octave.
pub(crate) fn bucket_index(v: u64) -> usize {
    if v < (1 << SUB) {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let sub = ((v >> (msb - SUB)) & ((1 << SUB) - 1)) as usize;
    (((msb - SUB + 1) as usize) << SUB) + sub
}

/// Inclusive lower bound of a bucket (the inverse of [`bucket_index`]).
pub(crate) fn bucket_low(i: usize) -> u64 {
    if i < (1 << SUB) {
        return i as u64;
    }
    let msb = (i >> SUB) as u32 + SUB - 1;
    let sub = (i & ((1 << SUB) - 1)) as u64;
    (1u64 << msb) + (sub << (msb - SUB))
}

/// Width of a bucket in value units.
pub(crate) fn bucket_width(i: usize) -> u64 {
    if i < (1 << SUB) {
        return 1;
    }
    let msb = (i >> SUB) as u32 + SUB - 1;
    1u64 << (msb - SUB)
}

struct HistCore {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// A shared latency histogram handle. Clones share the same buckets, so
/// any number of threads record into one logical instrument — there is
/// nothing to merge at read time beyond taking a [`snapshot`].
///
/// [`snapshot`]: Histogram::snapshot
#[derive(Clone)]
pub struct Histogram(Arc<HistCore>);

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Histogram(Arc::new(HistCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }))
    }

    /// Record one value. Lock-free, allocation-free: one bucket
    /// increment plus count/sum/max updates, all relaxed.
    pub fn record(&self, v: u64) {
        let c = &*self.0;
        c.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(v, Ordering::Relaxed);
        c.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a duration in nanoseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Freeze the current contents into an owned, serializable value.
    /// Concurrent recorders may land between bucket reads; the snapshot
    /// is consistent enough for monitoring (counts never go backwards).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let c = &*self.0;
        let mut buckets = Vec::new();
        for (i, b) in c.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push((i as u32, n));
            }
        }
        // derive the total from the buckets actually read so the
        // snapshot is internally consistent under concurrent recording
        let count = buckets.iter().map(|&(_, n)| n).sum();
        HistogramSnapshot {
            count,
            sum: c.sum.load(Ordering::Relaxed),
            max: c.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Frozen histogram contents: sparse `(bucket index, count)` pairs in
/// index order plus exact `count` / `sum` / `max`. Mergeable, so
/// per-node or per-process histograms can aggregate into one view.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Exact sum of all recorded values.
    pub sum: u64,
    /// Exact maximum recorded value.
    pub max: u64,
    /// Non-empty buckets as `(index, count)`, ascending by index.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Whether anything was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of recorded values (exact, from the running sum).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The quantile `q` in `[0, 1]`: the bucket-midpoint estimate of the
    /// sample at rank `round(q * (count - 1))` — the same rank rule the
    /// exact percentile helpers in `deeplake-bench` use, so the two
    /// agree within the bucket error bound. Returns 0 on an empty
    /// histogram; `q = 1` returns the exact max.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count - 1) as f64 * q.clamp(0.0, 1.0)).round() as u64;
        if rank >= self.count - 1 {
            return self.max; // the top order statistic is tracked exactly
        }
        let mut seen = 0u64;
        for &(i, n) in &self.buckets {
            seen += n;
            if seen > rank {
                let i = i as usize;
                let mid = bucket_low(i) + bucket_width(i) / 2;
                // the max is exact and any recorded value in this bucket
                // is ≥ its lower bound, so clamping only improves the
                // top bucket's estimate
                return mid.min(self.max.max(bucket_low(i)));
            }
        }
        self.max
    }

    /// Fold another snapshot into this one (bucket-wise sum, saturating
    /// totals) — aggregation across processes or nodes.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
        let mut merged: Vec<(u32, u64)> = Vec::with_capacity(self.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ai, an)), Some(&&(bi, bn))) => {
                    if ai == bi {
                        merged.push((ai, an.saturating_add(bn)));
                        a.next();
                        b.next();
                    } else if ai < bi {
                        merged.push((ai, an));
                        a.next();
                    } else {
                        merged.push((bi, bn));
                        b.next();
                    }
                }
                (Some(&&x), None) => {
                    merged.push(x);
                    a.next();
                }
                (None, Some(&&x)) => {
                    merged.push(x);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_inverts() {
        let mut vals: Vec<u64> = Vec::new();
        for shift in 0..64u32 {
            for off in [0u64, 1, 2, 3] {
                vals.push((1u64 << shift).saturating_add(off << shift.saturating_sub(3)));
            }
        }
        vals.sort_unstable();
        vals.dedup();
        let mut last = 0usize;
        for &v in &vals {
            let i = bucket_index(v);
            assert!(i >= last, "index went backwards at {v}");
            last = i;
            assert!(bucket_low(i) <= v, "low({i}) > {v}");
            assert!(
                v - bucket_low(i) < bucket_width(i),
                "{v} outside bucket {i}"
            );
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        // every bucket's low maps back to that bucket
        for i in 0..BUCKETS {
            assert_eq!(bucket_index(bucket_low(i)), i);
        }
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 6);
        assert_eq!(s.max, 3);
        assert_eq!(s.quantile(0.0), 0);
        assert_eq!(s.quantile(1.0), 3);
    }

    #[test]
    fn quantiles_track_known_distribution() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v * 1000); // 1µs .. 1ms in ns
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        let p50 = s.quantile(0.50);
        let p99 = s.quantile(0.99);
        assert!(
            (p50 as i64 - 500_000).unsigned_abs() <= 500_000 / 8 + 1,
            "p50 = {p50}"
        );
        assert!(
            (p99 as i64 - 990_000).unsigned_abs() <= 990_000 / 8 + 1,
            "p99 = {p99}"
        );
        assert_eq!(s.quantile(1.0), 1_000_000, "max is exact");
    }

    #[test]
    fn merge_is_bucketwise_sum() {
        let (a, b) = (Histogram::new(), Histogram::new());
        for v in [5u64, 100, 100_000] {
            a.record(v);
        }
        for v in [5u64, 7_777_777] {
            b.record(v);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count, 5);
        assert_eq!(m.sum, 5 + 100 + 100_000 + 5 + 7_777_777);
        assert_eq!(m.max, 7_777_777);
        let direct = {
            let h = Histogram::new();
            for v in [5u64, 100, 100_000, 5, 7_777_777] {
                h.record(v);
            }
            h.snapshot()
        };
        assert_eq!(m, direct, "merge equals recording into one histogram");
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = Histogram::new().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
    }
}
