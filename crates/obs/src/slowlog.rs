//! Ring-buffer slow-query log: the last N queries that crossed the
//! hub's latency threshold, with their span breakdowns.

use std::collections::VecDeque;

use parking_lot::Mutex;

use crate::registry::Counter;
use crate::trace::SpanRecord;

/// One slow query: identity (trace/span ids), what ran (canonical TQL
/// text — never the raw client bytes — plus dataset and version), and
/// where the time went (stage spans, all parented under `root_span`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowQueryEntry {
    /// Trace the request belonged to (0 for an untraced legacy client).
    pub trace_id: u64,
    /// The hub-side request span — root of the `spans` breakdown.
    pub root_span: u64,
    /// The client-side span that sent the request (0 when untraced).
    pub parent_span: u64,
    /// Mounted dataset name the query ran against.
    pub dataset: String,
    /// Head/commit id the query resolved to (empty if unknown).
    pub version: String,
    /// Canonical query text (whitespace/version normalized).
    pub text: String,
    /// End-to-end hub time in nanoseconds.
    pub total_ns: u64,
    /// Stage breakdown (queue_wait, cache_lookup, execute, storage, …).
    pub spans: Vec<SpanRecord>,
}

/// Fixed-capacity ring of [`SlowQueryEntry`] values. Pushing when full
/// evicts the oldest entry (counted in [`SlowQueryLog::evictions`], so
/// a saturated ring is detectable from a snapshot); readers get a clone
/// of the current contents, oldest first.
pub struct SlowQueryLog {
    cap: usize,
    ring: Mutex<VecDeque<SlowQueryEntry>>,
    evicted: Counter,
}

impl SlowQueryLog {
    /// A log holding at most `cap` entries (`cap == 0` disables it).
    pub fn new(cap: usize) -> Self {
        SlowQueryLog {
            cap,
            ring: Mutex::new(VecDeque::with_capacity(cap.min(1024))),
            evicted: Counter::new(),
        }
    }

    /// Capacity the log was built with.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Append an entry, evicting the oldest when full.
    pub fn push(&self, entry: SlowQueryEntry) {
        if self.cap == 0 {
            return;
        }
        let mut ring = self.ring.lock();
        if ring.len() == self.cap {
            ring.pop_front();
            self.evicted.inc();
        }
        ring.push_back(entry);
    }

    /// Entries evicted to make room since the log was built. A nonzero,
    /// growing value means the ring is saturated — the oldest slow
    /// queries are being lost and `slow_log_entries` should grow (or the
    /// threshold rise).
    pub fn evicted(&self) -> u64 {
        self.evicted.get()
    }

    /// The live eviction counter, for registering into a
    /// [`MetricsRegistry`](crate::MetricsRegistry) so eviction pressure
    /// shows up in every snapshot.
    pub fn evicted_counter(&self) -> &Counter {
        &self.evicted
    }

    /// Current contents, oldest first.
    pub fn entries(&self) -> Vec<SlowQueryEntry> {
        self.ring.lock().iter().cloned().collect()
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.ring.lock().len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.ring.lock().is_empty()
    }

    /// Drop every entry.
    pub fn clear(&self) {
        self.ring.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(text: &str, total_ns: u64) -> SlowQueryEntry {
        SlowQueryEntry {
            trace_id: 1,
            root_span: 2,
            parent_span: 0,
            dataset: "ds".into(),
            version: "v".into(),
            text: text.into(),
            total_ns,
            spans: Vec::new(),
        }
    }

    #[test]
    fn ring_evicts_oldest_first() {
        let log = SlowQueryLog::new(3);
        for i in 0..5u64 {
            log.push(entry(&format!("q{i}"), i));
        }
        let texts: Vec<String> = log.entries().into_iter().map(|e| e.text).collect();
        assert_eq!(texts, ["q2", "q3", "q4"], "oldest two evicted, order kept");
        assert_eq!(log.len(), 3);
        assert_eq!(log.evicted(), 2, "both evictions counted");
    }

    #[test]
    fn eviction_counter_stays_zero_until_saturated() {
        let log = SlowQueryLog::new(4);
        log.push(entry("q", 1));
        log.push(entry("q", 2));
        assert_eq!(log.evicted(), 0);
        // the registered handle is live: it sees later evictions
        let handle = log.evicted_counter().clone();
        for i in 0..10u64 {
            log.push(entry("q", i));
        }
        assert_eq!(handle.get(), 8);
    }

    #[test]
    fn zero_capacity_disables() {
        let log = SlowQueryLog::new(0);
        log.push(entry("q", 1));
        assert!(log.is_empty());
    }

    #[test]
    fn clear_empties() {
        let log = SlowQueryLog::new(4);
        log.push(entry("q", 1));
        log.clear();
        assert!(log.is_empty());
    }
}
