//! Compact request tracing: a trace id minted at the client, one span
//! id per hop, and named duration records tying a request's stages back
//! to that root.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use crate::hist::Histogram;

thread_local! {
    /// The ambient trace context of this thread, if any — set by
    /// [`with_current`], read by transports that want an outgoing
    /// request to join an enclosing span instead of rooting a fresh
    /// trace (a loader worker's fetch joining its training-step trace).
    static CURRENT: Cell<Option<TraceContext>> = const { Cell::new(None) };
}

/// The ambient [`TraceContext`] installed on this thread by the nearest
/// enclosing [`with_current`], or `None` outside any.
pub fn current_trace() -> Option<TraceContext> {
    CURRENT.with(|c| c.get())
}

/// Run `f` with `ctx` as this thread's ambient trace context. Nested
/// calls shadow; the previous context is restored on exit (including
/// unwind, via the drop guard), so a transport deep in `f`'s call tree
/// can attribute its wire round trips to `ctx` without every layer in
/// between threading trace arguments.
pub fn with_current<R>(ctx: TraceContext, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<TraceContext>);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(CURRENT.with(|c| c.replace(Some(ctx))));
    f()
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A fresh process-unique id, never 0 (`0` means "untraced" on the
/// wire). Ids mix a per-process seed (wall clock ⊕ pid) with a global
/// sequence, so concurrent processes on one host do not collide in
/// practice and ids within a process never repeat.
pub fn next_id() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seed = *SEED.get_or_init(|| {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        nanos ^ ((std::process::id() as u64) << 32)
    });
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    splitmix64(seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15)).max(1)
}

/// The context one request carries: which trace it belongs to and which
/// span is the current hop. Generated at the client ([`root`]), carried
/// over the wire, extended per hop ([`child`]).
///
/// [`root`]: TraceContext::root
/// [`child`]: TraceContext::child
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// Identifies the whole request tree across processes.
    pub trace_id: u64,
    /// Identifies this hop's span within the trace.
    pub span_id: u64,
}

impl TraceContext {
    /// Start a new trace (fresh trace id, fresh root span).
    pub fn root() -> Self {
        TraceContext {
            trace_id: next_id(),
            span_id: next_id(),
        }
    }

    /// A child hop: same trace, fresh span id. The child records this
    /// context's `span_id` as its parent.
    pub fn child(&self) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            span_id: next_id(),
        }
    }
}

/// One finished, named span: `parent_span` links it into the trace tree
/// (`0` = the tree root for this process).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Stage name (`queue_wait`, `execute`, `storage`, …).
    pub name: String,
    /// This span's id.
    pub span_id: u64,
    /// The enclosing span's id (0 when this is a root).
    pub parent_span: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
}

/// A started stage clock. `stop` (or [`record`](SpanTimer::record))
/// returns elapsed nanoseconds; the struct is just an `Instant`, so
/// starting a timer costs one clock read.
#[derive(Debug, Clone, Copy)]
pub struct SpanTimer(Instant);

impl SpanTimer {
    /// Start the clock.
    pub fn start() -> Self {
        SpanTimer(Instant::now())
    }

    /// Elapsed nanoseconds without consuming the timer.
    pub fn lap(&self) -> u64 {
        self.0.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    /// Stop and return elapsed nanoseconds.
    pub fn stop(self) -> u64 {
        self.lap()
    }

    /// Stop, record the elapsed nanoseconds into `hist`, and return
    /// them.
    pub fn record(self, hist: &Histogram) -> u64 {
        let ns = self.lap();
        hist.record(ns);
        ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_nonzero_and_distinct() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let id = next_id();
            assert_ne!(id, 0);
            assert!(seen.insert(id), "id repeated");
        }
    }

    #[test]
    fn child_keeps_the_trace() {
        let root = TraceContext::root();
        let child = root.child();
        assert_eq!(child.trace_id, root.trace_id);
        assert_ne!(child.span_id, root.span_id);
        assert_ne!(root.trace_id, 0);
        assert_ne!(root.span_id, 0);
    }

    #[test]
    fn ambient_context_nests_and_restores() {
        assert_eq!(current_trace(), None);
        let outer = TraceContext::root();
        let inner = outer.child();
        with_current(outer, || {
            assert_eq!(current_trace(), Some(outer));
            with_current(inner, || {
                assert_eq!(current_trace(), Some(inner));
            });
            assert_eq!(current_trace(), Some(outer), "inner scope restored");
        });
        assert_eq!(current_trace(), None, "outer scope restored");
    }

    #[test]
    fn ambient_context_is_per_thread() {
        let ctx = TraceContext::root();
        with_current(ctx, || {
            let seen = std::thread::spawn(current_trace).join().unwrap();
            assert_eq!(seen, None, "other threads must not inherit the context");
            assert_eq!(current_trace(), Some(ctx));
        });
    }

    #[test]
    fn span_timer_records() {
        let h = Histogram::new();
        let t = SpanTimer::start();
        std::thread::sleep(std::time::Duration::from_millis(1));
        let ns = t.record(&h);
        assert!(ns >= 1_000_000, "slept 1ms but measured {ns}ns");
        assert_eq!(h.count(), 1);
    }
}
