//! Named instruments: counters, gauges, and the registry that shares
//! them by name.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::events::FlightEvent;
use crate::hist::{Histogram, HistogramSnapshot};
use crate::slowlog::SlowQueryEntry;
use crate::window::{window_name, RateSnapshot, RateWindow, WindowedHistogram};

/// A monotonically increasing event/byte counter. Cheap-clone handle:
/// clones share the same atomic, so a counter registered once can be
/// incremented from any thread that holds a handle.
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Raise the value to `v` if it is currently lower — a high-water
    /// mark (peak queue depth, largest buffered response). A counter
    /// used this way is still monotone, just not additive.
    pub fn record_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Zero the counter. Counters are conceptually monotonic — prefer
    /// diffing two snapshots over resetting shared state (a reset from
    /// one reader clobbers every other reader's baseline); this exists
    /// for test isolation and legacy stats bags.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

/// A settable signed gauge (queue depths, open connections).
#[derive(Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add a (possibly negative) delta.
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Gauge({})", self.get())
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    rates: Mutex<BTreeMap<String, RateWindow>>,
    windows: Mutex<BTreeMap<String, WindowedHistogram>>,
}

/// The instrument namespace: `name → instrument`, get-or-create. The
/// registry hands every caller asking for a name the *same* shared
/// instrument, so recording stays lock-free (the lock guards only the
/// name map, taken at registration time, never on the record path).
///
/// Cheap-clone: clones share the namespace, so a hub can hand its
/// registry to worker threads, the result cache, and mounted storage
/// providers, and one [`snapshot`](MetricsRegistry::snapshot) sees them
/// all.
#[derive(Clone, Default)]
pub struct MetricsRegistry(Arc<RegistryInner>);

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.0.counters.lock();
        match map.get(name) {
            Some(c) => c.clone(),
            None => {
                let c = Counter::new();
                map.insert(name.to_string(), c.clone());
                c
            }
        }
    }

    /// The gauge named `name`, created at zero on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.0.gauges.lock();
        match map.get(name) {
            Some(g) => g.clone(),
            None => {
                let g = Gauge::new();
                map.insert(name.to_string(), g.clone());
                g
            }
        }
    }

    /// The histogram named `name`, created empty on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.0.histograms.lock();
        match map.get(name) {
            Some(h) => h.clone(),
            None => {
                let h = Histogram::new();
                map.insert(name.to_string(), h.clone());
                h
            }
        }
    }

    /// The sliding-window rate named `name`, created empty on first
    /// use. By convention a rate shares its base name with the
    /// monotonic counter it shadows plus a `_rate` suffix
    /// (`hub.queries_rate` beside `hub.queries`); the snapshot reports
    /// its window totals in [`MetricsSnapshot::rates`], never mixed
    /// into the monotonic counters.
    pub fn rate(&self, name: &str) -> RateWindow {
        let mut map = self.0.rates.lock();
        match map.get(name) {
            Some(r) => r.clone(),
            None => {
                let r = RateWindow::new();
                map.insert(name.to_string(), r.clone());
                r
            }
        }
    }

    /// The windowed histogram named `name`, created empty on first use.
    /// The snapshot emits one [`HistogramSnapshot`] per window into
    /// [`MetricsSnapshot::histograms`] under window-suffixed names
    /// (`<name>.w1`, `<name>.w10`, `<name>.w60`), so windowed quantiles
    /// travel the wire with no new shape.
    pub fn windowed(&self, name: &str) -> WindowedHistogram {
        let mut map = self.0.windows.lock();
        match map.get(name) {
            Some(w) => w.clone(),
            None => {
                let w = WindowedHistogram::new();
                map.insert(name.to_string(), w.clone());
                w
            }
        }
    }

    /// Register an *existing* counter handle under `name` — how a
    /// pre-built stats bag (e.g. a storage provider's `StorageStats`)
    /// attaches its already-live counters to a registry after the fact.
    /// Replaces any instrument previously under that name.
    pub fn register_counter(&self, name: &str, counter: &Counter) {
        self.0
            .counters
            .lock()
            .insert(name.to_string(), counter.clone());
    }

    /// Register an existing gauge handle under `name`.
    pub fn register_gauge(&self, name: &str, gauge: &Gauge) {
        self.0.gauges.lock().insert(name.to_string(), gauge.clone());
    }

    /// Register an existing histogram handle under `name`.
    pub fn register_histogram(&self, name: &str, hist: &Histogram) {
        self.0
            .histograms
            .lock()
            .insert(name.to_string(), hist.clone());
    }

    /// Freeze every instrument into an owned snapshot (names ascending).
    /// Windowed histograms contribute one entry per window to
    /// `histograms` under `.w1`/`.w10`/`.w60` suffixed names. The
    /// slow-query and event lists start empty — the owner of a
    /// [`SlowQueryLog`](crate::SlowQueryLog) /
    /// [`FlightRecorder`](crate::FlightRecorder) appends its entries
    /// before shipping the snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut histograms: BTreeMap<String, HistogramSnapshot> = self
            .0
            .histograms
            .lock()
            .iter()
            .map(|(k, h)| (k.clone(), h.snapshot()))
            .collect();
        for (name, w) in self.0.windows.lock().iter() {
            for (i, snap) in w.snapshots().into_iter().enumerate() {
                histograms.insert(window_name(name, i), snap);
            }
        }
        MetricsSnapshot {
            counters: self
                .0
                .counters
                .lock()
                .iter()
                .map(|(k, c)| (k.clone(), c.get()))
                .collect(),
            gauges: self
                .0
                .gauges
                .lock()
                .iter()
                .map(|(k, g)| (k.clone(), g.get()))
                .collect(),
            histograms: histograms.into_iter().collect(),
            rates: self
                .0
                .rates
                .lock()
                .iter()
                .map(|(k, r)| (k.clone(), r.snapshot()))
                .collect(),
            slow_queries: Vec::new(),
            events: Vec::new(),
        }
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("counters", &self.0.counters.lock().len())
            .field("gauges", &self.0.gauges.lock().len())
            .field("histograms", &self.0.histograms.lock().len())
            .field("rates", &self.0.rates.lock().len())
            .field("windows", &self.0.windows.lock().len())
            .finish()
    }
}

/// A frozen registry: plain owned values, safe to serialize and ship
/// over the wire (the hub's `Metrics` opcode returns one).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs, names ascending.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` pairs, names ascending.
    pub gauges: Vec<(String, i64)>,
    /// `(name, snapshot)` pairs, names ascending. Windowed histograms
    /// appear under window-suffixed names (`hub.query_ns.w10`).
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// `(name, window totals)` pairs, names ascending. Kept apart from
    /// `counters`: window totals go *down* as events age out, so mixing
    /// them in would break the "counters are monotonic" contract
    /// scrape-diffing relies on.
    pub rates: Vec<(String, RateSnapshot)>,
    /// Slow-query ring contents, oldest first.
    pub slow_queries: Vec<SlowQueryEntry>,
    /// Flight-recorder contents, oldest first.
    pub events: Vec<FlightEvent>,
}

impl MetricsSnapshot {
    /// Value of a counter, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
    }

    /// Value of a gauge, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|&(_, v)| v)
    }

    /// A histogram snapshot, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, h)| h)
    }

    /// A rate window's totals, if present.
    pub fn rate(&self, name: &str) -> Option<&RateSnapshot> {
        self.rates.iter().find(|(k, _)| k == name).map(|(_, r)| r)
    }

    /// Fold another snapshot into this one — fleet aggregation. Named
    /// instruments combine per name (counters/gauges/rates sum,
    /// histograms merge bucket-wise); names only one side has are kept;
    /// every section stays sorted. Slow-query entries concatenate
    /// (their trace ids already distinguish nodes) and events
    /// interleave by wall-clock time, so a merged recorder reads as one
    /// fleet timeline.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        fn by_name<T: Clone>(
            into: &mut Vec<(String, T)>,
            from: &[(String, T)],
            combine: impl Fn(&mut T, &T),
        ) {
            for (name, v) in from {
                match into.iter_mut().find(|(k, _)| k == name) {
                    Some((_, cur)) => combine(cur, v),
                    None => into.push((name.clone(), v.clone())),
                }
            }
            into.sort_by(|a, b| a.0.cmp(&b.0));
        }
        by_name(&mut self.counters, &other.counters, |a, b| {
            *a = a.saturating_add(*b)
        });
        by_name(&mut self.gauges, &other.gauges, |a, b| {
            *a = a.saturating_add(*b)
        });
        by_name(&mut self.histograms, &other.histograms, |a, b| a.merge(b));
        by_name(&mut self.rates, &other.rates, |a, b| a.merge(b));
        self.slow_queries.extend(other.slow_queries.iter().cloned());
        self.events.extend(other.events.iter().cloned());
        // stable: same-millisecond events keep their per-node order
        self.events.sort_by_key(|e| e.at_unix_ms);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_instrument() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("hub.requests");
        let b = reg.counter("hub.requests");
        a.add(3);
        b.add(4);
        assert_eq!(reg.counter("hub.requests").get(), 7);

        let h1 = reg.histogram("hub.queue_wait_ns");
        let h2 = reg.histogram("hub.queue_wait_ns");
        h1.record(10);
        h2.record(20);
        assert_eq!(reg.histogram("hub.queue_wait_ns").count(), 2);
    }

    #[test]
    fn register_existing_attaches_live_handle() {
        let reg = MetricsRegistry::new();
        let free = Counter::new();
        free.add(5);
        reg.register_counter("storage.get_requests", &free);
        free.add(2);
        assert_eq!(reg.snapshot().counter("storage.get_requests"), Some(7));
    }

    #[test]
    fn snapshot_is_sorted_and_queryable() {
        let reg = MetricsRegistry::new();
        reg.counter("z.last").add(1);
        reg.counter("a.first").add(2);
        reg.gauge("conns").set(-3);
        reg.histogram("lat").record(100);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, ["a.first", "z.last"]);
        assert_eq!(snap.counter("a.first"), Some(2));
        assert_eq!(snap.gauge("conns"), Some(-3));
        assert_eq!(snap.histogram("lat").unwrap().count, 1);
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn concurrent_recorders_merge_losslessly() {
        // the satellite "concurrent-recorder merge" guarantee: N threads
        // each holding their own handle to the same named histogram and
        // counter lose nothing
        const THREADS: usize = 8;
        const PER: u64 = 1000;
        let reg = MetricsRegistry::new();
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let h = reg.histogram("merge.lat");
                let c = reg.counter("merge.events");
                scope.spawn(move || {
                    for i in 0..PER {
                        h.record((t as u64 + 1) * 1000 + i);
                        c.inc();
                    }
                });
            }
        });
        let snap = reg.snapshot();
        assert_eq!(snap.counter("merge.events"), Some(THREADS as u64 * PER));
        let h = snap.histogram("merge.lat").unwrap();
        assert_eq!(h.count, THREADS as u64 * PER);
        assert_eq!(h.max, THREADS as u64 * 1000 + PER - 1);
    }

    #[test]
    fn rates_and_windows_land_in_the_snapshot() {
        let reg = MetricsRegistry::new();
        reg.rate("hub.queries_rate").add(5);
        reg.windowed("hub.query_ns").record(1_000_000);
        let snap = reg.snapshot();
        let r = snap.rate("hub.queries_rate").unwrap();
        assert_eq!(r.counts[0], 5, "1s window sees the add");
        // windowed quantiles travel as suffixed histogram entries
        for name in ["hub.query_ns.w1", "hub.query_ns.w10", "hub.query_ns.w60"] {
            assert_eq!(snap.histogram(name).unwrap().count, 1, "{name}");
        }
        // rates never leak into the monotonic counters section
        assert_eq!(snap.counter("hub.queries_rate"), None);
        // and the histogram section stays name-sorted with the suffixes in
        let names: Vec<&str> = snap.histograms.iter().map(|(k, _)| k.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    fn snapshot_merge_sums_per_name() {
        let (a, b) = (MetricsRegistry::new(), MetricsRegistry::new());
        a.counter("hub.requests").add(3);
        b.counter("hub.requests").add(4);
        b.counter("only.b").add(9);
        a.gauge("conns").set(2);
        b.gauge("conns").set(5);
        a.histogram("lat").record(100);
        b.histogram("lat").record(200);
        a.rate("qps").add(1);
        b.rate("qps").add(10);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.counter("hub.requests"), Some(7));
        assert_eq!(merged.counter("only.b"), Some(9));
        assert_eq!(merged.gauge("conns"), Some(7));
        let h = merged.histogram("lat").unwrap();
        assert_eq!((h.count, h.max), (2, 200));
        assert_eq!(merged.rate("qps").unwrap().counts[2], 11);
        // merged sections stay sorted
        let names: Vec<&str> = merged.counters.iter().map(|(k, _)| k.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    fn merged_events_interleave_by_time() {
        let mut a = MetricsSnapshot {
            events: vec![
                FlightEvent {
                    at_unix_ms: 10,
                    seq: 0,
                    kind: "mount".into(),
                    trace_id: 0,
                    detail: "a0".into(),
                },
                FlightEvent {
                    at_unix_ms: 30,
                    seq: 1,
                    kind: "mount".into(),
                    trace_id: 0,
                    detail: "a1".into(),
                },
            ],
            ..Default::default()
        };
        let b = MetricsSnapshot {
            events: vec![FlightEvent {
                at_unix_ms: 20,
                seq: 0,
                kind: "node.dead".into(),
                trace_id: 0,
                detail: "b0".into(),
            }],
            ..Default::default()
        };
        a.merge(&b);
        let details: Vec<&str> = a.events.iter().map(|e| e.detail.as_str()).collect();
        assert_eq!(details, ["a0", "b0", "a1"]);
    }
}
