//! Sliding-window rate instruments: recent throughput and recent tail
//! latency, where the monotonic [`Counter`]/[`Histogram`] instruments
//! only give lifetime totals.
//!
//! Both instruments share one design: a ring of [`SLOTS`] per-second
//! slots, each stamped with the absolute second it currently holds.
//! Recording claims the current second's slot (a CAS on the stamp; the
//! winner zeroes the slot's payload) and then increments atomically, so
//! the hot path stays lock-free and allocation-free like the rest of
//! the crate. Reading sums the slots whose stamps fall inside the
//! window. A recorder racing a slot reset at a second boundary can lose
//! or double a handful of events — monitoring-grade, the same contract
//! [`Histogram::snapshot`] already has — and slots older than
//! [`SLOTS`] seconds are simply stale-stamped, so nothing ever needs a
//! sweeper thread.
//!
//! Windows are fixed at 1 s / 10 s / 60 s ([`WINDOW_SECS`]); snapshot
//! consumers derive per-second rates by dividing a window's count by
//! its width. Time is seconds since process start (a process-local
//! monotonic epoch), never wall clock, so rates are immune to clock
//! steps; the `*_at` variants take an explicit second for deterministic
//! tests.
//!
//! [`Counter`]: crate::Counter
//! [`Histogram`]: crate::Histogram
//! [`Histogram::snapshot`]: crate::Histogram::snapshot

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use crate::hist::{bucket_index, HistogramSnapshot, BUCKETS};

/// Ring size in seconds. Must exceed the widest window so a window read
/// never aliases two different seconds onto one slot.
const SLOTS: usize = 64;

/// The three window widths every rate instrument reports, in seconds.
pub const WINDOW_SECS: [u64; 3] = [1, 10, 60];

/// Seconds elapsed since the process-local epoch (first use anywhere in
/// the process). Monotonic, immune to wall-clock steps.
fn now_sec() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_secs()
}

/// Claim `slot`'s stamp for absolute second `sec`. Returns `true` when
/// this caller won the claim and must zero the slot's payload before
/// adding to it.
fn claim(stamp: &AtomicU64, sec: u64) -> bool {
    // stamps store sec+1 so the zero-initialized ring never collides
    // with a real second 0 .. SLOTS-1
    let want = sec + 1;
    let cur = stamp.load(Ordering::Acquire);
    cur != want
        && stamp
            .compare_exchange(cur, want, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
}

fn stamped(stamp: &AtomicU64, sec: u64) -> bool {
    stamp.load(Ordering::Acquire) == sec + 1
}

struct RateSlot {
    stamp: AtomicU64,
    value: AtomicU64,
}

struct RateCore {
    slots: [RateSlot; SLOTS],
}

/// A sliding-window event/byte counter: `add` is lock-free, `counts`
/// reads back how much landed in the last 1 s / 10 s / 60 s. Cheap-clone
/// handle like [`Counter`](crate::Counter) — clones share the ring.
#[derive(Clone)]
pub struct RateWindow(Arc<RateCore>);

impl Default for RateWindow {
    fn default() -> Self {
        Self::new()
    }
}

impl RateWindow {
    /// A fresh, empty rate window.
    pub fn new() -> Self {
        RateWindow(Arc::new(RateCore {
            slots: std::array::from_fn(|_| RateSlot {
                stamp: AtomicU64::new(0),
                value: AtomicU64::new(0),
            }),
        }))
    }

    /// Record `n` events/bytes at the current second.
    pub fn add(&self, n: u64) {
        self.add_at(n, now_sec());
    }

    /// Record one event at the current second.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Record `n` at an explicit absolute second — the deterministic
    /// variant tests drive instead of the real clock.
    pub fn add_at(&self, n: u64, sec: u64) {
        let slot = &self.0.slots[(sec as usize) % SLOTS];
        if claim(&slot.stamp, sec) {
            slot.value.store(0, Ordering::Release);
        }
        slot.value.fetch_add(n, Ordering::AcqRel);
    }

    /// Totals over the last [`WINDOW_SECS`] windows, current (partial)
    /// second included.
    pub fn counts(&self) -> [u64; 3] {
        self.counts_at(now_sec())
    }

    /// Window totals as of an explicit absolute second.
    pub fn counts_at(&self, sec: u64) -> [u64; 3] {
        let mut out = [0u64; 3];
        for (i, w) in WINDOW_SECS.iter().enumerate() {
            let start = sec.saturating_sub(w - 1);
            for s in start..=sec {
                let slot = &self.0.slots[(s as usize) % SLOTS];
                if stamped(&slot.stamp, s) {
                    out[i] += slot.value.load(Ordering::Acquire);
                }
            }
        }
        out
    }

    /// Freeze the current window totals.
    pub fn snapshot(&self) -> RateSnapshot {
        RateSnapshot {
            counts: self.counts(),
        }
    }

    /// Freeze window totals as of an explicit absolute second.
    pub fn snapshot_at(&self, sec: u64) -> RateSnapshot {
        RateSnapshot {
            counts: self.counts_at(sec),
        }
    }
}

impl std::fmt::Debug for RateWindow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let c = self.counts();
        write!(f, "RateWindow(1s={} 10s={} 60s={})", c[0], c[1], c[2])
    }
}

/// Frozen window totals: events (or bytes) that landed in the last
/// 1 s / 10 s / 60 s, index-aligned with [`WINDOW_SECS`]. Per-second
/// rates are derived at display time ([`RateSnapshot::per_sec`]), so
/// the wire carries exact integers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RateSnapshot {
    /// Window totals, index-aligned with [`WINDOW_SECS`].
    pub counts: [u64; 3],
}

impl RateSnapshot {
    /// Events per second over window `i` (an index into
    /// [`WINDOW_SECS`]).
    pub fn per_sec(&self, i: usize) -> f64 {
        self.counts[i] as f64 / WINDOW_SECS[i] as f64
    }

    /// Element-wise sum — fleet aggregation across nodes.
    pub fn merge(&mut self, other: &RateSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a = a.saturating_add(*b);
        }
    }
}

struct HistSlot {
    stamp: AtomicU64,
    max: AtomicU64,
    buckets: Box<[AtomicU64]>,
}

struct WindowedHistCore {
    slots: [HistSlot; SLOTS],
}

/// A sliding-window latency histogram: the same log-scale buckets as
/// [`Histogram`](crate::Histogram), but per-second slots, so quantiles
/// can be read over the last 1 s / 10 s / 60 s instead of the process
/// lifetime. One instrument holds `SLOTS × BUCKETS` atomics (~128 KiB);
/// meant for a handful of hot-path latencies per process, not for every
/// stage.
#[derive(Clone)]
pub struct WindowedHistogram(Arc<WindowedHistCore>);

impl Default for WindowedHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl WindowedHistogram {
    /// A fresh, empty windowed histogram.
    pub fn new() -> Self {
        WindowedHistogram(Arc::new(WindowedHistCore {
            slots: std::array::from_fn(|_| HistSlot {
                stamp: AtomicU64::new(0),
                max: AtomicU64::new(0),
                buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            }),
        }))
    }

    /// Record one value (nanoseconds by convention) at the current
    /// second.
    pub fn record(&self, v: u64) {
        self.record_at(v, now_sec());
    }

    /// Record at an explicit absolute second (deterministic tests).
    pub fn record_at(&self, v: u64, sec: u64) {
        let slot = &self.0.slots[(sec as usize) % SLOTS];
        if claim(&slot.stamp, sec) {
            for b in slot.buckets.iter() {
                b.store(0, Ordering::Relaxed);
            }
            slot.max.store(0, Ordering::Release);
        }
        slot.buckets[bucket_index(v)].fetch_add(1, Ordering::AcqRel);
        slot.max.fetch_max(v, Ordering::AcqRel);
    }

    /// Merge the slots of the last [`WINDOW_SECS`] seconds into one
    /// [`HistogramSnapshot`] per window (current partial second
    /// included). Quantiles, mean and max then read exactly like the
    /// lifetime histogram's.
    pub fn snapshots(&self) -> [HistogramSnapshot; 3] {
        self.snapshots_at(now_sec())
    }

    /// Window snapshots as of an explicit absolute second.
    pub fn snapshots_at(&self, sec: u64) -> [HistogramSnapshot; 3] {
        std::array::from_fn(|i| {
            let w = WINDOW_SECS[i];
            let mut acc = vec![0u64; BUCKETS];
            let mut max = 0u64;
            let start = sec.saturating_sub(w - 1);
            for s in start..=sec {
                let slot = &self.0.slots[(s as usize) % SLOTS];
                if !stamped(&slot.stamp, s) {
                    continue;
                }
                for (a, b) in acc.iter_mut().zip(slot.buckets.iter()) {
                    *a += b.load(Ordering::Acquire);
                }
                max = max.max(slot.max.load(Ordering::Acquire));
            }
            let buckets: Vec<(u32, u64)> = acc
                .iter()
                .enumerate()
                .filter(|&(_, &n)| n > 0)
                .map(|(i, &n)| (i as u32, n))
                .collect();
            let count = buckets.iter().map(|&(_, n)| n).sum();
            // the per-slot sum is not tracked (only buckets and max), so
            // the windowed mean is bucket-estimated: midpoints weighted
            // by counts, the same error bound quantiles carry
            let sum = buckets
                .iter()
                .map(|&(i, n)| {
                    let i = i as usize;
                    let mid = crate::hist::bucket_low(i) + crate::hist::bucket_width(i) / 2;
                    mid.min(max) * n
                })
                .sum();
            HistogramSnapshot {
                count,
                sum,
                max,
                buckets,
            }
        })
    }
}

impl std::fmt::Debug for WindowedHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshots();
        write!(
            f,
            "WindowedHistogram(1s={} 10s={} 60s={})",
            s[0].count, s[1].count, s[2].count
        )
    }
}

/// Suffix a windowed instrument's name with its window: `w1`, `w10`,
/// `w60` for the 1 s / 10 s / 60 s windows — the naming convention
/// snapshot consumers key on (`hub.query_ns.w10`).
pub fn window_name(base: &str, i: usize) -> String {
    format!("{base}.w{}", WINDOW_SECS[i])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_count_inclusively() {
        let r = RateWindow::new();
        // 5 events at second 100, 3 at 105, 2 at 140
        r.add_at(5, 100);
        r.add_at(3, 105);
        r.add_at(2, 140);
        assert_eq!(r.counts_at(140), [2, 2, 10], "60s window sees all three");
        assert_eq!(r.counts_at(105), [3, 8, 8]);
        assert_eq!(r.counts_at(100), [5, 5, 5]);
        // the 60s window [140, 199] still includes second 140…
        assert_eq!(r.counts_at(199), [0, 0, 2]);
        // …and one second later everything has aged out
        assert_eq!(r.counts_at(200), [0, 0, 0]);
    }

    #[test]
    fn stale_slots_are_reclaimed_on_write() {
        let r = RateWindow::new();
        r.add_at(7, 10);
        // second 10 + SLOTS lands on the same slot; the old 7 must not leak
        let aliased = 10 + SLOTS as u64;
        r.add_at(1, aliased);
        assert_eq!(r.counts_at(aliased), [1, 1, 1]);
    }

    #[test]
    fn second_zero_counts() {
        let r = RateWindow::new();
        r.add_at(4, 0);
        assert_eq!(r.counts_at(0), [4, 4, 4]);
    }

    #[test]
    fn rates_divide_by_window_width() {
        let r = RateWindow::new();
        for s in 0..10u64 {
            r.add_at(100, s);
        }
        let snap = r.snapshot_at(9);
        assert_eq!(snap.counts, [100, 1000, 1000]);
        assert_eq!(snap.per_sec(0), 100.0);
        assert_eq!(snap.per_sec(1), 100.0);
        // the 60s window has only 10s of data; its rate underestimates
        // until the window fills — by design, rates never spike on start
        assert!((snap.per_sec(2) - 1000.0 / 60.0).abs() < 1e-9);
    }

    #[test]
    fn merge_sums_elementwise() {
        let mut a = RateSnapshot { counts: [1, 2, 3] };
        a.merge(&RateSnapshot {
            counts: [10, 20, 30],
        });
        assert_eq!(a.counts, [11, 22, 33]);
    }

    #[test]
    fn concurrent_adds_within_a_second_are_lossless() {
        let r = RateWindow::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let r = r.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        r.add_at(1, 42);
                    }
                });
            }
        });
        assert_eq!(r.counts_at(42), [8000, 8000, 8000]);
    }

    #[test]
    fn windowed_histogram_tracks_recent_quantiles() {
        let h = WindowedHistogram::new();
        // slow second, then a fast one
        for v in 1..=100u64 {
            h.record_at(v * 1_000_000, 50); // 1..100 ms
        }
        for v in 1..=100u64 {
            h.record_at(v * 1_000, 51); // 1..100 µs
        }
        let [w1, w10, _] = h.snapshots_at(51);
        assert_eq!(w1.count, 100, "1s window sees only the fast second");
        assert!(w1.quantile(0.99) < 1_000_000, "fast second p99 under 1ms");
        assert_eq!(w10.count, 200, "10s window sees both");
        assert_eq!(w10.max, 100_000_000);
        // the slow second dominates the 10s p99
        assert!(w10.quantile(0.99) > 10_000_000);
        // aged out entirely
        let [old, _, _] = h.snapshots_at(200);
        assert!(old.is_empty());
    }

    #[test]
    fn windowed_histogram_slot_aliasing_resets() {
        let h = WindowedHistogram::new();
        h.record_at(5_000, 7);
        h.record_at(9_000, 7 + SLOTS as u64);
        let [w1, _, _] = h.snapshots_at(7 + SLOTS as u64);
        assert_eq!(w1.count, 1, "aliased slot was reset");
        assert_eq!(w1.max, 9_000);
    }

    #[test]
    fn window_names_carry_the_suffix() {
        assert_eq!(window_name("hub.query_ns", 0), "hub.query_ns.w1");
        assert_eq!(window_name("hub.query_ns", 2), "hub.query_ns.w60");
    }
}
