//! Property test: histogram quantiles against exact sorted quantiles.
//!
//! For arbitrary sample sets and a spread of quantile points, the
//! histogram's bucket-midpoint estimate must land within one bucket
//! width of the exact order statistic — the error bound the hub's
//! latency numbers (and the C10K bench's p50/p99 agreement assert)
//! rely on.

use deeplake_obs::Histogram;
use proptest::prelude::*;

/// The bound the histogram guarantees: one bucket width, i.e. a quarter
/// of the value (plus 1 for integer midpoint rounding and tiny values).
fn bucket_error_bound(exact: u64) -> u64 {
    exact / 4 + 1
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn quantiles_match_exact_within_bucket_error(
        samples in proptest::collection::vec(0u64..10_000_000_000, 1..400),
    ) {
        let h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, samples.len() as u64);

        let mut sorted = samples.clone();
        sorted.sort_unstable();
        prop_assert_eq!(snap.max, *sorted.last().unwrap());

        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let rank = ((sorted.len() - 1) as f64 * q).round() as usize;
            let exact = sorted[rank];
            let approx = snap.quantile(q);
            prop_assert!(
                approx.abs_diff(exact) <= bucket_error_bound(exact),
                "q={} exact={} approx={} (n={})",
                q, exact, approx, sorted.len()
            );
        }
    }

    #[test]
    fn merged_snapshot_equals_single_recorder(
        a in proptest::collection::vec(0u64..1_000_000_000, 0..200),
        b in proptest::collection::vec(0u64..1_000_000_000, 0..200),
    ) {
        let (ha, hb, hall) = (Histogram::new(), Histogram::new(), Histogram::new());
        for &s in &a {
            ha.record(s);
            hall.record(s);
        }
        for &s in &b {
            hb.record(s);
            hall.record(s);
        }
        let mut merged = ha.snapshot();
        merged.merge(&hb.snapshot());
        prop_assert_eq!(merged, hall.snapshot());
    }
}
