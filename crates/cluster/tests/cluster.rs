//! End-to-end cluster tests: real TCP hub nodes on 127.0.0.1, a real
//! routing client, real kills.

use std::io::Write as _;
use std::net::TcpListener;
use std::sync::Arc;

use bytes::Bytes;
use deeplake_cluster::{Cluster, ClusterClient};
use deeplake_remote::{proto, RemoteProvider};
use deeplake_storage::{contract, DynProvider, MemoryProvider, StorageError, StorageProvider};

fn seeded(keys: &[(&str, &[u8])]) -> DynProvider {
    let p = MemoryProvider::new();
    for (key, value) in keys {
        p.put(key, Bytes::copy_from_slice(value)).unwrap();
    }
    Arc::new(p)
}

/// The full storage-provider contract — the suite every local provider,
/// the PR-4 server and the PR-5 hub pass — against a replicated,
/// client-routed cluster mount.
#[test]
fn cluster_mount_passes_full_contract() {
    let cluster = Cluster::builder()
        .nodes(3)
        .replication(2)
        .dataset("contract-ds")
        .build()
        .unwrap();
    let mount = cluster.client().unwrap().open("contract-ds").unwrap();
    contract::check_provider_contract_arc("cluster(contract-ds)", Arc::new(mount));
}

/// Every replica starts byte-identical to the seed provider — chunk
/// layout, commit ids, everything.
#[test]
fn replicas_are_seeded_byte_identically() {
    let seed = seeded(&[("a/0", b"alpha"), ("b/1", b"beta"), ("c", b"\x00\xff")]);
    let cluster = Cluster::builder()
        .nodes(3)
        .replication(2)
        .dataset_from("mirrored", seed.clone())
        .build()
        .unwrap();
    let replicas = cluster.replica_nodes("mirrored");
    assert_eq!(replicas.len(), 2);
    for index in replicas {
        let store = cluster.store(index, "mirrored").unwrap();
        assert_eq!(store.list("").unwrap(), seed.list("").unwrap());
        for key in seed.list("").unwrap() {
            assert_eq!(store.get(&key).unwrap(), seed.get(&key).unwrap());
        }
    }
}

/// `WhereIs` placement answers: known datasets resolve on every node
/// (any seed can bootstrap a client), unknown names are a lossless
/// `NotFound`, and a hub outside any cluster says so in plain words.
#[test]
fn where_is_resolves_on_every_node_and_rejects_unknowns() {
    let cluster = Cluster::builder()
        .nodes(3)
        .replication(2)
        .dataset("known")
        .build()
        .unwrap();
    let mut placements = Vec::new();
    for addr in cluster.addrs() {
        let conn = RemoteProvider::connect(&*addr).unwrap();
        let (epoch, replicas) = conn.where_is("known").unwrap();
        assert_eq!(replicas.len(), 2);
        placements.push((epoch, replicas));
        let err = conn.where_is("never-mounted").unwrap_err();
        assert!(
            matches!(&err, StorageError::NotFound(msg) if msg.contains("never-mounted")),
            "unexpected {err:?}"
        );
    }
    // all nodes agree — same map, same epoch, same replica set
    assert!(placements.windows(2).all(|w| w[0] == w[1]));

    // a standalone hub has no placement to answer with
    let lone = deeplake_hub::Hub::builder()
        .mount("solo", Arc::new(MemoryProvider::new()))
        .bind("127.0.0.1:0")
        .unwrap();
    let conn = RemoteProvider::connect(lone.addr()).unwrap();
    let err = conn.where_is("solo").unwrap_err();
    assert!(
        err.to_string().contains("not part of a cluster"),
        "unexpected {err:?}"
    );
}

#[test]
fn open_unknown_dataset_is_not_found() {
    let cluster = Cluster::builder().nodes(2).dataset("real").build().unwrap();
    let err = match cluster.client().unwrap().open("imaginary") {
        Err(e) => e,
        Ok(_) => panic!("opening an unknown dataset must fail"),
    };
    assert!(matches!(err, StorageError::NotFound(_)), "{err:?}");
}

/// Writes go through to every replica (verified against the backing
/// stores directly), and after a replica dies mid-stream the surviving
/// one keeps serving reads *and* writes — read-your-writes holds.
#[test]
fn writes_replicate_and_survive_a_kill() {
    let mut cluster = Cluster::builder()
        .nodes(3)
        .replication(2)
        .dataset("wal")
        .build()
        .unwrap();
    let mount = cluster.client().unwrap().open("wal").unwrap();

    mount.put("k1", Bytes::from_static(b"v1")).unwrap();
    let replicas = cluster.replica_nodes("wal");
    assert_eq!(replicas.len(), 2);
    for &index in &replicas {
        let store = cluster.store(index, "wal").unwrap();
        assert_eq!(&store.get("k1").unwrap()[..], b"v1", "replica {index}");
    }

    // kill one owning node; the stale client placement still names it
    cluster.kill(replicas[0]);
    mount.put("k2", Bytes::from_static(b"v2")).unwrap();
    // the write acked on the survivor only; reads must see it
    assert_eq!(&mount.get("k2").unwrap()[..], b"v2");
    assert_eq!(&mount.get("k1").unwrap()[..], b"v1");
    let (_, routed) = mount.placement();
    assert_eq!(
        routed.len(),
        1,
        "degraded write narrows the read set to acked replicas"
    );
    let survivor = cluster.store(replicas[1], "wal").unwrap();
    assert_eq!(&survivor.get("k2").unwrap()[..], b"v2");
}

/// Kill an owning node while a client hammers reads: zero
/// client-visible failures, failover counted, and a refreshed placement
/// stops naming the corpse.
#[test]
fn reads_fail_over_with_zero_client_visible_failures() {
    let seed = seeded(&[("hot", b"data")]);
    let mut cluster = Cluster::builder()
        .nodes(3)
        .replication(2)
        .dataset_from("served", seed)
        .build()
        .unwrap();
    let mount = cluster.client().unwrap().open("served").unwrap();
    for _ in 0..10 {
        assert_eq!(&mount.get("hot").unwrap()[..], b"data");
    }

    let victim = cluster.replica_nodes("served")[0];
    cluster.kill(victim);

    // round-robin guarantees the dead address is tried within two ops;
    // every one of these must still succeed
    for _ in 0..20 {
        assert_eq!(&mount.get("hot").unwrap()[..], b"data");
    }
    assert!(
        mount.failovers() >= 1,
        "the dead replica was never routed to"
    );

    mount.refresh().unwrap();
    let (_, replicas) = mount.placement();
    assert_eq!(replicas.len(), 1, "refreshed placement drops the dead node");
    assert_eq!(mount.get("hot").unwrap(), Bytes::from_static(b"data"));
}

/// Batched reads (`get_many`) fail over as a unit — a dead node fails
/// the batch to the next replica instead of surfacing N dead-node
/// errors.
#[test]
fn batched_reads_fail_over_as_a_unit() {
    let seed = seeded(&[("x", b"1"), ("y", b"22"), ("z", b"333")]);
    let mut cluster = Cluster::builder()
        .nodes(3)
        .replication(2)
        .dataset_from("batched", seed)
        .build()
        .unwrap();
    let mount = cluster.client().unwrap().open("batched").unwrap();
    let victim = cluster.replica_nodes("batched")[0];
    cluster.kill(victim);
    for _ in 0..6 {
        let reqs = [
            deeplake_storage::ReadRequest::whole("x"),
            deeplake_storage::ReadRequest::range("z", 0, 2),
        ];
        let results = mount.get_many(&reqs);
        assert_eq!(&results[0].as_ref().unwrap()[..], b"1");
        assert_eq!(&results[1].as_ref().unwrap()[..], b"33");
    }
}

/// A fake node that speaks an older protocol generation: every client
/// handshake is rejected with the lossless version message, and the
/// routing client treats the node as dead — requests succeed on the
/// compatible replicas, nothing hangs, nothing desynchronizes.
#[test]
fn version_mismatched_node_is_skipped_not_hung() {
    // the impostor answers every Hello with the v1-server rejection
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let fake_addr = listener.local_addr().unwrap().to_string();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { break };
            if proto::read_frame(&mut stream).ok().flatten().is_some() {
                let reject = proto::resp_proto_err(&format!(
                    "protocol version {} unsupported (server speaks 1)",
                    proto::PROTO_VERSION
                ));
                let _ = proto::write_frame(&mut stream, &reject);
                let _ = stream.flush();
            }
        }
    });

    // the mismatch is lossless on a direct dial
    let err = match RemoteProvider::connect(&*fake_addr) {
        Err(e) => e,
        Ok(_) => panic!("the impostor must reject the handshake"),
    };
    assert!(
        err.to_string().contains("protocol version"),
        "unexpected {err}"
    );

    // R=3 over 2 real nodes + the impostor puts it in every replica set
    let seed = seeded(&[("k", b"v")]);
    let cluster = Cluster::builder()
        .nodes(2)
        .replication(3)
        .external_node(&fake_addr)
        .dataset_from("mixed", seed)
        .build()
        .unwrap();
    let mount = cluster.client().unwrap().open("mixed").unwrap();
    let (_, replicas) = mount.placement();
    assert!(
        replicas.contains(&fake_addr),
        "impostor is in the placement"
    );
    for _ in 0..9 {
        assert_eq!(&mount.get("k").unwrap()[..], b"v");
    }
    assert!(
        mount.failovers() >= 1,
        "rotation must have tried the impostor and moved on"
    );
}

/// When every replica of a dataset is dead, the client reports one
/// clean error (after refreshing the map) instead of hanging or
/// panicking.
#[test]
fn losing_every_replica_is_a_clean_error() {
    let seed = seeded(&[("k", b"v")]);
    let mut cluster = Cluster::builder()
        .nodes(3)
        .replication(2)
        .dataset_from("doomed", seed)
        .build()
        .unwrap();
    let mount = cluster.client().unwrap().open("doomed").unwrap();
    assert!(mount.get("k").is_ok());
    for index in cluster.replica_nodes("doomed") {
        cluster.kill(index);
    }
    let err = mount.get("k").unwrap_err();
    assert!(matches!(err, StorageError::Io(_)), "{err:?}");
    assert!(
        mount.refreshes() >= 1,
        "the whole-set failure forced a refresh"
    );
}

/// The seed list only needs ONE live address: a client seeded with two
/// dead nodes and one live one still bootstraps.
#[test]
fn client_bootstraps_from_any_live_seed() {
    let mut cluster = Cluster::builder()
        .nodes(3)
        .replication(3)
        .dataset("everywhere")
        .build()
        .unwrap();
    cluster.kill(0);
    cluster.kill(1);
    let client = ClusterClient::connect(cluster.addrs()).unwrap();
    let mount = client.open("everywhere").unwrap();
    mount.put("k", Bytes::from_static(b"v")).unwrap();
    assert_eq!(&mount.get("k").unwrap()[..], b"v");
    assert_eq!(client.list_datasets().unwrap(), vec!["everywhere"]);
}

/// `list_datasets` must return the whole catalog, not one node's shard:
/// with R=1 over 3 nodes no single node mounts every dataset, so the
/// client has to union the answers of every reachable seed.
#[test]
fn list_datasets_unions_shards_across_the_fleet() {
    let names = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"];
    let mut builder = Cluster::builder().nodes(3).replication(1);
    for name in names {
        builder = builder.dataset(name);
    }
    let mut cluster = builder.build().unwrap();
    let client = cluster.client().unwrap();
    let mut want: Vec<String> = names.iter().map(|s| s.to_string()).collect();
    want.sort();
    assert_eq!(client.list_datasets().unwrap(), want);

    // a dead seed is skipped, not fatal — the union shrinks to what the
    // survivors mount (an honest partial catalog beats an error)
    cluster.kill(0);
    let listed = ClusterClient::connect(cluster.addrs())
        .unwrap()
        .list_datasets()
        .unwrap();
    assert!(!listed.is_empty() && listed.len() < names.len());
    assert!(listed.iter().all(|n| want.contains(n)));
}

/// The observability acceptance scenario: a single query through
/// `ClusterClient` → hub → storage produces a connected span tree on
/// whichever replica served it, retrievable over the wire via the
/// `Metrics` opcode, with the queue-wait, execute, and storage-RT
/// stages all non-zero.
#[test]
fn cluster_query_produces_connected_span_tree() {
    use deeplake_core::dataset::TensorOptions;
    use deeplake_core::Dataset;
    use deeplake_hub::HubOptions;
    use deeplake_tensor::{Htype, Sample};
    use deeplake_tql::QueryOptions;
    use std::time::Duration;

    let seed: DynProvider = Arc::new(MemoryProvider::new());
    let mut ds = Dataset::create(seed.clone(), "traced").unwrap();
    ds.create_tensor_opts("labels", {
        let mut o = TensorOptions::new(Htype::ClassLabel);
        o.chunk_target_bytes = Some(256);
        o
    })
    .unwrap();
    for i in 0..500u64 {
        ds.append_row(vec![("labels", Sample::scalar((i / 100) as i32))])
            .unwrap();
    }
    ds.flush().unwrap();

    let cluster = Cluster::builder()
        .nodes(3)
        .replication(2)
        .dataset_from("traced", seed)
        .hub_options(HubOptions {
            // log every query, however fast
            slow_query_threshold: Duration::ZERO,
            ..HubOptions::default()
        })
        .build()
        .unwrap();
    let mount = cluster.client().unwrap().open("traced").unwrap();
    let result = mount
        .query(
            "SELECT labels FROM traced WHERE labels = 3",
            &QueryOptions::default(),
        )
        .unwrap();
    assert_eq!(result.len(), 100);

    // one of the owning replicas served it — find the span tree through
    // the wire opcode, exactly as an operator would
    let addrs = cluster.addrs();
    let entry = cluster
        .replica_nodes("traced")
        .into_iter()
        .find_map(|index| {
            let probe = RemoteProvider::connect(&*addrs[index]).unwrap();
            let snap = probe.hub_metrics().unwrap();
            snap.slow_queries
                .iter()
                .find(|e| e.dataset == "traced" && e.text.contains("SELECT"))
                .cloned()
        })
        .expect("the traced query must be in one replica's slow-query log");

    // the client's trace context crossed the wire
    assert_ne!(entry.trace_id, 0);
    assert_ne!(
        entry.parent_span, 0,
        "hub tree must hang off the client span"
    );

    let span = |name: &str| {
        entry
            .spans
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("span {name} missing"))
    };
    assert_eq!(span("queue_wait").parent_span, entry.root_span);
    assert_eq!(span("execute").parent_span, entry.root_span);
    assert_eq!(span("storage").parent_span, span("execute").span_id);
    assert!(span("queue_wait").dur_ns > 0);
    assert!(span("execute").dur_ns > 0);
    assert!(span("storage").dur_ns > 0);
}

/// A small committed dataset seed for query traffic.
fn query_seed(name: &str) -> DynProvider {
    use deeplake_core::dataset::TensorOptions;
    use deeplake_core::Dataset;
    use deeplake_tensor::{Htype, Sample};

    let seed: DynProvider = Arc::new(MemoryProvider::new());
    let mut ds = Dataset::create(seed.clone(), name).unwrap();
    ds.create_tensor_opts("labels", {
        let mut o = TensorOptions::new(Htype::ClassLabel);
        o.chunk_target_bytes = Some(256);
        o
    })
    .unwrap();
    for i in 0..300u64 {
        ds.append_row(vec![("labels", Sample::scalar((i / 100) as i32))])
            .unwrap();
    }
    ds.flush().unwrap();
    seed
}

/// The fleet-observability acceptance scenario, end to end:
///
/// 1. a node *crashes* — its hub dies but nobody tells the map (no
///    `kill`, no `mark_dead`);
/// 2. queries routed through the `ClusterClient` keep succeeding
///    through the death (client-side failover covers the window);
/// 3. the background health prober observes the death and flips the
///    map within a probe interval — fresh placements stop naming the
///    corpse, with zero manual intervention;
/// 4. `cluster_metrics()` merges every surviving node's snapshot so
///    each merged counter equals the sum of the per-node values, and
///    stitches the traced query's cross-node span tree;
/// 5. the surviving nodes' flight recorders contain the node-death
///    observation.
#[test]
fn prober_detects_unobserved_crash_and_fleet_metrics_merge() {
    use deeplake_hub::HubOptions;
    use deeplake_obs::FlightEvent;
    use deeplake_tql::QueryOptions;
    use std::time::{Duration, Instant};

    let mut cluster = Cluster::builder()
        .nodes(3)
        .replication(2)
        .dataset_from("probed", query_seed("probed"))
        .hub_options(HubOptions {
            // log every query so the trace lands in a slow-query ring
            slow_query_threshold: Duration::ZERO,
            ..HubOptions::default()
        })
        .build()
        .unwrap();
    let client = cluster.client().unwrap();
    let mount = client.open("probed").unwrap();
    let q = "SELECT labels FROM probed WHERE labels = 1";
    assert_eq!(mount.query(q, &QueryOptions::default()).unwrap().len(), 100);

    let victim_index = cluster.replica_nodes("probed")[0];
    let victim_addr = cluster.addrs()[victim_index].clone();
    let epoch_before = cluster.epoch();
    assert!(cluster.crash(victim_index), "crash kills the hub only");
    assert!(
        cluster.map().read().live_addrs().contains(&victim_addr),
        "nobody told the map: the corpse still resolves in placements"
    );

    assert!(
        client.start_prober(Duration::from_millis(50)),
        "the cluster-built client has the map attached"
    );
    assert!(
        !client.start_prober(Duration::from_millis(50)),
        "a second prober is refused"
    );

    // queries keep succeeding THROUGH the unobserved death
    for _ in 0..10 {
        assert_eq!(mount.query(q, &QueryOptions::default()).unwrap().len(), 100);
    }

    // within a probe interval (plus scheduling slack) the map flips
    let deadline = Instant::now() + Duration::from_secs(10);
    while cluster.map().read().live_addrs().contains(&victim_addr) {
        assert!(
            Instant::now() < deadline,
            "prober never marked the crashed node dead"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(cluster.epoch() > epoch_before, "the flip bumped the epoch");
    let (_, fresh) = client.open("probed").unwrap().placement();
    assert!(
        !fresh.contains(&victim_addr),
        "fresh placements must not name the corpse"
    );

    // the prober's decisions are themselves counted
    let probe_snap = client.metrics();
    assert!(probe_snap.counter("cluster.probe.probes").unwrap_or(0) >= 3);
    assert_eq!(probe_snap.counter("cluster.probe.deaths"), Some(1));

    // every surviving node's flight recorder observed the death
    for index in 0..3 {
        if index == victim_index {
            continue;
        }
        let events = cluster.hub(index).unwrap().flight_recorder().events();
        assert!(
            events
                .iter()
                .any(|e| e.kind == FlightEvent::NODE_DEAD && e.detail == victim_addr),
            "node {index} missed the death observation: {events:?}"
        );
    }

    // fleet aggregation over the survivors: merged == per-node sums
    let fleet = client.cluster_metrics().unwrap();
    assert_eq!(fleet.per_node.len(), 2, "two live nodes scraped");
    for (name, total) in &fleet.merged.counters {
        let sum: u64 = fleet
            .per_node
            .iter()
            .map(|(_, snap)| snap.counter(name).unwrap_or(0))
            .sum();
        assert_eq!(*total, sum, "merged counter {name} != per-node sum");
    }
    for (name, merged_hist) in &fleet.merged.histograms {
        let count_sum: u64 = fleet
            .per_node
            .iter()
            .filter_map(|(_, snap)| snap.histogram(name))
            .map(|h| h.count)
            .sum();
        assert_eq!(merged_hist.count, count_sum, "merged histogram {name}");
    }
    // the merged event timeline carries the fleet's accepts and the
    // death observations
    assert!(fleet
        .merged
        .events
        .iter()
        .any(|e| e.kind == FlightEvent::NODE_DEAD && e.detail == victim_addr));

    // the traced query's span tree stitches out of the fleet view
    let trace_id = fleet
        .merged
        .slow_queries
        .iter()
        .find(|e| e.dataset == "probed")
        .expect("the query landed in some node's slow log")
        .trace_id;
    assert_ne!(trace_id, 0);
    let tree = fleet.span_tree(trace_id);
    let root = tree
        .iter()
        .find(|s| s.name == "hub:probed")
        .expect("synthetic hub root span");
    assert!(
        tree.iter()
            .any(|s| s.name == "execute" && s.parent_span == root.span_id),
        "stage spans hang under the hub root"
    );
    // parents precede children
    let ids: std::collections::HashSet<u64> = tree.iter().map(|s| s.span_id).collect();
    let mut seen = std::collections::HashSet::new();
    for span in &tree {
        assert!(
            !ids.contains(&span.parent_span) || seen.contains(&span.parent_span),
            "span {} precedes its parent",
            span.name
        );
        seen.insert(span.span_id);
    }

    client.stop_prober();
    client.stop_prober(); // idempotent
}

/// The recovery direction: a healthy node falsely declared dead is
/// revived by the prober's next round, and the revival is observed in
/// the fleet's flight recorders.
#[test]
fn prober_revives_a_falsely_declared_node() {
    use deeplake_obs::FlightEvent;
    use std::time::{Duration, Instant};

    let cluster = Cluster::builder()
        .nodes(2)
        .replication(2)
        .dataset("steady")
        .build()
        .unwrap();
    let client = cluster.client().unwrap();
    let addr = cluster.addrs()[0].clone();
    assert!(cluster.map().write().mark_dead(&addr), "false declaration");
    assert!(!cluster.map().read().live_addrs().contains(&addr));

    assert!(client.start_prober(Duration::from_millis(30)));
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cluster.map().read().live_addrs().contains(&addr) {
        assert!(
            Instant::now() < deadline,
            "prober never revived the healthy node"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        client
            .metrics()
            .counter("cluster.probe.revivals")
            .unwrap_or(0)
            >= 1
    );
    let events = cluster.hub(1).unwrap().flight_recorder().events();
    assert!(
        events
            .iter()
            .any(|e| e.kind == FlightEvent::NODE_LIVE && e.detail == addr),
        "the revival must be observed: {events:?}"
    );
}
