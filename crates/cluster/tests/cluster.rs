//! End-to-end cluster tests: real TCP hub nodes on 127.0.0.1, a real
//! routing client, real kills.

use std::io::Write as _;
use std::net::TcpListener;
use std::sync::Arc;

use bytes::Bytes;
use deeplake_cluster::{Cluster, ClusterClient};
use deeplake_remote::{proto, RemoteProvider};
use deeplake_storage::{contract, DynProvider, MemoryProvider, StorageError, StorageProvider};

fn seeded(keys: &[(&str, &[u8])]) -> DynProvider {
    let p = MemoryProvider::new();
    for (key, value) in keys {
        p.put(key, Bytes::copy_from_slice(value)).unwrap();
    }
    Arc::new(p)
}

/// The full storage-provider contract — the suite every local provider,
/// the PR-4 server and the PR-5 hub pass — against a replicated,
/// client-routed cluster mount.
#[test]
fn cluster_mount_passes_full_contract() {
    let cluster = Cluster::builder()
        .nodes(3)
        .replication(2)
        .dataset("contract-ds")
        .build()
        .unwrap();
    let mount = cluster.client().unwrap().open("contract-ds").unwrap();
    contract::check_provider_contract_arc("cluster(contract-ds)", Arc::new(mount));
}

/// Every replica starts byte-identical to the seed provider — chunk
/// layout, commit ids, everything.
#[test]
fn replicas_are_seeded_byte_identically() {
    let seed = seeded(&[("a/0", b"alpha"), ("b/1", b"beta"), ("c", b"\x00\xff")]);
    let cluster = Cluster::builder()
        .nodes(3)
        .replication(2)
        .dataset_from("mirrored", seed.clone())
        .build()
        .unwrap();
    let replicas = cluster.replica_nodes("mirrored");
    assert_eq!(replicas.len(), 2);
    for index in replicas {
        let store = cluster.store(index, "mirrored").unwrap();
        assert_eq!(store.list("").unwrap(), seed.list("").unwrap());
        for key in seed.list("").unwrap() {
            assert_eq!(store.get(&key).unwrap(), seed.get(&key).unwrap());
        }
    }
}

/// `WhereIs` placement answers: known datasets resolve on every node
/// (any seed can bootstrap a client), unknown names are a lossless
/// `NotFound`, and a hub outside any cluster says so in plain words.
#[test]
fn where_is_resolves_on_every_node_and_rejects_unknowns() {
    let cluster = Cluster::builder()
        .nodes(3)
        .replication(2)
        .dataset("known")
        .build()
        .unwrap();
    let mut placements = Vec::new();
    for addr in cluster.addrs() {
        let conn = RemoteProvider::connect(&*addr).unwrap();
        let (epoch, replicas) = conn.where_is("known").unwrap();
        assert_eq!(replicas.len(), 2);
        placements.push((epoch, replicas));
        let err = conn.where_is("never-mounted").unwrap_err();
        assert!(
            matches!(&err, StorageError::NotFound(msg) if msg.contains("never-mounted")),
            "unexpected {err:?}"
        );
    }
    // all nodes agree — same map, same epoch, same replica set
    assert!(placements.windows(2).all(|w| w[0] == w[1]));

    // a standalone hub has no placement to answer with
    let lone = deeplake_hub::Hub::builder()
        .mount("solo", Arc::new(MemoryProvider::new()))
        .bind("127.0.0.1:0")
        .unwrap();
    let conn = RemoteProvider::connect(lone.addr()).unwrap();
    let err = conn.where_is("solo").unwrap_err();
    assert!(
        err.to_string().contains("not part of a cluster"),
        "unexpected {err:?}"
    );
}

#[test]
fn open_unknown_dataset_is_not_found() {
    let cluster = Cluster::builder().nodes(2).dataset("real").build().unwrap();
    let err = match cluster.client().unwrap().open("imaginary") {
        Err(e) => e,
        Ok(_) => panic!("opening an unknown dataset must fail"),
    };
    assert!(matches!(err, StorageError::NotFound(_)), "{err:?}");
}

/// Writes go through to every replica (verified against the backing
/// stores directly), and after a replica dies mid-stream the surviving
/// one keeps serving reads *and* writes — read-your-writes holds.
#[test]
fn writes_replicate_and_survive_a_kill() {
    let mut cluster = Cluster::builder()
        .nodes(3)
        .replication(2)
        .dataset("wal")
        .build()
        .unwrap();
    let mount = cluster.client().unwrap().open("wal").unwrap();

    mount.put("k1", Bytes::from_static(b"v1")).unwrap();
    let replicas = cluster.replica_nodes("wal");
    assert_eq!(replicas.len(), 2);
    for &index in &replicas {
        let store = cluster.store(index, "wal").unwrap();
        assert_eq!(&store.get("k1").unwrap()[..], b"v1", "replica {index}");
    }

    // kill one owning node; the stale client placement still names it
    cluster.kill(replicas[0]);
    mount.put("k2", Bytes::from_static(b"v2")).unwrap();
    // the write acked on the survivor only; reads must see it
    assert_eq!(&mount.get("k2").unwrap()[..], b"v2");
    assert_eq!(&mount.get("k1").unwrap()[..], b"v1");
    let (_, routed) = mount.placement();
    assert_eq!(
        routed.len(),
        1,
        "degraded write narrows the read set to acked replicas"
    );
    let survivor = cluster.store(replicas[1], "wal").unwrap();
    assert_eq!(&survivor.get("k2").unwrap()[..], b"v2");
}

/// Kill an owning node while a client hammers reads: zero
/// client-visible failures, failover counted, and a refreshed placement
/// stops naming the corpse.
#[test]
fn reads_fail_over_with_zero_client_visible_failures() {
    let seed = seeded(&[("hot", b"data")]);
    let mut cluster = Cluster::builder()
        .nodes(3)
        .replication(2)
        .dataset_from("served", seed)
        .build()
        .unwrap();
    let mount = cluster.client().unwrap().open("served").unwrap();
    for _ in 0..10 {
        assert_eq!(&mount.get("hot").unwrap()[..], b"data");
    }

    let victim = cluster.replica_nodes("served")[0];
    cluster.kill(victim);

    // round-robin guarantees the dead address is tried within two ops;
    // every one of these must still succeed
    for _ in 0..20 {
        assert_eq!(&mount.get("hot").unwrap()[..], b"data");
    }
    assert!(
        mount.failovers() >= 1,
        "the dead replica was never routed to"
    );

    mount.refresh().unwrap();
    let (_, replicas) = mount.placement();
    assert_eq!(replicas.len(), 1, "refreshed placement drops the dead node");
    assert_eq!(mount.get("hot").unwrap(), Bytes::from_static(b"data"));
}

/// Batched reads (`get_many`) fail over as a unit — a dead node fails
/// the batch to the next replica instead of surfacing N dead-node
/// errors.
#[test]
fn batched_reads_fail_over_as_a_unit() {
    let seed = seeded(&[("x", b"1"), ("y", b"22"), ("z", b"333")]);
    let mut cluster = Cluster::builder()
        .nodes(3)
        .replication(2)
        .dataset_from("batched", seed)
        .build()
        .unwrap();
    let mount = cluster.client().unwrap().open("batched").unwrap();
    let victim = cluster.replica_nodes("batched")[0];
    cluster.kill(victim);
    for _ in 0..6 {
        let reqs = [
            deeplake_storage::ReadRequest::whole("x"),
            deeplake_storage::ReadRequest::range("z", 0, 2),
        ];
        let results = mount.get_many(&reqs);
        assert_eq!(&results[0].as_ref().unwrap()[..], b"1");
        assert_eq!(&results[1].as_ref().unwrap()[..], b"33");
    }
}

/// A fake node that speaks an older protocol generation: every client
/// handshake is rejected with the lossless version message, and the
/// routing client treats the node as dead — requests succeed on the
/// compatible replicas, nothing hangs, nothing desynchronizes.
#[test]
fn version_mismatched_node_is_skipped_not_hung() {
    // the impostor answers every Hello with the v1-server rejection
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let fake_addr = listener.local_addr().unwrap().to_string();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { break };
            if proto::read_frame(&mut stream).ok().flatten().is_some() {
                let reject = proto::resp_proto_err(&format!(
                    "protocol version {} unsupported (server speaks 1)",
                    proto::PROTO_VERSION
                ));
                let _ = proto::write_frame(&mut stream, &reject);
                let _ = stream.flush();
            }
        }
    });

    // the mismatch is lossless on a direct dial
    let err = match RemoteProvider::connect(&*fake_addr) {
        Err(e) => e,
        Ok(_) => panic!("the impostor must reject the handshake"),
    };
    assert!(
        err.to_string().contains("protocol version"),
        "unexpected {err}"
    );

    // R=3 over 2 real nodes + the impostor puts it in every replica set
    let seed = seeded(&[("k", b"v")]);
    let cluster = Cluster::builder()
        .nodes(2)
        .replication(3)
        .external_node(&fake_addr)
        .dataset_from("mixed", seed)
        .build()
        .unwrap();
    let mount = cluster.client().unwrap().open("mixed").unwrap();
    let (_, replicas) = mount.placement();
    assert!(
        replicas.contains(&fake_addr),
        "impostor is in the placement"
    );
    for _ in 0..9 {
        assert_eq!(&mount.get("k").unwrap()[..], b"v");
    }
    assert!(
        mount.failovers() >= 1,
        "rotation must have tried the impostor and moved on"
    );
}

/// When every replica of a dataset is dead, the client reports one
/// clean error (after refreshing the map) instead of hanging or
/// panicking.
#[test]
fn losing_every_replica_is_a_clean_error() {
    let seed = seeded(&[("k", b"v")]);
    let mut cluster = Cluster::builder()
        .nodes(3)
        .replication(2)
        .dataset_from("doomed", seed)
        .build()
        .unwrap();
    let mount = cluster.client().unwrap().open("doomed").unwrap();
    assert!(mount.get("k").is_ok());
    for index in cluster.replica_nodes("doomed") {
        cluster.kill(index);
    }
    let err = mount.get("k").unwrap_err();
    assert!(matches!(err, StorageError::Io(_)), "{err:?}");
    assert!(
        mount.refreshes() >= 1,
        "the whole-set failure forced a refresh"
    );
}

/// The seed list only needs ONE live address: a client seeded with two
/// dead nodes and one live one still bootstraps.
#[test]
fn client_bootstraps_from_any_live_seed() {
    let mut cluster = Cluster::builder()
        .nodes(3)
        .replication(3)
        .dataset("everywhere")
        .build()
        .unwrap();
    cluster.kill(0);
    cluster.kill(1);
    let client = ClusterClient::connect(cluster.addrs()).unwrap();
    let mount = client.open("everywhere").unwrap();
    mount.put("k", Bytes::from_static(b"v")).unwrap();
    assert_eq!(&mount.get("k").unwrap()[..], b"v");
    assert_eq!(client.list_datasets().unwrap(), vec!["everywhere"]);
}

/// `list_datasets` must return the whole catalog, not one node's shard:
/// with R=1 over 3 nodes no single node mounts every dataset, so the
/// client has to union the answers of every reachable seed.
#[test]
fn list_datasets_unions_shards_across_the_fleet() {
    let names = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"];
    let mut builder = Cluster::builder().nodes(3).replication(1);
    for name in names {
        builder = builder.dataset(name);
    }
    let mut cluster = builder.build().unwrap();
    let client = cluster.client().unwrap();
    let mut want: Vec<String> = names.iter().map(|s| s.to_string()).collect();
    want.sort();
    assert_eq!(client.list_datasets().unwrap(), want);

    // a dead seed is skipped, not fatal — the union shrinks to what the
    // survivors mount (an honest partial catalog beats an error)
    cluster.kill(0);
    let listed = ClusterClient::connect(cluster.addrs())
        .unwrap()
        .list_datasets()
        .unwrap();
    assert!(!listed.is_empty() && listed.len() < names.len());
    assert!(listed.iter().all(|n| want.contains(n)));
}

/// The observability acceptance scenario: a single query through
/// `ClusterClient` → hub → storage produces a connected span tree on
/// whichever replica served it, retrievable over the wire via the
/// `Metrics` opcode, with the queue-wait, execute, and storage-RT
/// stages all non-zero.
#[test]
fn cluster_query_produces_connected_span_tree() {
    use deeplake_core::dataset::TensorOptions;
    use deeplake_core::Dataset;
    use deeplake_hub::HubOptions;
    use deeplake_tensor::{Htype, Sample};
    use deeplake_tql::QueryOptions;
    use std::time::Duration;

    let seed: DynProvider = Arc::new(MemoryProvider::new());
    let mut ds = Dataset::create(seed.clone(), "traced").unwrap();
    ds.create_tensor_opts("labels", {
        let mut o = TensorOptions::new(Htype::ClassLabel);
        o.chunk_target_bytes = Some(256);
        o
    })
    .unwrap();
    for i in 0..500u64 {
        ds.append_row(vec![("labels", Sample::scalar((i / 100) as i32))])
            .unwrap();
    }
    ds.flush().unwrap();

    let cluster = Cluster::builder()
        .nodes(3)
        .replication(2)
        .dataset_from("traced", seed)
        .hub_options(HubOptions {
            // log every query, however fast
            slow_query_threshold: Duration::ZERO,
            ..HubOptions::default()
        })
        .build()
        .unwrap();
    let mount = cluster.client().unwrap().open("traced").unwrap();
    let result = mount
        .query(
            "SELECT labels FROM traced WHERE labels = 3",
            &QueryOptions::default(),
        )
        .unwrap();
    assert_eq!(result.len(), 100);

    // one of the owning replicas served it — find the span tree through
    // the wire opcode, exactly as an operator would
    let addrs = cluster.addrs();
    let entry = cluster
        .replica_nodes("traced")
        .into_iter()
        .find_map(|index| {
            let probe = RemoteProvider::connect(&*addrs[index]).unwrap();
            let snap = probe.hub_metrics().unwrap();
            snap.slow_queries
                .iter()
                .find(|e| e.dataset == "traced" && e.text.contains("SELECT"))
                .cloned()
        })
        .expect("the traced query must be in one replica's slow-query log");

    // the client's trace context crossed the wire
    assert_ne!(entry.trace_id, 0);
    assert_ne!(
        entry.parent_span, 0,
        "hub tree must hang off the client span"
    );

    let span = |name: &str| {
        entry
            .spans
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("span {name} missing"))
    };
    assert_eq!(span("queue_wait").parent_span, entry.root_span);
    assert_eq!(span("execute").parent_span, entry.root_span);
    assert_eq!(span("storage").parent_span, span("execute").span_id);
    assert!(span("queue_wait").dur_ns > 0);
    assert!(span("execute").dur_ns > 0);
    assert!(span("storage").dur_ns > 0);
}
