//! Client-side placement routing: discover once, route reads to an
//! owning replica, write through to all of them, fail over when a node
//! dies mid-request.
//!
//! A [`ClusterClient`] holds only a *seed list* of node addresses.
//! Opening a dataset asks any reachable seed `WhereIs(name)` and caches
//! the answer — `(epoch, live replica addresses)` — in the returned
//! [`ClusterMount`]. From then on every operation is routed directly to
//! a replica that owns the data; no proxy hop, no per-request metadata
//! lookup. The mount implements [`StorageProvider`], so datasets, TQL
//! offload and loaders run against a cluster *unchanged*.
//!
//! Routing policy, per operation:
//!
//! * **Reads** rotate round-robin over the replica set (spreading load),
//!   and on a *transport* error — connection refused, mid-stream drop,
//!   `Busy` after the remote client's own bounded retries — move to the
//!   next replica. Reads are pure and idempotent, so retrying elsewhere
//!   is always safe. Only when every replica fails does the mount
//!   refresh its placement (the map may have changed under it) and try
//!   one more round; *semantic* errors (`NotFound`, range errors) are
//!   returned immediately — another replica holds the same bytes and
//!   would say the same thing.
//! * **Writes** go to **all** R replicas. At least one ack is required;
//!   replicas that failed are dropped from this mount's read rotation
//!   (read-your-writes: a subsequent read can only land on a replica
//!   that took the write) until the next placement refresh, when the
//!   map's view — and, in a full system, re-replication — takes over.
//! * **Queries** ship TQL text to one owning replica and fail over like
//!   reads; each node's version-pinned result cache makes repeated hot
//!   queries a frame copy.
//!
//! The epoch rides along so stale placements are detected instead of
//! trusted: any refresh answering with a newer epoch replaces the
//! cached one; an older answer (a node that has not heard the news yet)
//! is ignored.

use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use deeplake_obs::{Counter, MetricsRegistry, MetricsSnapshot};
use deeplake_remote::{RemoteOptions, RemoteProvider};
use deeplake_storage::{ReadPlan, ReadRequest, ReadResult, StorageError, StorageProvider};
use deeplake_tql::{QueryOptions, QueryResult, TqlError};
use parking_lot::Mutex;

/// Routing-client configuration.
#[derive(Debug, Clone, Copy)]
pub struct ClusterClientOptions {
    /// Per-connection transport options (pool size, injected latency,
    /// `Busy` retry budget) for every replica connection.
    pub remote: RemoteOptions,
    /// Placement-refresh rounds after every replica in the cached
    /// placement failed: each extra round re-asks the seeds `WhereIs`
    /// and retries the whole replica set once. 1 is enough to survive
    /// any single membership change between refreshes.
    pub refresh_rounds: usize,
}

impl Default for ClusterClientOptions {
    fn default() -> Self {
        ClusterClientOptions {
            remote: RemoteOptions::default(),
            refresh_rounds: 1,
        }
    }
}

/// `Io` and `Busy` mean the *node* failed, not the request — another
/// replica can serve it. Everything else is a property of the data and
/// will be identical on every replica.
fn is_transport(e: &StorageError) -> bool {
    matches!(e, StorageError::Io(_) | StorageError::Busy(_))
}

/// The TQL equivalent: [`RemoteProvider::query`] folds transport
/// failures into [`TqlError::Remote`] with messages naming the
/// transport ("remote transport", "remote dial", "busy"); genuine query
/// errors (parse, unknown column) come back verbatim and fail over
/// nowhere.
fn tql_is_transport(e: &TqlError) -> bool {
    match e {
        TqlError::Remote(msg) => {
            msg.contains("remote transport") || msg.contains("remote dial") || msg.contains("busy")
        }
        _ => false,
    }
}

/// Connection cache + seed list shared by every mount of one client.
struct Shared {
    seeds: Vec<String>,
    options: ClusterClientOptions,
    /// `(address, dataset)` → attached connection. The empty dataset is
    /// the un-attached control connection used for `WhereIs`.
    conns: Mutex<HashMap<(String, String), Arc<RemoteProvider>>>,
    /// Client-side instruments: every mount's failover/refresh counters
    /// register here under `cluster.<dataset>.*`, so one snapshot covers
    /// all datasets this client routes to.
    metrics: MetricsRegistry,
}

impl Shared {
    /// An attached connection to `addr` (cached; a fresh dial performs
    /// the version handshake and attach replay).
    fn conn(&self, addr: &str, dataset: &str) -> Result<Arc<RemoteProvider>, StorageError> {
        let key = (addr.to_string(), dataset.to_string());
        if let Some(conn) = self.conns.lock().get(&key) {
            return Ok(Arc::clone(conn));
        }
        let provider = RemoteProvider::connect_with(addr, self.options.remote)
            .map_err(|e| StorageError::Io(format!("cluster dial {addr}: {e}")))?;
        if !dataset.is_empty() {
            provider.attach(dataset)?;
        }
        let provider = Arc::new(provider);
        self.conns.lock().insert(key, Arc::clone(&provider));
        Ok(provider)
    }

    /// Forget a connection whose node misbehaved; the next use re-dials.
    fn drop_conn(&self, addr: &str, dataset: &str) {
        self.conns
            .lock()
            .remove(&(addr.to_string(), dataset.to_string()));
    }

    /// Ask the seeds where `dataset` lives; the highest-epoch answer
    /// wins (a seed that has not heard about a death yet answers with a
    /// lower epoch and is outvoted). Transport-dead seeds are skipped;
    /// a semantic answer (`NotFound`) is returned only when no seed
    /// gave a placement.
    fn where_is_any(&self, dataset: &str) -> Result<(u64, Vec<String>), StorageError> {
        let mut best: Option<(u64, Vec<String>)> = None;
        let mut last_err: Option<StorageError> = None;
        for addr in &self.seeds {
            let conn = match self.conn(addr, "") {
                Ok(conn) => conn,
                Err(e) => {
                    last_err = Some(e);
                    continue;
                }
            };
            match conn.where_is(dataset) {
                Ok((epoch, replicas)) => {
                    if best.as_ref().is_none_or(|(e, _)| epoch > *e) {
                        best = Some((epoch, replicas));
                    }
                }
                Err(e) => {
                    if is_transport(&e) {
                        self.drop_conn(addr, "");
                    }
                    last_err = Some(e);
                }
            }
        }
        best.ok_or_else(|| {
            last_err.unwrap_or_else(|| StorageError::Io("cluster has no reachable seed".into()))
        })
    }
}

/// Entry point: connects to a cluster by seed list and opens datasets.
pub struct ClusterClient {
    shared: Arc<Shared>,
}

impl ClusterClient {
    /// A client over `seeds` (any subset of the cluster's addresses —
    /// every node answers placement for every dataset). Connections are
    /// dialed lazily.
    pub fn connect(seeds: Vec<String>) -> io::Result<ClusterClient> {
        Self::connect_with(seeds, ClusterClientOptions::default())
    }

    /// A client with explicit options.
    pub fn connect_with(
        seeds: Vec<String>,
        options: ClusterClientOptions,
    ) -> io::Result<ClusterClient> {
        if seeds.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a cluster client needs at least one seed address",
            ));
        }
        Ok(ClusterClient {
            shared: Arc::new(Shared {
                seeds,
                options,
                conns: Mutex::new(HashMap::new()),
                metrics: MetricsRegistry::new(),
            }),
        })
    }

    /// Discover where `dataset` lives and return a routing mount for
    /// it. Fails with the placement's lossless error for unknown names,
    /// or `Io` when no replica is live.
    pub fn open(&self, dataset: &str) -> Result<ClusterMount, StorageError> {
        let (epoch, replicas) = self.shared.where_is_any(dataset)?;
        if replicas.is_empty() {
            return Err(StorageError::Io(format!(
                "dataset '{dataset}': no live replica (map epoch {epoch})"
            )));
        }
        let failovers = self
            .shared
            .metrics
            .counter(&format!("cluster.{dataset}.failovers"));
        let refreshes = self
            .shared
            .metrics
            .counter(&format!("cluster.{dataset}.refreshes"));
        Ok(ClusterMount {
            shared: Arc::clone(&self.shared),
            dataset: dataset.to_string(),
            placement: Mutex::new(Placement { epoch, replicas }),
            cursor: AtomicUsize::new(0),
            failovers,
            refreshes,
        })
    }

    /// Sorted dataset names served by the cluster: the UNION over every
    /// reachable seed. A single node's `ListDatasets` answer is only
    /// its own shard — no node mounts datasets it doesn't own — so one
    /// seed's view understates the catalog whenever the fleet is wider
    /// than the replication factor. Errs only when NO seed is
    /// reachable.
    pub fn list_datasets(&self) -> Result<Vec<String>, StorageError> {
        let mut names = std::collections::BTreeSet::new();
        let mut reachable = false;
        let mut last_err: Option<StorageError> = None;
        for addr in &self.shared.seeds {
            match self
                .shared
                .conn(addr, "")
                .and_then(|conn| conn.list_datasets())
            {
                Ok(shard) => {
                    reachable = true;
                    names.extend(shard);
                }
                Err(e) => last_err = Some(e),
            }
        }
        if reachable {
            return Ok(names.into_iter().collect());
        }
        Err(last_err.unwrap_or_else(|| StorageError::Io("cluster has no reachable seed".into())))
    }

    /// Snapshot of this client's routing instruments — every open
    /// mount's `cluster.<dataset>.failovers` / `.refreshes` counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }
}

/// The placement one mount currently routes by.
struct Placement {
    epoch: u64,
    replicas: Vec<String>,
}

/// One dataset, routed: a [`StorageProvider`] whose backend is
/// whichever live replica answers. Failover and placement refresh are
/// internal; callers see at most the final error.
pub struct ClusterMount {
    shared: Arc<Shared>,
    dataset: String,
    placement: Mutex<Placement>,
    /// Round-robin read cursor across the replica set.
    cursor: AtomicUsize,
    failovers: Counter,
    refreshes: Counter,
}

impl ClusterMount {
    /// The dataset this mount routes for.
    pub fn dataset(&self) -> &str {
        &self.dataset
    }

    /// The placement currently routed by: `(epoch, replica addresses)`.
    pub fn placement(&self) -> (u64, Vec<String>) {
        let p = self.placement.lock();
        (p.epoch, p.replicas.clone())
    }

    /// Requests that moved to another replica after a transport error.
    pub fn failovers(&self) -> u64 {
        self.failovers.get()
    }

    /// Placement refreshes performed (all-replica failure or explicit).
    pub fn refreshes(&self) -> u64 {
        self.refreshes.get()
    }

    /// Re-ask the seeds where the dataset lives; a newer epoch replaces
    /// the cached placement, an older one is ignored.
    pub fn refresh(&self) -> Result<(), StorageError> {
        let (epoch, replicas) = self.shared.where_is_any(&self.dataset)?;
        self.refreshes.inc();
        let mut p = self.placement.lock();
        if epoch >= p.epoch {
            p.epoch = epoch;
            p.replicas = replicas;
        }
        Ok(())
    }

    /// Offload a TQL query to an owning replica (`main` branch),
    /// failing over exactly like a read.
    pub fn query(&self, text: &str, options: &QueryOptions) -> deeplake_tql::Result<QueryResult> {
        self.query_at("main", text, options)
    }

    /// Offload a TQL query against an explicit branch or commit.
    pub fn query_at(
        &self,
        reference: &str,
        text: &str,
        options: &QueryOptions,
    ) -> deeplake_tql::Result<QueryResult> {
        let mut last_err: Option<TqlError> = None;
        for round in 0..=self.shared.options.refresh_rounds {
            if round > 0 && self.refresh().is_err() {
                break;
            }
            let replicas = self.placement.lock().replicas.clone();
            let start = self.cursor.fetch_add(1, Ordering::Relaxed);
            for offset in 0..replicas.len() {
                let addr = &replicas[(start + offset) % replicas.len()];
                let conn = match self.shared.conn(addr, &self.dataset) {
                    Ok(conn) => conn,
                    Err(e) => {
                        self.failovers.inc();
                        last_err = Some(TqlError::Remote(e.to_string()));
                        continue;
                    }
                };
                match conn.query_at(reference, text, options) {
                    Ok(result) => return Ok(result),
                    Err(e) if tql_is_transport(&e) => {
                        self.shared.drop_conn(addr, &self.dataset);
                        self.failovers.inc();
                        last_err = Some(e);
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        Err(last_err.unwrap_or_else(|| {
            TqlError::Remote(format!("dataset '{}': no live replica", self.dataset))
        }))
    }

    /// Read routing: round-robin over the replica set, failover on
    /// transport errors, one placement-refresh round when the whole set
    /// fails, semantic errors immediate.
    fn with_read<T>(
        &self,
        op: &dyn Fn(&RemoteProvider) -> Result<T, StorageError>,
    ) -> Result<T, StorageError> {
        let mut last_err: Option<StorageError> = None;
        for round in 0..=self.shared.options.refresh_rounds {
            if round > 0 && self.refresh().is_err() {
                break;
            }
            let replicas = self.placement.lock().replicas.clone();
            let start = self.cursor.fetch_add(1, Ordering::Relaxed);
            for offset in 0..replicas.len() {
                let addr = &replicas[(start + offset) % replicas.len()];
                let conn = match self.shared.conn(addr, &self.dataset) {
                    Ok(conn) => conn,
                    Err(e) => {
                        self.failovers.inc();
                        last_err = Some(e);
                        continue;
                    }
                };
                match op(&conn) {
                    Ok(value) => return Ok(value),
                    Err(e) if is_transport(&e) => {
                        self.shared.drop_conn(addr, &self.dataset);
                        self.failovers.inc();
                        last_err = Some(e);
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        Err(last_err.unwrap_or_else(|| {
            StorageError::Io(format!("dataset '{}': no live replica", self.dataset))
        }))
    }

    /// Write routing: the operation runs on **every** replica in the
    /// placement; at least one ack is success. Replicas that failed on
    /// transport are removed from this mount's rotation until the next
    /// refresh, so later reads only land where the write did.
    fn with_write(
        &self,
        op: &dyn Fn(&RemoteProvider) -> Result<(), StorageError>,
    ) -> Result<(), StorageError> {
        let mut last_err: Option<StorageError> = None;
        for round in 0..=self.shared.options.refresh_rounds {
            if round > 0 && self.refresh().is_err() {
                break;
            }
            let replicas = self.placement.lock().replicas.clone();
            let mut acked: Vec<String> = Vec::with_capacity(replicas.len());
            for addr in &replicas {
                let outcome = self
                    .shared
                    .conn(addr, &self.dataset)
                    .and_then(|conn| op(&conn));
                match outcome {
                    Ok(()) => acked.push(addr.clone()),
                    Err(e) if is_transport(&e) => {
                        self.shared.drop_conn(addr, &self.dataset);
                        self.failovers.inc();
                        last_err = Some(e);
                    }
                    // deterministic across replicas (same bytes): no
                    // point asking the others
                    Err(e) => return Err(e),
                }
            }
            if !acked.is_empty() {
                if acked.len() < replicas.len() {
                    let mut p = self.placement.lock();
                    p.replicas = acked;
                }
                return Ok(());
            }
        }
        Err(last_err.unwrap_or_else(|| {
            StorageError::Io(format!("dataset '{}': no live replica", self.dataset))
        }))
    }
}

/// Batch calls report transport death as every-slot-failed; detect that
/// so the batch fails over as a unit instead of surfacing N copies of
/// the same dead-node error.
fn batch_transport_error(results: &[Result<Bytes, StorageError>]) -> Option<StorageError> {
    if results.is_empty() {
        return None;
    }
    let mut first: Option<&StorageError> = None;
    for result in results {
        match result {
            Err(e) if is_transport(e) => first = first.or(Some(e)),
            _ => return None,
        }
    }
    first.cloned()
}

impl StorageProvider for ClusterMount {
    fn get(&self, key: &str) -> Result<Bytes, StorageError> {
        self.with_read(&|conn| conn.get(key))
    }

    fn get_range(&self, key: &str, start: u64, end: u64) -> Result<Bytes, StorageError> {
        self.with_read(&|conn| conn.get_range(key, start, end))
    }

    fn put(&self, key: &str, value: Bytes) -> Result<(), StorageError> {
        self.with_write(&|conn| conn.put(key, value.clone()))
    }

    fn delete(&self, key: &str) -> Result<(), StorageError> {
        self.with_write(&|conn| conn.delete(key))
    }

    fn exists(&self, key: &str) -> Result<bool, StorageError> {
        self.with_read(&|conn| conn.exists(key))
    }

    fn len_of(&self, key: &str) -> Result<u64, StorageError> {
        self.with_read(&|conn| conn.len_of(key))
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>, StorageError> {
        self.with_read(&|conn| conn.list(prefix))
    }

    fn describe(&self) -> String {
        let p = self.placement.lock();
        format!(
            "cluster('{}' @ {} replicas, epoch {})",
            self.dataset,
            p.replicas.len(),
            p.epoch
        )
    }

    /// The whole batch stays one frame to one replica; a dead node
    /// fails the batch over as a unit.
    fn get_many(&self, requests: &[ReadRequest]) -> Vec<Result<Bytes, StorageError>> {
        if requests.is_empty() {
            return Vec::new();
        }
        let attempt = self.with_read(&|conn| {
            let results = conn.get_many(requests);
            match batch_transport_error(&results) {
                Some(e) => Err(e),
                None => Ok(results),
            }
        });
        attempt.unwrap_or_else(|e| requests.iter().map(|_| Err(e.clone())).collect())
    }

    fn execute(&self, plan: &ReadPlan) -> ReadResult {
        if plan.requests().is_empty() {
            return ReadResult {
                results: Vec::new(),
                fetches: 0,
            };
        }
        let attempt = self.with_read(&|conn| {
            let result = conn.execute(plan);
            match batch_transport_error(&result.results) {
                Some(e) => Err(e),
                None => Ok(result),
            }
        });
        attempt.unwrap_or_else(|e| ReadResult {
            results: plan.requests().iter().map(|_| Err(e.clone())).collect(),
            fetches: 0,
        })
    }

    fn delete_prefix(&self, prefix: &str) -> Result<(), StorageError> {
        self.with_write(&|conn| conn.delete_prefix(prefix))
    }
}
