//! Client-side placement routing: discover once, route reads to an
//! owning replica, write through to all of them, fail over when a node
//! dies mid-request.
//!
//! A [`ClusterClient`] holds only a *seed list* of node addresses.
//! Opening a dataset asks any reachable seed `WhereIs(name)` and caches
//! the answer — `(epoch, live replica addresses)` — in the returned
//! [`ClusterMount`]. From then on every operation is routed directly to
//! a replica that owns the data; no proxy hop, no per-request metadata
//! lookup. The mount implements [`StorageProvider`], so datasets, TQL
//! offload and loaders run against a cluster *unchanged*.
//!
//! Routing policy, per operation:
//!
//! * **Reads** rotate round-robin over the replica set (spreading load),
//!   and on a *transport* error — connection refused, mid-stream drop,
//!   `Busy` after the remote client's own bounded retries — move to the
//!   next replica. Reads are pure and idempotent, so retrying elsewhere
//!   is always safe. Only when every replica fails does the mount
//!   refresh its placement (the map may have changed under it) and try
//!   one more round; *semantic* errors (`NotFound`, range errors) are
//!   returned immediately — another replica holds the same bytes and
//!   would say the same thing.
//! * **Writes** go to **all** R replicas. At least one ack is required;
//!   replicas that failed are dropped from this mount's read rotation
//!   (read-your-writes: a subsequent read can only land on a replica
//!   that took the write) until the next placement refresh, when the
//!   map's view — and, in a full system, re-replication — takes over.
//! * **Queries** ship TQL text to one owning replica and fail over like
//!   reads; each node's version-pinned result cache makes repeated hot
//!   queries a frame copy.
//!
//! The epoch rides along so stale placements are detected instead of
//! trusted: any refresh answering with a newer epoch replaces the
//! cached one; an older answer (a node that has not heard the news yet)
//! is ignored.

use std::collections::{HashMap, HashSet};
use std::io;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::{Duration, Instant};

use bytes::Bytes;
use deeplake_obs::{Counter, MetricsRegistry, MetricsSnapshot, SpanRecord};
use deeplake_remote::{RemoteOptions, RemoteProvider};
use deeplake_storage::{ReadPlan, ReadRequest, ReadResult, StorageError, StorageProvider};
use deeplake_tql::{QueryOptions, QueryResult, TqlError};
use parking_lot::{Mutex, RwLock};

use crate::map::ClusterMap;

/// Routing-client configuration.
#[derive(Debug, Clone, Copy)]
pub struct ClusterClientOptions {
    /// Per-connection transport options (pool size, injected latency,
    /// `Busy` retry budget) for every replica connection.
    pub remote: RemoteOptions,
    /// Placement-refresh rounds after every replica in the cached
    /// placement failed: each extra round re-asks the seeds `WhereIs`
    /// and retries the whole replica set once. 1 is enough to survive
    /// any single membership change between refreshes.
    pub refresh_rounds: usize,
}

impl Default for ClusterClientOptions {
    fn default() -> Self {
        ClusterClientOptions {
            remote: RemoteOptions::default(),
            refresh_rounds: 1,
        }
    }
}

/// `Io` and `Busy` mean the *node* failed, not the request — another
/// replica can serve it. Everything else is a property of the data and
/// will be identical on every replica.
fn is_transport(e: &StorageError) -> bool {
    matches!(e, StorageError::Io(_) | StorageError::Busy(_))
}

/// The TQL equivalent: [`RemoteProvider::query`] folds transport
/// failures into [`TqlError::Remote`] with messages naming the
/// transport ("remote transport", "remote dial", "busy"); genuine query
/// errors (parse, unknown column) come back verbatim and fail over
/// nowhere.
fn tql_is_transport(e: &TqlError) -> bool {
    match e {
        TqlError::Remote(msg) => {
            msg.contains("remote transport") || msg.contains("remote dial") || msg.contains("busy")
        }
        _ => false,
    }
}

/// Connection cache + seed list shared by every mount of one client.
struct Shared {
    seeds: Vec<String>,
    options: ClusterClientOptions,
    /// `(address, dataset)` → attached connection. The empty dataset is
    /// the un-attached control connection used for `WhereIs`.
    conns: Mutex<HashMap<(String, String), Arc<RemoteProvider>>>,
    /// Client-side instruments: every mount's failover/refresh counters
    /// register here under `cluster.<dataset>.*`, so one snapshot covers
    /// all datasets this client routes to.
    metrics: MetricsRegistry,
    /// The cluster's shared membership map, when attached (the
    /// in-process stand-in for a membership service). The health prober
    /// flips liveness here; `cluster_metrics` scrapes its live set.
    map: Mutex<Option<Arc<RwLock<ClusterMap>>>>,
}

impl Shared {
    /// An attached connection to `addr` (cached; a fresh dial performs
    /// the version handshake and attach replay).
    fn conn(&self, addr: &str, dataset: &str) -> Result<Arc<RemoteProvider>, StorageError> {
        let key = (addr.to_string(), dataset.to_string());
        if let Some(conn) = self.conns.lock().get(&key) {
            return Ok(Arc::clone(conn));
        }
        let provider = RemoteProvider::connect_with(addr, self.options.remote)
            .map_err(|e| StorageError::Io(format!("cluster dial {addr}: {e}")))?;
        if !dataset.is_empty() {
            provider.attach(dataset)?;
        }
        let provider = Arc::new(provider);
        self.conns.lock().insert(key, Arc::clone(&provider));
        Ok(provider)
    }

    /// Forget a connection whose node misbehaved; the next use re-dials.
    fn drop_conn(&self, addr: &str, dataset: &str) {
        self.conns
            .lock()
            .remove(&(addr.to_string(), dataset.to_string()));
    }

    /// Ask the seeds where `dataset` lives; the highest-epoch answer
    /// wins (a seed that has not heard about a death yet answers with a
    /// lower epoch and is outvoted). Transport-dead seeds are skipped;
    /// a semantic answer (`NotFound`) is returned only when no seed
    /// gave a placement.
    fn where_is_any(&self, dataset: &str) -> Result<(u64, Vec<String>), StorageError> {
        let mut best: Option<(u64, Vec<String>)> = None;
        let mut last_err: Option<StorageError> = None;
        for addr in &self.seeds {
            let conn = match self.conn(addr, "") {
                Ok(conn) => conn,
                Err(e) => {
                    last_err = Some(e);
                    continue;
                }
            };
            match conn.where_is(dataset) {
                Ok((epoch, replicas)) => {
                    if best.as_ref().is_none_or(|(e, _)| epoch > *e) {
                        best = Some((epoch, replicas));
                    }
                }
                Err(e) => {
                    if is_transport(&e) {
                        self.drop_conn(addr, "");
                    }
                    last_err = Some(e);
                }
            }
        }
        best.ok_or_else(|| {
            last_err.unwrap_or_else(|| StorageError::Io("cluster has no reachable seed".into()))
        })
    }
}

/// Entry point: connects to a cluster by seed list and opens datasets.
/// With the cluster map attached ([`ClusterClient::attach_map`]) it can
/// also run the fleet's failure detector
/// ([`ClusterClient::start_prober`]) and aggregate every node's metrics
/// ([`ClusterClient::cluster_metrics`]).
pub struct ClusterClient {
    shared: Arc<Shared>,
    /// The background health prober, when running.
    prober: Mutex<Option<ProberHandle>>,
}

/// Stop-flag + join handle of the background prober thread.
struct ProberHandle {
    stop: Arc<(StdMutex<bool>, Condvar)>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ClusterClient {
    /// A client over `seeds` (any subset of the cluster's addresses —
    /// every node answers placement for every dataset). Connections are
    /// dialed lazily.
    pub fn connect(seeds: Vec<String>) -> io::Result<ClusterClient> {
        Self::connect_with(seeds, ClusterClientOptions::default())
    }

    /// A client with explicit options.
    pub fn connect_with(
        seeds: Vec<String>,
        options: ClusterClientOptions,
    ) -> io::Result<ClusterClient> {
        if seeds.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a cluster client needs at least one seed address",
            ));
        }
        Ok(ClusterClient {
            shared: Arc::new(Shared {
                seeds,
                options,
                conns: Mutex::new(HashMap::new()),
                metrics: MetricsRegistry::new(),
                map: Mutex::new(None),
            }),
            prober: Mutex::new(None),
        })
    }

    /// Attach the cluster's shared membership map, enabling
    /// [`start_prober`](ClusterClient::start_prober) and giving
    /// [`cluster_metrics`](ClusterClient::cluster_metrics) the full
    /// node list to scrape. [`crate::Cluster::client`] does this
    /// automatically.
    pub fn attach_map(&self, map: Arc<RwLock<ClusterMap>>) {
        *self.shared.map.lock() = Some(map);
    }

    /// Start the background health prober: every `interval` it sends
    /// `Health` to each registered address (dead ones included, so
    /// recovery is observed too) and flips the attached map's liveness
    /// from what it sees. Only a *transport* failure — after one
    /// drop-and-redial retry to rule out a stale pooled connection —
    /// counts as death; `Busy` push-back and the lossless "unknown
    /// opcode" protocol error from a pre-health hub both mean alive.
    /// Decisions surface in [`metrics`](ClusterClient::metrics) under
    /// `cluster.probe.*`. Returns `false` when no map is attached or a
    /// prober is already running.
    pub fn start_prober(&self, interval: Duration) -> bool {
        let Some(map) = self.shared.map.lock().clone() else {
            return false;
        };
        let mut slot = self.prober.lock();
        if slot.is_some() {
            return false;
        }
        let stop = Arc::new((StdMutex::new(false), Condvar::new()));
        let shared = Arc::clone(&self.shared);
        let thread_stop = Arc::clone(&stop);
        let thread = std::thread::spawn(move || {
            prober_loop(&shared, &map, &thread_stop, interval);
        });
        *slot = Some(ProberHandle {
            stop,
            thread: Some(thread),
        });
        true
    }

    /// Stop the background prober and join its thread. Idempotent;
    /// dropping the client does this too.
    pub fn stop_prober(&self) {
        let handle = self.prober.lock().take();
        if let Some(mut handle) = handle {
            *handle.stop.0.lock().unwrap() = true;
            handle.stop.1.notify_all();
            if let Some(thread) = handle.thread.take() {
                let _ = thread.join();
            }
        }
    }

    /// Scrape every reachable node's metrics snapshot and fold them
    /// into one fleet view: merged counters/histograms/rates per name,
    /// every node's slow queries and flight events on one timeline,
    /// plus the per-node snapshots for breakdowns. Nodes the attached
    /// map knows (or the seed list, when no map is attached) are
    /// scraped; transport-dead ones are skipped. Errs only when no
    /// node answered.
    pub fn cluster_metrics(&self) -> Result<ClusterMetrics, StorageError> {
        let addrs: Vec<String> = match self.shared.map.lock().clone() {
            Some(map) => map.read().live_addrs(),
            None => self.shared.seeds.clone(),
        };
        let mut per_node: Vec<(String, MetricsSnapshot)> = Vec::new();
        let mut merged = MetricsSnapshot::default();
        let mut last_err: Option<StorageError> = None;
        for addr in addrs {
            match self
                .shared
                .conn(&addr, "")
                .and_then(|conn| conn.hub_metrics())
            {
                Ok(snap) => {
                    merged.merge(&snap);
                    per_node.push((addr, snap));
                }
                Err(e) => {
                    if is_transport(&e) {
                        self.shared.drop_conn(&addr, "");
                    }
                    last_err = Some(e);
                }
            }
        }
        if per_node.is_empty() {
            return Err(last_err
                .unwrap_or_else(|| StorageError::Io("cluster has no node to scrape".into())));
        }
        Ok(ClusterMetrics { per_node, merged })
    }

    /// Discover where `dataset` lives and return a routing mount for
    /// it. Fails with the placement's lossless error for unknown names,
    /// or `Io` when no replica is live.
    pub fn open(&self, dataset: &str) -> Result<ClusterMount, StorageError> {
        let (epoch, replicas) = self.shared.where_is_any(dataset)?;
        if replicas.is_empty() {
            return Err(StorageError::Io(format!(
                "dataset '{dataset}': no live replica (map epoch {epoch})"
            )));
        }
        let failovers = self
            .shared
            .metrics
            .counter(&format!("cluster.{dataset}.failovers"));
        let refreshes = self
            .shared
            .metrics
            .counter(&format!("cluster.{dataset}.refreshes"));
        Ok(ClusterMount {
            shared: Arc::clone(&self.shared),
            dataset: dataset.to_string(),
            placement: Mutex::new(Placement { epoch, replicas }),
            cursor: AtomicUsize::new(0),
            failovers,
            refreshes,
        })
    }

    /// Sorted dataset names served by the cluster: the UNION over every
    /// reachable seed. A single node's `ListDatasets` answer is only
    /// its own shard — no node mounts datasets it doesn't own — so one
    /// seed's view understates the catalog whenever the fleet is wider
    /// than the replication factor. Errs only when NO seed is
    /// reachable.
    pub fn list_datasets(&self) -> Result<Vec<String>, StorageError> {
        let mut names = std::collections::BTreeSet::new();
        let mut reachable = false;
        let mut last_err: Option<StorageError> = None;
        for addr in &self.shared.seeds {
            match self
                .shared
                .conn(addr, "")
                .and_then(|conn| conn.list_datasets())
            {
                Ok(shard) => {
                    reachable = true;
                    names.extend(shard);
                }
                Err(e) => last_err = Some(e),
            }
        }
        if reachable {
            return Ok(names.into_iter().collect());
        }
        Err(last_err.unwrap_or_else(|| StorageError::Io("cluster has no reachable seed".into())))
    }

    /// Snapshot of this client's routing instruments — every open
    /// mount's `cluster.<dataset>.failovers` / `.refreshes` counters,
    /// plus the prober's `cluster.probe.*` decisions when it runs.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }
}

impl Drop for ClusterClient {
    fn drop(&mut self) {
        self.stop_prober();
    }
}

/// The prober thread: probe every registered address, flip the map,
/// sleep until the next round or the stop flag.
fn prober_loop(
    shared: &Shared,
    map: &RwLock<ClusterMap>,
    stop: &(StdMutex<bool>, Condvar),
    interval: Duration,
) {
    let probes = shared.metrics.counter("cluster.probe.probes");
    let deaths = shared.metrics.counter("cluster.probe.deaths");
    let revivals = shared.metrics.counter("cluster.probe.revivals");
    loop {
        let addrs: Vec<String> = map.read().nodes().iter().map(|n| n.addr.clone()).collect();
        for addr in addrs {
            if *stop.0.lock().unwrap() {
                return;
            }
            probes.inc();
            let alive = probe_once(shared, &addr);
            let flipped = {
                let mut m = map.write();
                if alive {
                    m.mark_live(&addr)
                } else {
                    m.mark_dead(&addr)
                }
            };
            if flipped {
                if alive {
                    revivals.inc();
                } else {
                    deaths.inc();
                }
            }
        }
        let deadline = Instant::now() + interval;
        let mut flagged = stop.0.lock().unwrap();
        while !*flagged {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, _) = stop.1.wait_timeout(flagged, deadline - now).unwrap();
            flagged = guard;
        }
        if *flagged {
            return;
        }
    }
}

/// One liveness decision for `addr`: `true` when the node answered
/// anything at all — a `Health` report, `Busy` push-back, or a pre-
/// health hub's lossless "unknown opcode" protocol error. A transport
/// failure gets one drop-and-redial retry (the pooled connection may
/// simply be stale); failing both dials is death.
fn probe_once(shared: &Shared, addr: &str) -> bool {
    for _attempt in 0..2 {
        match shared
            .conn(addr, "")
            .and_then(|conn| conn.hub_health().map(|_| ()))
        {
            Ok(()) => return true,
            Err(e) if probe_fatal(&e) => shared.drop_conn(addr, ""),
            Err(_) => return true,
        }
    }
    false
}

/// Whether a probe error means the *node* is gone. Protocol errors are
/// prefixed `remote protocol:` by the remote layer — an old hub
/// rejecting the `Health` opcode is alive; everything else `Io`-shaped
/// on a probe is transport (`remote transport`, `remote dial`,
/// `cluster dial`). `Busy` is a live node pushing back.
fn probe_fatal(e: &StorageError) -> bool {
    match e {
        StorageError::Busy(_) => false,
        StorageError::Io(msg) => !msg.contains("remote protocol"),
        _ => false,
    }
}

/// The fleet view [`ClusterClient::cluster_metrics`] returns: one
/// merged snapshot plus the per-node snapshots it was folded from.
#[derive(Debug, Clone, Default)]
pub struct ClusterMetrics {
    /// `(address, snapshot)` per scraped node, in scrape order.
    pub per_node: Vec<(String, MetricsSnapshot)>,
    /// All per-node snapshots merged per name: counters summed,
    /// histograms bucket-merged, slow queries and flight events
    /// interleaved on one timeline.
    pub merged: MetricsSnapshot,
}

impl ClusterMetrics {
    /// Stitch the cross-node span tree for one trace out of every
    /// node's slow-query entries. Each hub-side entry contributes a
    /// synthetic `hub:<dataset>` span (id = the entry's root span,
    /// parent = the client span that sent the request) plus its stage
    /// spans, so a fan-out trace shows which node spent the time.
    /// Parents precede children in the returned order; spans whose
    /// parent is outside the set (the client's root) come first.
    pub fn span_tree(&self, trace_id: u64) -> Vec<SpanRecord> {
        let mut spans: Vec<SpanRecord> = Vec::new();
        for entry in self
            .merged
            .slow_queries
            .iter()
            .filter(|e| e.trace_id == trace_id)
        {
            spans.push(SpanRecord {
                name: format!("hub:{}", entry.dataset),
                span_id: entry.root_span,
                parent_span: entry.parent_span,
                dur_ns: entry.total_ns,
            });
            spans.extend(entry.spans.iter().cloned());
        }
        let all_ids: HashSet<u64> = spans.iter().map(|s| s.span_id).collect();
        let mut placed: HashSet<u64> = HashSet::new();
        let mut ordered: Vec<SpanRecord> = Vec::with_capacity(spans.len());
        while !spans.is_empty() {
            let before = spans.len();
            let (ready, rest): (Vec<SpanRecord>, Vec<SpanRecord>) =
                spans.into_iter().partition(|s| {
                    !all_ids.contains(&s.parent_span) || placed.contains(&s.parent_span)
                });
            placed.extend(ready.iter().map(|s| s.span_id));
            ordered.extend(ready);
            spans = rest;
            if spans.len() == before {
                // orphaned cycle (ids collided): append rather than spin
                ordered.append(&mut spans);
            }
        }
        ordered
    }
}

/// The placement one mount currently routes by.
struct Placement {
    epoch: u64,
    replicas: Vec<String>,
}

/// One dataset, routed: a [`StorageProvider`] whose backend is
/// whichever live replica answers. Failover and placement refresh are
/// internal; callers see at most the final error.
pub struct ClusterMount {
    shared: Arc<Shared>,
    dataset: String,
    placement: Mutex<Placement>,
    /// Round-robin read cursor across the replica set.
    cursor: AtomicUsize,
    failovers: Counter,
    refreshes: Counter,
}

impl ClusterMount {
    /// The dataset this mount routes for.
    pub fn dataset(&self) -> &str {
        &self.dataset
    }

    /// The placement currently routed by: `(epoch, replica addresses)`.
    pub fn placement(&self) -> (u64, Vec<String>) {
        let p = self.placement.lock();
        (p.epoch, p.replicas.clone())
    }

    /// Requests that moved to another replica after a transport error.
    pub fn failovers(&self) -> u64 {
        self.failovers.get()
    }

    /// Placement refreshes performed (all-replica failure or explicit).
    pub fn refreshes(&self) -> u64 {
        self.refreshes.get()
    }

    /// Re-ask the seeds where the dataset lives; a newer epoch replaces
    /// the cached placement, an older one is ignored.
    pub fn refresh(&self) -> Result<(), StorageError> {
        let (epoch, replicas) = self.shared.where_is_any(&self.dataset)?;
        self.refreshes.inc();
        let mut p = self.placement.lock();
        if epoch >= p.epoch {
            p.epoch = epoch;
            p.replicas = replicas;
        }
        Ok(())
    }

    /// Offload a TQL query to an owning replica (`main` branch),
    /// failing over exactly like a read.
    pub fn query(&self, text: &str, options: &QueryOptions) -> deeplake_tql::Result<QueryResult> {
        self.query_at("main", text, options)
    }

    /// Offload a TQL query against an explicit branch or commit.
    pub fn query_at(
        &self,
        reference: &str,
        text: &str,
        options: &QueryOptions,
    ) -> deeplake_tql::Result<QueryResult> {
        let mut last_err: Option<TqlError> = None;
        for round in 0..=self.shared.options.refresh_rounds {
            if round > 0 && self.refresh().is_err() {
                break;
            }
            let replicas = self.placement.lock().replicas.clone();
            let start = self.cursor.fetch_add(1, Ordering::Relaxed);
            for offset in 0..replicas.len() {
                let addr = &replicas[(start + offset) % replicas.len()];
                let conn = match self.shared.conn(addr, &self.dataset) {
                    Ok(conn) => conn,
                    Err(e) => {
                        self.failovers.inc();
                        last_err = Some(TqlError::Remote(e.to_string()));
                        continue;
                    }
                };
                match conn.query_at(reference, text, options) {
                    Ok(result) => return Ok(result),
                    Err(e) if tql_is_transport(&e) => {
                        self.shared.drop_conn(addr, &self.dataset);
                        self.failovers.inc();
                        last_err = Some(e);
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        Err(last_err.unwrap_or_else(|| {
            TqlError::Remote(format!("dataset '{}': no live replica", self.dataset))
        }))
    }

    /// Read routing: round-robin over the replica set, failover on
    /// transport errors, one placement-refresh round when the whole set
    /// fails, semantic errors immediate.
    fn with_read<T>(
        &self,
        op: &dyn Fn(&RemoteProvider) -> Result<T, StorageError>,
    ) -> Result<T, StorageError> {
        let mut last_err: Option<StorageError> = None;
        for round in 0..=self.shared.options.refresh_rounds {
            if round > 0 && self.refresh().is_err() {
                break;
            }
            let replicas = self.placement.lock().replicas.clone();
            let start = self.cursor.fetch_add(1, Ordering::Relaxed);
            for offset in 0..replicas.len() {
                let addr = &replicas[(start + offset) % replicas.len()];
                let conn = match self.shared.conn(addr, &self.dataset) {
                    Ok(conn) => conn,
                    Err(e) => {
                        self.failovers.inc();
                        last_err = Some(e);
                        continue;
                    }
                };
                match op(&conn) {
                    Ok(value) => return Ok(value),
                    Err(e) if is_transport(&e) => {
                        self.shared.drop_conn(addr, &self.dataset);
                        self.failovers.inc();
                        last_err = Some(e);
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        Err(last_err.unwrap_or_else(|| {
            StorageError::Io(format!("dataset '{}': no live replica", self.dataset))
        }))
    }

    /// Write routing: the operation runs on **every** replica in the
    /// placement; at least one ack is success. Replicas that failed on
    /// transport are removed from this mount's rotation until the next
    /// refresh, so later reads only land where the write did.
    fn with_write(
        &self,
        op: &dyn Fn(&RemoteProvider) -> Result<(), StorageError>,
    ) -> Result<(), StorageError> {
        let mut last_err: Option<StorageError> = None;
        for round in 0..=self.shared.options.refresh_rounds {
            if round > 0 && self.refresh().is_err() {
                break;
            }
            let replicas = self.placement.lock().replicas.clone();
            let mut acked: Vec<String> = Vec::with_capacity(replicas.len());
            for addr in &replicas {
                let outcome = self
                    .shared
                    .conn(addr, &self.dataset)
                    .and_then(|conn| op(&conn));
                match outcome {
                    Ok(()) => acked.push(addr.clone()),
                    Err(e) if is_transport(&e) => {
                        self.shared.drop_conn(addr, &self.dataset);
                        self.failovers.inc();
                        last_err = Some(e);
                    }
                    // deterministic across replicas (same bytes): no
                    // point asking the others
                    Err(e) => return Err(e),
                }
            }
            if !acked.is_empty() {
                if acked.len() < replicas.len() {
                    let mut p = self.placement.lock();
                    p.replicas = acked;
                }
                return Ok(());
            }
        }
        Err(last_err.unwrap_or_else(|| {
            StorageError::Io(format!("dataset '{}': no live replica", self.dataset))
        }))
    }
}

/// Batch calls report transport death as every-slot-failed; detect that
/// so the batch fails over as a unit instead of surfacing N copies of
/// the same dead-node error.
fn batch_transport_error(results: &[Result<Bytes, StorageError>]) -> Option<StorageError> {
    if results.is_empty() {
        return None;
    }
    let mut first: Option<&StorageError> = None;
    for result in results {
        match result {
            Err(e) if is_transport(e) => first = first.or(Some(e)),
            _ => return None,
        }
    }
    first.cloned()
}

impl StorageProvider for ClusterMount {
    fn get(&self, key: &str) -> Result<Bytes, StorageError> {
        self.with_read(&|conn| conn.get(key))
    }

    fn get_range(&self, key: &str, start: u64, end: u64) -> Result<Bytes, StorageError> {
        self.with_read(&|conn| conn.get_range(key, start, end))
    }

    fn put(&self, key: &str, value: Bytes) -> Result<(), StorageError> {
        self.with_write(&|conn| conn.put(key, value.clone()))
    }

    fn delete(&self, key: &str) -> Result<(), StorageError> {
        self.with_write(&|conn| conn.delete(key))
    }

    fn exists(&self, key: &str) -> Result<bool, StorageError> {
        self.with_read(&|conn| conn.exists(key))
    }

    fn len_of(&self, key: &str) -> Result<u64, StorageError> {
        self.with_read(&|conn| conn.len_of(key))
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>, StorageError> {
        self.with_read(&|conn| conn.list(prefix))
    }

    fn describe(&self) -> String {
        let p = self.placement.lock();
        format!(
            "cluster('{}' @ {} replicas, epoch {})",
            self.dataset,
            p.replicas.len(),
            p.epoch
        )
    }

    /// The whole batch stays one frame to one replica; a dead node
    /// fails the batch over as a unit.
    fn get_many(&self, requests: &[ReadRequest]) -> Vec<Result<Bytes, StorageError>> {
        if requests.is_empty() {
            return Vec::new();
        }
        let attempt = self.with_read(&|conn| {
            let results = conn.get_many(requests);
            match batch_transport_error(&results) {
                Some(e) => Err(e),
                None => Ok(results),
            }
        });
        attempt.unwrap_or_else(|e| requests.iter().map(|_| Err(e.clone())).collect())
    }

    fn execute(&self, plan: &ReadPlan) -> ReadResult {
        if plan.requests().is_empty() {
            return ReadResult {
                results: Vec::new(),
                fetches: 0,
            };
        }
        let attempt = self.with_read(&|conn| {
            let result = conn.execute(plan);
            match batch_transport_error(&result.results) {
                Some(e) => Err(e),
                None => Ok(result),
            }
        });
        attempt.unwrap_or_else(|e| ReadResult {
            results: plan.requests().iter().map(|_| Err(e.clone())).collect(),
            fetches: 0,
        })
    }

    fn delete_prefix(&self, prefix: &str) -> Result<(), StorageError> {
        self.with_write(&|conn| conn.delete_prefix(prefix))
    }
}
