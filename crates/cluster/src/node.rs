//! The cluster runtime: N hub nodes behind one shared [`ClusterMap`].
//!
//! [`ClusterBuilder`] spawns each node as a full [`deeplake_hub::Hub`]
//! (its own listener, worker pool, result cache) wired to the shared
//! map through the hub's placement hook — so *every* node answers
//! `WhereIs` for *every* dataset, and a client can bootstrap from any
//! address it knows. Datasets are placed by the map's consistent-hash
//! assignment and mounted only on their owning nodes; each replica gets
//! its own backing store, seeded byte-for-byte from the builder's seed
//! provider so replicas agree on every chunk and commit id.
//!
//! [`Cluster::kill`] models a node failure: the hub is shut down (new
//! dials are refused, in-flight requests drain) and the map marks the
//! address dead — the in-process stand-in for the failure detector a
//! multi-host deployment runs. Clients holding the old placement fail
//! over on their own (see [`crate::client`]); the map update only stops
//! *new* placements from mentioning the corpse.

use std::io;
use std::sync::Arc;

use deeplake_hub::{Hub, HubHandle, HubOptions, PlacementFn};
use deeplake_obs::FlightEvent;
use deeplake_storage::{DynProvider, MemoryProvider, StorageError, StorageProvider};
use parking_lot::RwLock;

use crate::client::{ClusterClient, ClusterClientOptions};
use crate::map::ClusterMap;

/// Makes the backing store for one replica: `(dataset, node addr) →
/// provider`. The default returns a fresh [`MemoryProvider`]; sims
/// substitute latency-modelled stores here.
pub type StoreFactory = Arc<dyn Fn(&str, &str) -> DynProvider + Send + Sync>;

/// Builds a [`Cluster`].
pub struct ClusterBuilder {
    nodes: usize,
    replication: usize,
    options: HubOptions,
    datasets: Vec<(String, Option<DynProvider>)>,
    externals: Vec<String>,
    store_factory: StoreFactory,
}

impl Default for ClusterBuilder {
    fn default() -> Self {
        ClusterBuilder {
            nodes: 1,
            replication: 1,
            options: HubOptions::default(),
            datasets: Vec::new(),
            externals: Vec::new(),
            store_factory: Arc::new(|_, _| Arc::new(MemoryProvider::new())),
        }
    }
}

impl ClusterBuilder {
    /// Number of hub nodes to spawn (each on its own `127.0.0.1` port).
    pub fn nodes(mut self, n: usize) -> Self {
        self.nodes = n.max(1);
        self
    }

    /// Replicas per dataset (clamped to ≥ 1; capped by the node count
    /// naturally — a 2-node cluster holds at most 2 copies).
    pub fn replication(mut self, r: usize) -> Self {
        self.replication = r.max(1);
        self
    }

    /// Tuning for every node's hub (worker pool, queue depth, cache).
    pub fn hub_options(mut self, options: HubOptions) -> Self {
        self.options = options;
        self
    }

    /// Serve `name`, with each replica's store seeded byte-for-byte
    /// from `seed` — replicas must agree on every key (chunks, commit
    /// ids), which independent rebuilds would not guarantee.
    pub fn dataset_from(mut self, name: &str, seed: DynProvider) -> Self {
        self.datasets.push((name.to_string(), Some(seed)));
        self
    }

    /// Serve `name` starting empty (each replica gets a fresh store
    /// from the factory).
    pub fn dataset(mut self, name: &str) -> Self {
        self.datasets.push((name.to_string(), None));
        self
    }

    /// How replica backing stores are made. Sims pass latency-modelled
    /// providers; the default is plain in-memory.
    pub fn store_factory(mut self, factory: StoreFactory) -> Self {
        self.store_factory = factory;
        self
    }

    /// Register an address on the ring that this builder does NOT
    /// spawn — a node managed elsewhere (tests use it to plant a
    /// wrong-protocol-version listener in the replica set). Datasets
    /// assigned to it are not mounted anywhere by this builder.
    pub fn external_node(mut self, addr: &str) -> Self {
        self.externals.push(addr.to_string());
        self
    }

    /// Spawn the nodes, build the shared map, place and seed every
    /// dataset.
    pub fn build(self) -> io::Result<Cluster> {
        // the map starts empty behind its final Arc so each hub's
        // placement hook can capture it before any address is known;
        // placements are computed per call, never cached at bind time
        let map = Arc::new(RwLock::new(ClusterMap::new(Vec::new(), self.replication)));

        let mut nodes = Vec::with_capacity(self.nodes);
        for _ in 0..self.nodes {
            let resolver: PlacementFn = {
                let map = Arc::clone(&map);
                Arc::new(move |dataset: &str| map.read().placement(dataset))
            };
            let hub = Hub::builder()
                .placement(resolver)
                .options(self.options)
                .bind("127.0.0.1:0")?;
            nodes.push(ClusterNode {
                addr: hub.addr().to_string(),
                hub: Some(hub),
                datasets: Vec::new(),
            });
        }

        let mut addrs: Vec<String> = nodes.iter().map(|n| n.addr.clone()).collect();
        addrs.extend(self.externals.iter().cloned());
        *map.write() = ClusterMap::new(addrs, self.replication);

        // register every dataset BEFORE mounting any: bounded-load
        // assignment may shift an earlier dataset's owners when a later
        // one lands on a nearly-full node, and mounts must match the
        // final assignment
        {
            let mut map = map.write();
            for (name, _) in &self.datasets {
                map.add_dataset(name);
            }
        }
        for (name, seed) in &self.datasets {
            let owners: Vec<String> = map
                .read()
                .owners(name)
                .into_iter()
                .map(|n| n.addr.clone())
                .collect();
            for addr in owners {
                let Some(node) = nodes.iter_mut().find(|n| n.addr == addr) else {
                    continue; // an external node: nothing to mount here
                };
                let store = (self.store_factory)(name, &addr);
                if let Some(seed) = seed {
                    copy_all(seed, &store).map_err(|e| {
                        io::Error::other(format!("seeding '{name}' onto {addr}: {e}"))
                    })?;
                }
                node.hub
                    .as_ref()
                    .expect("hub is live during build")
                    .mount(name, Arc::clone(&store))
                    .map_err(|e| io::Error::other(format!("mounting '{name}' on {addr}: {e}")))?;
                node.datasets.push((name.clone(), store));
            }
        }

        // every node's flight recorder subscribes to the map's liveness
        // flips: when the failure detector (the client's health prober,
        // or an explicit kill) declares a node dead, each *surviving*
        // node records the observation in its own event tail
        {
            let mut m = map.write();
            for node in &nodes {
                let recorder = node
                    .hub
                    .as_ref()
                    .expect("hub is live during build")
                    .flight_recorder()
                    .clone();
                m.observe_liveness(Arc::new(move |addr: &str, live: bool| {
                    let kind = if live {
                        FlightEvent::NODE_LIVE
                    } else {
                        FlightEvent::NODE_DEAD
                    };
                    recorder.record(kind, 0, addr);
                }));
            }
        }

        Ok(Cluster { map, nodes })
    }
}

/// Byte-for-byte copy of every key — replica seeding.
fn copy_all(from: &DynProvider, to: &DynProvider) -> Result<(), StorageError> {
    for key in from.list("")? {
        to.put(&key, from.get(&key)?)?;
    }
    Ok(())
}

struct ClusterNode {
    addr: String,
    /// `None` once killed.
    hub: Option<HubHandle>,
    /// Replica stores this node serves: `(dataset, backing store)`.
    datasets: Vec<(String, DynProvider)>,
}

/// A running hub cluster: N nodes, one shared map.
pub struct Cluster {
    map: Arc<RwLock<ClusterMap>>,
    nodes: Vec<ClusterNode>,
}

impl Cluster {
    /// Start building a cluster.
    pub fn builder() -> ClusterBuilder {
        ClusterBuilder::default()
    }

    /// Every node address on the ring (spawned and external, dead or
    /// alive) — what a client uses as its seed list.
    pub fn addrs(&self) -> Vec<String> {
        self.map
            .read()
            .nodes()
            .iter()
            .map(|n| n.addr.clone())
            .collect()
    }

    /// The shared membership map (the in-process stand-in for the
    /// membership service).
    pub fn map(&self) -> Arc<RwLock<ClusterMap>> {
        Arc::clone(&self.map)
    }

    /// Current map epoch.
    pub fn epoch(&self) -> u64 {
        self.map.read().epoch()
    }

    /// A routing client seeded with every node address. The shared map
    /// is attached, so [`ClusterClient::start_prober`] can act as the
    /// cluster's failure detector.
    pub fn client(&self) -> io::Result<ClusterClient> {
        self.client_with(ClusterClientOptions::default())
    }

    /// A routing client with explicit options (map attached, as with
    /// [`Cluster::client`]).
    pub fn client_with(&self, options: ClusterClientOptions) -> io::Result<ClusterClient> {
        let client = ClusterClient::connect_with(self.addrs(), options)?;
        client.attach_map(self.map());
        Ok(client)
    }

    /// Kill node `index`: shut its hub down (dials refused, in-flight
    /// requests drained) and mark it dead in the map — the failure
    /// detector noticing. Returns `false` if already dead.
    pub fn kill(&mut self, index: usize) -> bool {
        let Some(node) = self.nodes.get_mut(index) else {
            return false;
        };
        let Some(hub) = node.hub.take() else {
            return false;
        };
        drop(hub); // shutdown on drop: stops accepting, drains workers
        self.map.write().mark_dead(&node.addr);
        true
    }

    /// Crash node `index`: the hub dies but — unlike [`Cluster::kill`]
    /// — *nobody updates the map*. The address keeps resolving in
    /// placements until a failure detector (the client's health prober)
    /// observes the death. This is the un-observed failure the prober
    /// exists for. Returns `false` if already down.
    pub fn crash(&mut self, index: usize) -> bool {
        let Some(node) = self.nodes.get_mut(index) else {
            return false;
        };
        let Some(hub) = node.hub.take() else {
            return false;
        };
        drop(hub);
        true
    }

    /// The hub handle of a live node (stats, cache introspection).
    pub fn hub(&self, index: usize) -> Option<&HubHandle> {
        self.nodes.get(index).and_then(|n| n.hub.as_ref())
    }

    /// Node `index`'s backing store for `dataset`, if it holds a
    /// replica — lets tests assert on replica contents directly.
    pub fn store(&self, index: usize, dataset: &str) -> Option<DynProvider> {
        self.nodes.get(index).and_then(|n| {
            n.datasets
                .iter()
                .find(|(name, _)| name == dataset)
                .map(|(_, store)| Arc::clone(store))
        })
    }

    /// Indices of the live spawned nodes holding a replica of `dataset`.
    pub fn replica_nodes(&self, dataset: &str) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.hub.is_some() && n.datasets.iter().any(|(name, _)| name == dataset))
            .map(|(index, _)| index)
            .collect()
    }

    /// One line per node: address, liveness, datasets held.
    pub fn describe(&self) -> String {
        let map = self.map.read();
        let mut out = format!(
            "cluster(epoch {}, r={}, {} nodes)\n",
            map.epoch(),
            map.replication(),
            map.nodes().len()
        );
        for node in &self.nodes {
            let held: Vec<&str> = node.datasets.iter().map(|(n, _)| n.as_str()).collect();
            out.push_str(&format!(
                "  {} [{}] {}\n",
                node.addr,
                if node.hub.is_some() { "live" } else { "dead" },
                held.join(", ")
            ));
        }
        out
    }
}
