//! Consistent-hash ring: stable dataset → node assignment.
//!
//! Each node contributes [`VNODES`] virtual points to a 64-bit hash
//! circle; a dataset's replicas are the first R *distinct* nodes at or
//! after the dataset's own hash point, walking clockwise. Two properties
//! the cluster depends on:
//!
//! * **Stability** — a node's points are hashed from its *address*, not
//!   its position in a list, so adding or removing one node moves only
//!   the keys adjacent to its points (≈ 1/N of the space), never
//!   reshuffles everything.
//! * **Spread** — the virtual points interleave nodes around the circle,
//!   so R consecutive distinct owners land on R different machines with
//!   near-uniform load even for small N.
//!
//! The hash is FNV-1a 64 — tiny, dependency-free, and deterministic
//! across platforms, which keeps placement reproducible in tests and
//! identical on every node computing it independently.

/// Virtual points each node contributes to the ring. Per-node share
/// variance shrinks with `1/√VNODES`; 256 keeps a 4-node fleet's hottest
/// node within ~±6% of its fair quarter — the difference between
/// near-linear scaling and a straggler node capping the fleet — while
/// the whole ring is still only `256 × N` u64 pairs to binary-search.
pub const VNODES: usize = 256;

/// FNV-1a 64-bit: the ring's base hash.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Ring position of `bytes`: FNV-1a plus a 64-bit avalanche finalizer
/// (MurmurHash3's fmix64). FNV alone is NOT enough here — its last
/// operation multiplies the final byte's difference by the prime
/// (≈ 2⁴⁰), so keys differing only in a trailing character share their
/// top ~24 bits and land in one narrow arc of the circle, handing one
/// node the whole keyspace. The finalizer spreads every input bit over
/// all 64 output bits.
pub fn position(bytes: &[u8]) -> u64 {
    let mut h = fnv1a(bytes);
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    h
}

/// The ring: sorted `(point, node index)` pairs.
#[derive(Debug, Clone, Default)]
pub struct HashRing {
    points: Vec<(u64, usize)>,
}

impl HashRing {
    /// Build a ring over `node_ids` (typically addresses). Index `i` in
    /// the returned assignments refers to `node_ids[i]`.
    pub fn new<S: AsRef<str>>(node_ids: &[S]) -> HashRing {
        let mut points = Vec::with_capacity(node_ids.len() * VNODES);
        for (index, id) in node_ids.iter().enumerate() {
            for vnode in 0..VNODES {
                let label = format!("{}#{vnode}", id.as_ref());
                points.push((position(label.as_bytes()), index));
            }
        }
        // ties (astronomically unlikely) resolve by node index, keeping
        // the sort — and therefore placement — fully deterministic
        points.sort_unstable();
        HashRing { points }
    }

    /// Number of distinct nodes on the ring.
    pub fn node_count(&self) -> usize {
        self.points
            .iter()
            .map(|&(_, index)| index + 1)
            .max()
            .unwrap_or(0)
    }

    /// The first `replicas` distinct node indices at or after `key`'s
    /// hash point, clockwise. Fewer are returned only when the ring has
    /// fewer distinct nodes than requested.
    pub fn replicas_for(&self, key: &str, replicas: usize) -> Vec<usize> {
        let mut owners = Vec::with_capacity(replicas);
        if self.points.is_empty() || replicas == 0 {
            return owners;
        }
        let point = position(key.as_bytes());
        let start = self
            .points
            .partition_point(|&(p, _)| p < point)
            .checked_rem(self.points.len())
            .unwrap_or(0);
        for offset in 0..self.points.len() {
            let (_, index) = self.points[(start + offset) % self.points.len()];
            if !owners.contains(&index) {
                owners.push(index);
                if owners.len() == replicas {
                    break;
                }
            }
        }
        owners
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("10.0.0.{i}:7700")).collect()
    }

    #[test]
    fn assignment_is_deterministic() {
        let ring = HashRing::new(&addrs(4));
        let again = HashRing::new(&addrs(4));
        for key in ["mnist", "laion", "ffhq", "imagenet"] {
            assert_eq!(ring.replicas_for(key, 2), again.replicas_for(key, 2));
        }
    }

    #[test]
    fn replicas_are_distinct_nodes() {
        let ring = HashRing::new(&addrs(5));
        for i in 0..200 {
            let owners = ring.replicas_for(&format!("ds-{i}"), 3);
            assert_eq!(owners.len(), 3);
            let mut dedup = owners.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), 3, "replica set reused a node: {owners:?}");
        }
    }

    #[test]
    fn more_replicas_than_nodes_returns_all_nodes() {
        let ring = HashRing::new(&addrs(2));
        let owners = ring.replicas_for("mnist", 5);
        assert_eq!(owners.len(), 2);
    }

    #[test]
    fn load_spreads_across_nodes() {
        let ring = HashRing::new(&addrs(4));
        let mut counts = [0usize; 4];
        for i in 0..1000 {
            counts[ring.replicas_for(&format!("ds-{i}"), 1)[0]] += 1;
        }
        for (node, &count) in counts.iter().enumerate() {
            assert!(
                (100..=450).contains(&count),
                "node {node} owns {count}/1000 primaries — ring is badly skewed: {counts:?}"
            );
        }
    }

    #[test]
    fn removing_one_node_moves_only_its_keys() {
        let four = HashRing::new(&addrs(4));
        let ids = addrs(4);
        let three_ids: Vec<String> = ids.iter().take(3).cloned().collect();
        let three = HashRing::new(&three_ids);
        let mut moved = 0;
        let total = 1000;
        for i in 0..total {
            let key = format!("ds-{i}");
            let before = four.replicas_for(&key, 1)[0];
            let after = three.replicas_for(&key, 1)[0];
            if before != 3 && ids[before] != three_ids[after] {
                moved += 1;
            }
        }
        // only keys owned by the removed node should move; allow a
        // small tolerance for vnode boundary effects
        assert!(
            moved <= total / 20,
            "{moved}/{total} keys moved after removing one node of four"
        );
    }

    #[test]
    fn empty_ring_owns_nothing() {
        let ring = HashRing::new::<&str>(&[]);
        assert!(ring.replicas_for("mnist", 2).is_empty());
        assert_eq!(ring.node_count(), 0);
    }
}
