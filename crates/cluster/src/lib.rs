//! # deeplake-cluster
//!
//! The distributed hub cluster: many [`deeplake_hub`] nodes serving one
//! dataset fleet, with consistent-hash sharding, R-way replication, and
//! client-side placement routing — the paper's "heavy traffic from
//! millions of users" lakehouse positioning taken past the single
//! serving process PR 5 ended at.
//!
//! ```text
//!          client                          cluster
//!   ┌──────────────────┐        ┌──────────────────────────────┐
//!   │  ClusterClient   │        │ node A      node B     node C │
//!   │   WhereIs("ds")──┼───────▶│ hub ░░      hub ▓▓     hub ░▓ │
//!   │        │         │  epoch │  │ map◀──────┼─map◀──────┼─map│
//!   │  ClusterMount    │ +addrs │  │           │           │    │
//!   │  reads ──────────┼───────▶│ replica(ds)  │      replica(ds)
//!   │  writes ─────────┼───▶all replicas       │           │    │
//!   │  failover ▲──────┼──Io/Busy──────────────┘           │    │
//!   └──────────────────┘        └──────────────────────────────┘
//! ```
//!
//! Four pieces, smallest first:
//!
//! * [`ring`] — the consistent-hash ring (FNV-1a 64, virtual nodes):
//!   stable dataset → node assignment where membership changes move
//!   only the affected keys.
//! * [`map`] — the epoch-versioned [`ClusterMap`]: membership,
//!   liveness, dataset registry, and the placement rule (assign over
//!   *all* nodes, then filter live — a dead node's traffic lands on
//!   the surviving members of the *same* replica set, which hold the
//!   data).
//! * [`node`] — [`Cluster`]: spawns N full hubs sharing one map (each
//!   answers `WhereIs` for everything), places and byte-identically
//!   seeds each dataset's replicas, and can [`Cluster::kill`] a node to
//!   model failure.
//! * [`client`] — [`ClusterClient`] / [`ClusterMount`]: discover
//!   placement once, round-robin reads over owning replicas,
//!   write-through to all of them with read-your-writes, transparent
//!   failover + placement refresh when nodes die. A mount is a
//!   [`deeplake_storage::StorageProvider`], so everything above storage
//!   runs against a cluster unchanged. The client also carries the
//!   fleet's observability: [`ClusterClient::start_prober`] runs the
//!   health-probe failure detector that flips map liveness without any
//!   manual `kill`, and [`ClusterClient::cluster_metrics`] folds every
//!   node's snapshot into one [`ClusterMetrics`] view (merged
//!   counters, one event timeline, cross-node
//!   [`ClusterMetrics::span_tree`] stitching).
//!
//! ```no_run
//! use std::sync::Arc;
//! use deeplake_cluster::Cluster;
//! use deeplake_storage::{MemoryProvider, StorageProvider};
//!
//! let seed = Arc::new(MemoryProvider::new());
//! seed.put("hello", bytes::Bytes::from_static(b"world")).unwrap();
//! let cluster = Cluster::builder()
//!     .nodes(3)
//!     .replication(2)
//!     .dataset_from("greetings", seed)
//!     .build()
//!     .unwrap();
//! let mount = cluster.client().unwrap().open("greetings").unwrap();
//! assert_eq!(&mount.get("hello").unwrap()[..], b"world");
//! ```

pub mod client;
pub mod map;
pub mod node;
pub mod ring;

pub use client::{ClusterClient, ClusterClientOptions, ClusterMetrics, ClusterMount};
pub use map::{ClusterMap, LivenessObserver, NodeEntry};
pub use node::{Cluster, ClusterBuilder, StoreFactory};
pub use ring::{fnv1a, position, HashRing, VNODES};
