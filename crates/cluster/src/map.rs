//! The epoch-versioned cluster map: which nodes exist, which are live,
//! and which datasets the cluster serves.
//!
//! Every placement decision flows through [`ClusterMap::placement`]:
//! the [`HashRing`] assigns a dataset's R owners over **all** registered
//! nodes — dead ones included — and only then is the live filter
//! applied. This ordering is load-bearing: a dead node's datasets keep
//! resolving to the *surviving members of the same replica set* (which
//! hold the data), rather than being consistently re-hashed onto a live
//! node that has never seen a byte of them. The cluster degrades to
//! fewer replicas honestly; re-replicating onto new owners is a
//! deliberate non-goal of this layer (see README — it needs data
//! movement, not just map arithmetic).
//!
//! Assignment is consistent hashing **with bounded loads**: each node
//! accepts at most `⌈replica slots ÷ nodes⌉` replicas, and a dataset
//! whose ring walk hits a full node keeps walking. Plain consistent
//! hashing balances well only in the many-keys limit; a fleet serves
//! *tens* of datasets, where multinomial spread would happily hand one
//! node half the replicas and cap the whole fleet's throughput at that
//! straggler. The cap makes per-node load provably within one replica
//! of fair while the ring still keeps assignments mostly stable under
//! membership change. Assignments are recomputed only when the dataset
//! set changes, never on liveness flips — a death must not silently
//! reshuffle who owns what.
//!
//! The `epoch` bumps on every membership or dataset change. Placements
//! carry the epoch they were computed at, so a client holding a stale
//! placement can detect it the moment any response advertises a newer
//! epoch, and refresh instead of hammering a dead address.
//!
//! In this reproduction the map is shared between in-process nodes as an
//! `Arc<RwLock<ClusterMap>>` — a stand-in for the gossip/consensus
//! membership service a multi-host deployment would use. The *interface*
//! (epoch + placement queries over the wire) is the part the paper's
//! architecture needs; the transport for membership updates is not.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use deeplake_storage::StorageError;

use crate::ring::HashRing;

/// Callback invoked on every *actual* liveness flip:
/// `(address, now live)`. Wired by the cluster builder to each node's
/// flight recorder, so an observed death (or recovery) shows up in every
/// surviving node's event tail. Called while the map's lock is held —
/// observers must not re-enter the map.
pub type LivenessObserver = Arc<dyn Fn(&str, bool) + Send + Sync>;

/// The observer list, newtyped so [`ClusterMap`] keeps its derived
/// `Debug`/`Clone` (closures have no useful debug form).
#[derive(Clone, Default)]
struct Observers(Vec<LivenessObserver>);

impl std::fmt::Debug for Observers {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Observers({})", self.0.len())
    }
}

/// One cluster member.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeEntry {
    /// The node's serving address (`host:port`), also its ring identity.
    pub addr: String,
    /// Whether the failure detector currently believes the node serves.
    pub live: bool,
}

/// The shared membership + placement state.
#[derive(Debug, Clone)]
pub struct ClusterMap {
    epoch: u64,
    replication: usize,
    nodes: Vec<NodeEntry>,
    datasets: BTreeSet<String>,
    ring: HashRing,
    /// Bounded-load assignment: dataset → node indices, recomputed when
    /// the dataset set changes (NOT on liveness flips).
    assignments: BTreeMap<String, Vec<usize>>,
    /// Liveness-flip subscribers (flight recorders, tests).
    observers: Observers,
}

impl ClusterMap {
    /// A map over `addrs` with `replication` copies of each dataset.
    /// `replication` is clamped to at least 1; it may exceed the node
    /// count (each dataset then lands on every node).
    pub fn new(addrs: Vec<String>, replication: usize) -> ClusterMap {
        let ring = HashRing::new(&addrs);
        ClusterMap {
            epoch: 1,
            replication: replication.max(1),
            nodes: addrs
                .into_iter()
                .map(|addr| NodeEntry { addr, live: true })
                .collect(),
            datasets: BTreeSet::new(),
            ring,
            assignments: BTreeMap::new(),
            observers: Observers::default(),
        }
    }

    /// Subscribe to liveness flips. The callback fires on every
    /// *actual* state change — [`mark_dead`](ClusterMap::mark_dead) on
    /// an already-dead node is silent — with the address and the new
    /// state. It runs under the map's lock: record and return, never
    /// call back into the map.
    pub fn observe_liveness(&mut self, observer: LivenessObserver) {
        self.observers.0.push(observer);
    }

    /// Recompute every dataset's owners with bounded loads: walk each
    /// dataset's ring order (sorted dataset order, so every node
    /// computes the identical answer) and skip nodes already holding
    /// their fair share `⌈slots ÷ nodes⌉`. If a tight cap leaves a
    /// replica unplaced after a full circle, the least-loaded remaining
    /// nodes take the overflow deterministically.
    fn recompute(&mut self) {
        self.assignments.clear();
        let n = self.nodes.len();
        if n == 0 {
            return;
        }
        let r = self.replication.min(n);
        let cap = (r * self.datasets.len()).div_ceil(n);
        let mut load = vec![0usize; n];
        for name in &self.datasets {
            let mut owners: Vec<usize> = Vec::with_capacity(r);
            for index in self.ring.replicas_for(name, n) {
                if owners.len() == r {
                    break;
                }
                if load[index] < cap {
                    owners.push(index);
                    load[index] += 1;
                }
            }
            if owners.len() < r {
                let mut rest: Vec<usize> = (0..n).filter(|i| !owners.contains(i)).collect();
                rest.sort_by_key(|&i| (load[i], i));
                for index in rest.into_iter().take(r - owners.len()) {
                    load[index] += 1;
                    owners.push(index);
                }
            }
            self.assignments.insert(name.clone(), owners);
        }
    }

    /// The map's version. Bumps on every membership or dataset change.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Copies of each dataset the map places.
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// Every registered node, dead ones included.
    pub fn nodes(&self) -> &[NodeEntry] {
        &self.nodes
    }

    /// Addresses the failure detector believes are serving.
    pub fn live_addrs(&self) -> Vec<String> {
        self.nodes
            .iter()
            .filter(|n| n.live)
            .map(|n| n.addr.clone())
            .collect()
    }

    /// Sorted names of every dataset the cluster serves.
    pub fn datasets(&self) -> Vec<String> {
        self.datasets.iter().cloned().collect()
    }

    /// Register a dataset. Returns `false` (and leaves the epoch alone)
    /// if it was already registered.
    pub fn add_dataset(&mut self, name: &str) -> bool {
        let added = self.datasets.insert(name.to_string());
        if added {
            self.epoch += 1;
            self.recompute();
        }
        added
    }

    /// Remove a dataset from the map.
    pub fn remove_dataset(&mut self, name: &str) -> bool {
        let removed = self.datasets.remove(name);
        if removed {
            self.epoch += 1;
            self.recompute();
        }
        removed
    }

    /// Record `addr` as dead. Returns `false` if the address is unknown
    /// or already dead.
    pub fn mark_dead(&mut self, addr: &str) -> bool {
        self.set_live(addr, false)
    }

    /// Record `addr` as serving again.
    pub fn mark_live(&mut self, addr: &str) -> bool {
        self.set_live(addr, true)
    }

    fn set_live(&mut self, addr: &str, live: bool) -> bool {
        match self.nodes.iter_mut().find(|n| n.addr == addr) {
            Some(node) if node.live != live => {
                node.live = live;
                self.epoch += 1;
                for observer in &self.observers.0 {
                    observer(addr, live);
                }
                true
            }
            _ => false,
        }
    }

    /// The dataset's full replica set in bounded-load ring order — dead
    /// owners included. This is the *assignment*;
    /// [`ClusterMap::placement`] is the routable view. Empty for
    /// unregistered datasets.
    pub fn owners(&self, dataset: &str) -> Vec<&NodeEntry> {
        self.assignments
            .get(dataset)
            .map(|owners| owners.iter().map(|&index| &self.nodes[index]).collect())
            .unwrap_or_default()
    }

    /// Where clients should send requests for `dataset`: the live
    /// members of its replica set, in ring order, tagged with the epoch
    /// the answer was computed at. Unknown datasets are a lossless
    /// [`StorageError::NotFound`]; a fully-dead replica set returns an
    /// empty list (the epoch still lets the client cache the bad news
    /// briefly instead of re-asking in a hot loop).
    pub fn placement(&self, dataset: &str) -> Result<(u64, Vec<String>), StorageError> {
        if !self.datasets.contains(dataset) {
            return Err(StorageError::NotFound(format!(
                "dataset '{dataset}' is not served by this cluster"
            )));
        }
        let live = self
            .owners(dataset)
            .into_iter()
            .filter(|n| n.live)
            .map(|n| n.addr.clone())
            .collect();
        Ok((self.epoch, live))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(n: usize, r: usize) -> ClusterMap {
        let addrs = (0..n).map(|i| format!("10.0.0.{i}:7700")).collect();
        let mut m = ClusterMap::new(addrs, r);
        for name in ["mnist", "laion", "ffhq", "places"] {
            m.add_dataset(name);
        }
        m
    }

    #[test]
    fn placement_returns_r_live_owners() {
        let m = map(4, 2);
        let (epoch, replicas) = m.placement("mnist").unwrap();
        assert_eq!(epoch, m.epoch());
        assert_eq!(replicas.len(), 2);
        assert_ne!(replicas[0], replicas[1]);
    }

    #[test]
    fn unknown_dataset_is_not_found() {
        let m = map(3, 2);
        assert!(matches!(
            m.placement("nope"),
            Err(StorageError::NotFound(_))
        ));
    }

    #[test]
    fn dead_owner_is_filtered_but_assignment_is_stable() {
        let mut m = map(4, 2);
        let (_, before) = m.placement("mnist").unwrap();
        let victim = before[0].clone();
        let epoch_before = m.epoch();
        assert!(m.mark_dead(&victim));
        assert!(m.epoch() > epoch_before, "death bumps the epoch");

        let (_, after) = m.placement("mnist").unwrap();
        // the survivor of the original replica set still serves — the
        // dataset is NOT re-hashed onto a node without the data
        assert_eq!(after, vec![before[1].clone()]);

        // revival restores the original assignment
        assert!(m.mark_live(&victim));
        let (_, revived) = m.placement("mnist").unwrap();
        assert_eq!(revived, before);
    }

    #[test]
    fn fully_dead_replica_set_is_empty_not_an_error() {
        let mut m = map(2, 2);
        for addr in m.live_addrs() {
            m.mark_dead(&addr);
        }
        let (_, replicas) = m.placement("mnist").unwrap();
        assert!(replicas.is_empty());
    }

    #[test]
    fn epoch_tracks_every_change() {
        let mut m = map(3, 2);
        let e0 = m.epoch();
        assert!(!m.add_dataset("mnist"), "duplicate add is a no-op");
        assert_eq!(m.epoch(), e0);
        assert!(m.add_dataset("fresh"));
        assert!(m.remove_dataset("fresh"));
        assert!(!m.mark_dead("10.9.9.9:1"), "unknown addr is a no-op");
        assert_eq!(m.epoch(), e0 + 2);
    }

    #[test]
    fn bounded_loads_keep_every_node_within_its_fair_share() {
        let addrs: Vec<String> = (0..4).map(|i| format!("10.0.0.{i}:7700")).collect();
        let mut m = ClusterMap::new(addrs.clone(), 2);
        for d in 0..16 {
            m.add_dataset(&format!("ds{d}"));
        }
        let mut load = vec![0usize; 4];
        for d in 0..16 {
            for owner in m.owners(&format!("ds{d}")) {
                load[addrs.iter().position(|a| *a == owner.addr).unwrap()] += 1;
            }
        }
        // 32 replica slots over 4 nodes: fair share is 8; the replica-
        // distinctness overflow can push a single node one past the cap
        // (the "within one replica of fair" guarantee), never further
        assert_eq!(load.iter().sum::<usize>(), 32);
        assert!(
            load.iter().all(|&l| l <= 9),
            "a node exceeded fair share + 1: {load:?}"
        );
    }

    #[test]
    fn observers_fire_only_on_actual_flips() {
        use std::sync::Mutex;
        let mut m = map(3, 2);
        let seen: Arc<Mutex<Vec<(String, bool)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        m.observe_liveness(Arc::new(move |addr, live| {
            sink.lock().unwrap().push((addr.to_string(), live));
        }));
        let victim = m.live_addrs()[0].clone();
        assert!(m.mark_dead(&victim));
        assert!(!m.mark_dead(&victim), "second death is a no-op");
        assert!(!m.mark_dead("10.9.9.9:1"), "unknown addr is a no-op");
        assert!(m.mark_live(&victim));
        assert_eq!(
            *seen.lock().unwrap(),
            vec![(victim.clone(), false), (victim, true)],
            "one event per actual flip, none for no-ops"
        );
    }

    #[test]
    fn replication_clamps_to_node_count_naturally() {
        let m = map(2, 5);
        let (_, replicas) = m.placement("mnist").unwrap();
        assert_eq!(replicas.len(), 2, "only 2 nodes exist");
    }
}
