//! End-to-end observability over real loopback TCP: client-generated
//! trace ids showing up in the hub's slow-query span tree, the live
//! `Metrics` opcode, and backwards compatibility with clients that
//! predate the trace envelope (untagged frames).

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use deeplake_core::dataset::TensorOptions;
use deeplake_core::Dataset;
use deeplake_hub::{Hub, HubHandle, HubOptions};
use deeplake_remote::proto::{self, Request};
use deeplake_remote::RemoteProvider;
use deeplake_storage::{DynProvider, MemoryProvider, StorageProvider};
use deeplake_tensor::{Htype, Sample};
use deeplake_tql::QueryOptions;

/// A hub mounting one small dataset, with the slow-query threshold at
/// zero so every query lands in the ring.
fn query_hub() -> HubHandle {
    let storage: DynProvider = Arc::new(MemoryProvider::new());
    let mut ds = Dataset::create(storage.clone(), "obsds").unwrap();
    ds.create_tensor_opts("labels", {
        let mut o = TensorOptions::new(Htype::ClassLabel);
        o.chunk_target_bytes = Some(256);
        o
    })
    .unwrap();
    for i in 0..500u64 {
        ds.append_row(vec![("labels", Sample::scalar((i / 100) as i32))])
            .unwrap();
    }
    ds.flush().unwrap();
    Hub::builder()
        .mount("obsds", storage)
        .options(HubOptions {
            slow_query_threshold: Duration::ZERO,
            ..HubOptions::default()
        })
        .bind("127.0.0.1:0")
        .unwrap()
}

/// The acceptance-criteria scenario: one query through a real client
/// produces a connected span tree on the hub, retrievable over the wire
/// via the `Metrics` opcode, whose root is parented to the client-side
/// span that sent the request.
#[test]
fn client_trace_connects_to_hub_span_tree() {
    let hub = query_hub();
    let client = RemoteProvider::connect(hub.addr()).unwrap();
    client.attach("obsds").unwrap();

    let rows = client
        .query(
            "SELECT labels FROM obsds WHERE labels = 3",
            &QueryOptions::default(),
        )
        .unwrap();
    assert_eq!(rows.len(), 100);
    // capture BEFORE hub_metrics(): that call is itself a traced round
    // trip and advances the client's last-trace record
    let (trace_id, client_span) = client.last_trace();
    assert_ne!(trace_id, 0, "client must have generated a trace id");

    let snap = client.hub_metrics().unwrap();
    let entry = snap
        .slow_queries
        .iter()
        .find(|e| e.trace_id == trace_id)
        .expect("the traced query must be in the slow-query log");

    // the hub-side tree hangs off the client's send span
    assert_eq!(entry.parent_span, client_span);
    assert_eq!(entry.dataset, "obsds");
    assert!(
        entry.text.contains("SELECT"),
        "canonical text: {}",
        entry.text
    );

    let span = |name: &str| {
        entry
            .spans
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("span {name} missing"))
    };
    // connected: every stage hangs off the request root, storage hangs
    // off the execute stage that issued the round trips
    assert_eq!(span("queue_wait").parent_span, entry.root_span);
    assert_eq!(span("cache_lookup").parent_span, entry.root_span);
    assert_eq!(span("execute").parent_span, entry.root_span);
    assert_eq!(span("storage").parent_span, span("execute").span_id);
    // and the interesting stages actually measured something
    assert!(span("queue_wait").dur_ns > 0, "queue wait must be non-zero");
    assert!(span("execute").dur_ns > 0, "execute must be non-zero");
    assert!(span("storage").dur_ns > 0, "storage RT must be non-zero");
    assert!(entry.total_ns >= span("execute").dur_ns);

    // the same stages feed the hub-wide histograms
    for stage in ["hub.queue_wait_ns", "hub.execute_ns", "hub.storage_ns"] {
        assert!(
            snap.histogram(stage).is_some_and(|h| !h.is_empty()),
            "{stage} must be populated"
        );
    }

    // the client kept its own ledger of the exchange
    let mine = client.metrics();
    assert!(mine
        .histogram("client.round_trip_ns")
        .is_some_and(|h| h.count >= 2)); // query + metrics fetch
    assert!(mine.counter("client.wire.round_trips").unwrap_or(0) >= 2);
}

/// A client that has never heard of the trace envelope — raw untagged
/// frames exactly as PROTO_VERSION 2 clients sent before this PR — is
/// still served byte-for-byte.
#[test]
fn legacy_untagged_frames_are_still_served() {
    let storage = Arc::new(MemoryProvider::new());
    storage
        .put("k", Bytes::from_static(b"legacy value"))
        .unwrap();
    let hub = Hub::builder()
        .default_mount(storage)
        .bind("127.0.0.1:0")
        .unwrap();

    let mut stream = TcpStream::connect(hub.addr()).unwrap();
    let hello = proto::encode_request(&Request::Hello {
        version: proto::PROTO_VERSION,
    });
    proto::write_frame(&mut stream, &hello).unwrap();
    stream.flush().unwrap();
    let resp = proto::read_frame(&mut stream).unwrap().expect("open");
    proto::expect_hello(&resp).unwrap();

    // no Traced wrapper — the bare Get opcode
    let get = proto::encode_request(&Request::Get { key: "k".into() });
    proto::write_frame(&mut stream, &get).unwrap();
    stream.flush().unwrap();
    let resp = proto::read_frame(&mut stream).unwrap().expect("served");
    assert_eq!(
        proto::expect_bytes(&resp).unwrap(),
        Bytes::from_static(b"legacy value")
    );

    // the hub metered the legacy request like any other
    let snap = hub.metrics();
    assert!(snap.counter("hub.requests").unwrap_or(0) >= 1);
    assert!(snap
        .histogram("hub.queue_wait_ns")
        .is_some_and(|h| !h.is_empty()));
}

/// The `Metrics` opcode smoke: after ordinary storage traffic the
/// snapshot has non-zero counters and populated histograms, and an
/// untraced-legacy hub keeps an empty slow log (nothing crossed the
/// default 250 ms threshold on loopback).
#[test]
fn metrics_opcode_reports_live_instruments() {
    let storage = Arc::new(MemoryProvider::new());
    let hub = Hub::builder()
        .default_mount(storage)
        .bind("127.0.0.1:0")
        .unwrap();
    let client = RemoteProvider::connect(hub.addr()).unwrap();

    client.put("a", Bytes::from_static(b"1")).unwrap();
    client.put("b", Bytes::from_static(b"2")).unwrap();
    assert_eq!(client.get("a").unwrap(), Bytes::from_static(b"1"));

    let snap = client.hub_metrics().unwrap();
    assert!(snap.counter("hub.requests").unwrap_or(0) >= 3);
    assert!(snap.counter("hub.wire.round_trips").unwrap_or(0) >= 3);
    assert!(snap
        .histogram("hub.queue_wait_ns")
        .is_some_and(|h| !h.is_empty()));
    assert!(snap
        .histogram("hub.flush_ns")
        .is_some_and(|h| !h.is_empty()));
    assert!(snap.slow_queries.is_empty(), "no TQL ran, no slow queries");
}
