//! End-to-end observability over real loopback TCP: client-generated
//! trace ids showing up in the hub's slow-query span tree, the live
//! `Metrics` opcode, and backwards compatibility with clients that
//! predate the trace envelope (untagged frames).

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use deeplake_core::dataset::TensorOptions;
use deeplake_core::Dataset;
use deeplake_hub::{Hub, HubHandle, HubOptions};
use deeplake_remote::proto::{self, Request};
use deeplake_remote::RemoteProvider;
use deeplake_storage::{DynProvider, MemoryProvider, StorageProvider};
use deeplake_tensor::{Htype, Sample};
use deeplake_tql::QueryOptions;

/// A hub mounting one small dataset, with the slow-query threshold at
/// zero so every query lands in the ring.
fn query_hub() -> HubHandle {
    let storage: DynProvider = Arc::new(MemoryProvider::new());
    let mut ds = Dataset::create(storage.clone(), "obsds").unwrap();
    ds.create_tensor_opts("labels", {
        let mut o = TensorOptions::new(Htype::ClassLabel);
        o.chunk_target_bytes = Some(256);
        o
    })
    .unwrap();
    for i in 0..500u64 {
        ds.append_row(vec![("labels", Sample::scalar((i / 100) as i32))])
            .unwrap();
    }
    ds.flush().unwrap();
    Hub::builder()
        .mount("obsds", storage)
        .options(HubOptions {
            slow_query_threshold: Duration::ZERO,
            ..HubOptions::default()
        })
        .bind("127.0.0.1:0")
        .unwrap()
}

/// The acceptance-criteria scenario: one query through a real client
/// produces a connected span tree on the hub, retrievable over the wire
/// via the `Metrics` opcode, whose root is parented to the client-side
/// span that sent the request.
#[test]
fn client_trace_connects_to_hub_span_tree() {
    let hub = query_hub();
    let client = RemoteProvider::connect(hub.addr()).unwrap();
    // the handshake probe saw a tracing-capable hub
    assert!(client.tracing_enabled());
    client.attach("obsds").unwrap();

    let rows = client
        .query(
            "SELECT labels FROM obsds WHERE labels = 3",
            &QueryOptions::default(),
        )
        .unwrap();
    assert_eq!(rows.len(), 100);
    // capture BEFORE hub_metrics(): that call is itself a traced round
    // trip and advances the client's last-trace record
    let (trace_id, client_span) = client.last_trace();
    assert_ne!(trace_id, 0, "client must have generated a trace id");

    let snap = client.hub_metrics().unwrap();
    let entry = snap
        .slow_queries
        .iter()
        .find(|e| e.trace_id == trace_id)
        .expect("the traced query must be in the slow-query log");

    // the hub-side tree hangs off the client's send span
    assert_eq!(entry.parent_span, client_span);
    assert_eq!(entry.dataset, "obsds");
    assert!(
        entry.text.contains("SELECT"),
        "canonical text: {}",
        entry.text
    );

    let span = |name: &str| {
        entry
            .spans
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("span {name} missing"))
    };
    // connected: every stage hangs off the request root, storage hangs
    // off the execute stage that issued the round trips
    assert_eq!(span("queue_wait").parent_span, entry.root_span);
    assert_eq!(span("cache_lookup").parent_span, entry.root_span);
    assert_eq!(span("execute").parent_span, entry.root_span);
    assert_eq!(span("storage").parent_span, span("execute").span_id);
    // and the interesting stages actually measured something
    assert!(span("queue_wait").dur_ns > 0, "queue wait must be non-zero");
    assert!(span("execute").dur_ns > 0, "execute must be non-zero");
    assert!(span("storage").dur_ns > 0, "storage RT must be non-zero");
    assert!(entry.total_ns >= span("execute").dur_ns);

    // the same stages feed the hub-wide histograms
    for stage in ["hub.queue_wait_ns", "hub.execute_ns", "hub.storage_ns"] {
        assert!(
            snap.histogram(stage).is_some_and(|h| !h.is_empty()),
            "{stage} must be populated"
        );
    }

    // the client kept its own ledger of the exchange
    let mine = client.metrics();
    assert!(mine
        .histogram("client.round_trip_ns")
        .is_some_and(|h| h.count >= 2)); // query + metrics fetch
    assert!(mine.counter("client.wire.round_trips").unwrap_or(0) >= 2);
}

/// A client that has never heard of the trace envelope — raw untagged
/// frames exactly as PROTO_VERSION 2 clients sent before this PR — is
/// still served byte-for-byte.
#[test]
fn legacy_untagged_frames_are_still_served() {
    let storage = Arc::new(MemoryProvider::new());
    storage
        .put("k", Bytes::from_static(b"legacy value"))
        .unwrap();
    let hub = Hub::builder()
        .default_mount(storage)
        .bind("127.0.0.1:0")
        .unwrap();

    let mut stream = TcpStream::connect(hub.addr()).unwrap();
    let hello = proto::encode_request(&Request::Hello {
        version: proto::PROTO_VERSION,
    });
    proto::write_frame(&mut stream, &hello).unwrap();
    stream.flush().unwrap();
    let resp = proto::read_frame(&mut stream).unwrap().expect("open");
    proto::expect_hello(&resp).unwrap();

    // no Traced wrapper — the bare Get opcode
    let get = proto::encode_request(&Request::Get { key: "k".into() });
    proto::write_frame(&mut stream, &get).unwrap();
    stream.flush().unwrap();
    let resp = proto::read_frame(&mut stream).unwrap().expect("served");
    assert_eq!(
        proto::expect_bytes(&resp).unwrap(),
        Bytes::from_static(b"legacy value")
    );

    // the hub metered the legacy request like any other
    let snap = hub.metrics();
    assert!(snap.counter("hub.requests").unwrap_or(0) >= 1);
    assert!(snap
        .histogram("hub.queue_wait_ns")
        .is_some_and(|h| !h.is_empty()));
}

/// The other upgrade direction: an upgraded client dialing a server
/// that predates the trace envelope. PROTO_VERSION did not change, so
/// the Hello exchange cannot reveal the missing extension — the
/// client's handshake probe (one traced Ping, answered here with the
/// "unknown opcode" protocol error an old decoder produces) must flip
/// it to untagged frames instead of every exchange failing.
#[test]
fn upgraded_client_falls_back_against_pre_tracing_server() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        // the client pool dials exactly one socket in this test
        let (mut stream, _) = listener.accept().unwrap();
        let mut pipelined = false;
        loop {
            let Ok(Some(frame)) = proto::read_frame(&mut stream) else {
                return;
            };
            let body = if pipelined {
                match proto::split_tagged(&frame) {
                    Some((_, body)) => body.to_vec(),
                    None => return,
                }
            } else {
                frame.clone()
            };
            let req = proto::decode_request(&body);
            let resp = match &req {
                // a pre-tracing decoder has no OP_TRACED branch: any
                // traced frame — the probe, or a wrapped data op if the
                // fallback failed to disarm — dies losslessly here
                Ok(Request::Traced { .. }) => proto::resp_proto_err("unknown opcode 20"),
                Ok(Request::Hello { version }) => proto::hello_response(*version),
                Ok(Request::Pipeline) | Ok(Request::Ping) => proto::resp_unit(),
                Ok(Request::Get { .. }) => proto::resp_bytes(b"old server value"),
                _ => proto::resp_proto_err("unexpected request"),
            };
            let out = match (pipelined, proto::split_tagged(&frame)) {
                (true, Some((id, _))) => proto::tag_request(id, &resp),
                _ => resp,
            };
            if proto::write_frame(&mut stream, &out).is_err() {
                return;
            }
            if matches!(req, Ok(Request::Pipeline)) {
                pipelined = true;
            }
        }
    });

    let client = RemoteProvider::connect(addr).unwrap();
    assert!(
        !client.tracing_enabled(),
        "probe must detect the pre-tracing server"
    );
    // data ops go out untagged: the old decoder serves them unchanged
    assert_eq!(
        client.get("k").unwrap(),
        Bytes::from_static(b"old server value")
    );
    // no trace context was fabricated for untraced exchanges
    assert_eq!(client.last_trace(), (0, 0));
    drop(client);
    server.join().unwrap();
}

/// Cache hits cost zero (or one memoized-head) storage round trips;
/// their near-zero samples must not land in `hub.storage_ns`, or a
/// hot-cache workload drags the histogram's percentiles far below the
/// real storage latency of the cache-miss queries it exists to size.
#[test]
fn storage_histogram_records_only_cache_misses() {
    let hub = query_hub();
    let client = RemoteProvider::connect(hub.addr()).unwrap();
    client.attach("obsds").unwrap();
    let q = "SELECT labels FROM obsds WHERE labels = 1";

    client.query(q, &QueryOptions::default()).unwrap();
    let misses = hub
        .metrics()
        .histogram("hub.storage_ns")
        .expect("storage histogram")
        .count;
    assert!(misses >= 1, "the cold query is a miss");

    for _ in 0..5 {
        client.query(q, &QueryOptions::default()).unwrap();
    }
    let snap = hub.metrics();
    assert!(
        snap.counter("hub.cache.cache_hits").unwrap_or(0) >= 5,
        "repeats must be served from the result cache"
    );
    assert_eq!(
        snap.histogram("hub.storage_ns").unwrap().count,
        misses,
        "cache hits must not add storage samples"
    );
}

/// The `Metrics` opcode smoke: after ordinary storage traffic the
/// snapshot has non-zero counters and populated histograms, and an
/// untraced-legacy hub keeps an empty slow log (nothing crossed the
/// default 250 ms threshold on loopback).
#[test]
fn metrics_opcode_reports_live_instruments() {
    let storage = Arc::new(MemoryProvider::new());
    let hub = Hub::builder()
        .default_mount(storage)
        .bind("127.0.0.1:0")
        .unwrap();
    let client = RemoteProvider::connect(hub.addr()).unwrap();

    client.put("a", Bytes::from_static(b"1")).unwrap();
    client.put("b", Bytes::from_static(b"2")).unwrap();
    assert_eq!(client.get("a").unwrap(), Bytes::from_static(b"1"));

    let snap = client.hub_metrics().unwrap();
    assert!(snap.counter("hub.requests").unwrap_or(0) >= 3);
    assert!(snap.counter("hub.wire.round_trips").unwrap_or(0) >= 3);
    assert!(snap
        .histogram("hub.queue_wait_ns")
        .is_some_and(|h| !h.is_empty()));
    assert!(snap
        .histogram("hub.flush_ns")
        .is_some_and(|h| !h.is_empty()));
    assert!(snap.slow_queries.is_empty(), "no TQL ran, no slow queries");
}

/// The `Health` opcode end to end: hub state (uptime, queue capacity,
/// mounts, capabilities) plus the flight-recorder tail, which must
/// already contain this very connection's accept event.
#[test]
fn health_opcode_reports_hub_state_and_flight_events() {
    let hub = query_hub();
    let client = RemoteProvider::connect(hub.addr()).unwrap();
    client.attach("obsds").unwrap();
    client.put("warm", Bytes::from_static(b"up")).unwrap();

    let report = client.hub_health().unwrap();
    assert_eq!(report.queue_cap, HubOptions::default().queue_depth as u64);
    assert_eq!(report.datasets, vec!["obsds".to_string()]);
    assert_eq!(report.proto_version, proto::PROTO_VERSION);
    assert!(report.tracing, "this hub understands the trace envelope");
    assert!(
        report
            .events
            .iter()
            .any(|e| e.kind == deeplake_obs::FlightEvent::CONN_ACCEPT),
        "the probe's own accept must be on the recorder: {:?}",
        report.events
    );
    // Health is answered inline on the event loop — in_flight counts
    // only data-path jobs, and none are running now
    assert_eq!(report.in_flight, 0);

    // the same state is visible locally, without a connection
    let local = hub.health();
    assert_eq!(local.queue_cap, report.queue_cap);
    assert_eq!(local.datasets, report.datasets);
    assert!(local.uptime_ms >= report.uptime_ms);
}

/// Windowed instruments surface in the snapshot next to their
/// monotonic shadows: `hub.queries_rate` beside `hub.queries`, and the
/// rolling latency histogram under the `.w1`/`.w10`/`.w60` names.
#[test]
fn windowed_rates_ride_along_in_the_snapshot() {
    let hub = query_hub();
    let client = RemoteProvider::connect(hub.addr()).unwrap();
    client.attach("obsds").unwrap();
    for _ in 0..4 {
        client
            .query(
                "SELECT labels FROM obsds WHERE labels = 2",
                &QueryOptions::default(),
            )
            .unwrap();
    }
    let snap = client.hub_metrics().unwrap();
    let rate = snap
        .rate("hub.queries_rate")
        .expect("the query rate window must be registered");
    // all 4 queries ran just now: every window (1 s may have rolled on
    // a slow machine, so check the 60 s one) holds them
    assert!(rate.counts[2] >= 4, "60s window: {:?}", rate.counts);
    assert!(snap.rate("hub.bytes_out_rate").is_some());
    assert!(snap.rate("hub.errors_rate").is_some());
    // rates are NOT counters: window totals go down again, which would
    // break the counters section's monotonicity contract
    assert!(snap.counter("hub.queries_rate").is_none());
    let w60 = snap
        .histogram("hub.query_ns.w60")
        .expect("windowed latency snapshot");
    assert!(w60.count >= 4);
    assert!(w60.quantile(0.99) > 0, "recent p99 must be a real latency");
}

/// Satellite: scraping `Metrics` and `Health` concurrently with live
/// traffic must never tear — every counter and histogram total in a
/// later snapshot is >= the same name's total in an earlier one.
#[test]
fn concurrent_scrapes_stay_monotonic_under_load() {
    use std::sync::atomic::{AtomicBool, Ordering};

    let hub = query_hub();
    let addr = hub.addr();
    let stop = Arc::new(AtomicBool::new(false));
    let mut load = Vec::new();
    for worker in 0..3 {
        let stop = Arc::clone(&stop);
        load.push(std::thread::spawn(move || {
            let client = RemoteProvider::connect(addr).unwrap();
            client.attach("obsds").unwrap();
            while !stop.load(Ordering::Relaxed) {
                let label = worker % 5;
                client
                    .query(
                        &format!("SELECT labels FROM obsds WHERE labels = {label}"),
                        &QueryOptions::default(),
                    )
                    .unwrap();
            }
        }));
    }

    let scraper = RemoteProvider::connect(addr).unwrap();
    let mut last = scraper.hub_metrics().unwrap();
    for _ in 0..20 {
        let _ = scraper.hub_health().unwrap();
        let next = scraper.hub_metrics().unwrap();
        for (name, value) in &last.counters {
            assert!(
                next.counter(name).unwrap_or(0) >= *value,
                "counter {name} went backwards under load"
            );
        }
        for (name, hist) in &last.histograms {
            // windowed (`.w*`) entries roll off by design; lifetime
            // histograms only grow
            if name.contains(".w") {
                continue;
            }
            let later = next.histogram(name).expect("histograms never vanish");
            assert!(
                later.count >= hist.count && later.sum >= hist.sum,
                "histogram {name} went backwards under load"
            );
        }
        last = next;
    }
    stop.store(true, Ordering::Relaxed);
    for handle in load {
        handle.join().unwrap();
    }
    assert!(last.counter("hub.queries").unwrap_or(0) >= 20);
}
