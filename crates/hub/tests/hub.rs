//! End-to-end hub tests: a real TCP hub on 127.0.0.1, real
//! `RemoteProvider` clients attaching to named datasets.

use std::sync::Arc;

use bytes::Bytes;
use deeplake_core::dataset::TensorOptions;
use deeplake_core::Dataset;
use deeplake_hub::{Hub, HubHandle, HubOptions};
use deeplake_remote::{proto, RemoteProvider};
use deeplake_storage::{
    contract, DynProvider, MemoryProvider, NetworkProfile, SimulatedCloudProvider, StorageError,
    StorageProvider,
};
use deeplake_tensor::{Htype, Sample};
use deeplake_tql::QueryOptions;

fn two_dataset_hub() -> (HubHandle, DynProvider, DynProvider) {
    let a: DynProvider = Arc::new(MemoryProvider::new());
    let b: DynProvider = Arc::new(MemoryProvider::new());
    let hub = Hub::builder()
        .mount("alpha", a.clone())
        .mount("beta", b.clone())
        .bind("127.0.0.1:0")
        .unwrap();
    (hub, a, b)
}

fn labelled_dataset(provider: DynProvider, name: &str, rows: u64, offset: i32) {
    let mut ds = Dataset::create(provider, name).unwrap();
    ds.create_tensor_opts("labels", {
        let mut o = TensorOptions::new(Htype::ClassLabel);
        o.chunk_target_bytes = Some(256);
        o
    })
    .unwrap();
    for i in 0..rows {
        ds.append_row(vec![("labels", Sample::scalar(offset + i as i32))])
            .unwrap();
    }
    ds.flush().unwrap();
}

/// The full provider-contract suite — identical to what the five local
/// providers and the PR-4 single-dataset server pass — against a dataset
/// reached through `attach(name)` on a multi-dataset hub.
#[test]
fn attached_mount_passes_full_contract() {
    let (hub, _, _) = two_dataset_hub();
    let client = RemoteProvider::connect(hub.addr()).unwrap();
    client.attach("alpha").unwrap();
    contract::check_provider_contract("hub(alpha)", &client);
}

/// Writes to dataset A are never visible under dataset B's namespace,
/// even from two clients on one hub talking concurrently.
#[test]
fn two_clients_two_datasets_are_isolated() {
    let (hub, a, b) = two_dataset_hub();
    let ca = RemoteProvider::connect(hub.addr()).unwrap();
    ca.attach("alpha").unwrap();
    let cb = RemoteProvider::connect(hub.addr()).unwrap();
    cb.attach("beta").unwrap();

    std::thread::scope(|scope| {
        let ca = &ca;
        let cb = &cb;
        scope.spawn(move || {
            for i in 0..50 {
                ca.put(&format!("k{i}"), Bytes::from(vec![b'a'; 16]))
                    .unwrap();
            }
        });
        scope.spawn(move || {
            for i in 0..50 {
                cb.put(&format!("k{i}"), Bytes::from(vec![b'b'; 16]))
                    .unwrap();
            }
        });
    });
    // each client sees exactly its own writes...
    assert_eq!(ca.get("k0").unwrap(), Bytes::from(vec![b'a'; 16]));
    assert_eq!(cb.get("k0").unwrap(), Bytes::from(vec![b'b'; 16]));
    assert_eq!(ca.list("").unwrap().len(), 50);
    // ...and the mounted providers agree (no cross-namespace leakage)
    assert_eq!(a.get("k0").unwrap(), Bytes::from(vec![b'a'; 16]));
    assert_eq!(b.get("k0").unwrap(), Bytes::from(vec![b'b'; 16]));
    // a key only A has is NotFound under B, naming the requested key
    ca.put("only/a", Bytes::from_static(b"x")).unwrap();
    assert_eq!(
        cb.get("only/a").unwrap_err(),
        StorageError::NotFound("only/a".into())
    );
}

/// Attach to an unknown dataset fails with a typed NotFound; the
/// connection stays usable and can attach elsewhere.
#[test]
fn attach_unknown_dataset_errors() {
    let (hub, _, _) = two_dataset_hub();
    let client = RemoteProvider::connect(hub.addr()).unwrap();
    match client.attach("gamma") {
        Err(StorageError::NotFound(msg)) => assert!(msg.contains("gamma"), "{msg:?}"),
        other => panic!("unexpected {other:?}"),
    }
    client.attach("alpha").unwrap();
    assert_eq!(client.attached().as_deref(), Some("alpha"));
}

/// A hub with named mounts only (no default) refuses unattached data
/// ops with a clear error instead of guessing a namespace.
#[test]
fn unattached_ops_need_a_default_mount() {
    let (hub, _, _) = two_dataset_hub();
    let client = RemoteProvider::connect(hub.addr()).unwrap();
    match client.get("k") {
        Err(StorageError::Io(msg)) => assert!(msg.contains("Attach"), "{msg:?}"),
        other => panic!("unexpected {other:?}"),
    }
}

/// ListDatasets / wire Mount / Unmount manage the registry remotely.
#[test]
fn wire_mount_unmount_and_listing() {
    let backing: DynProvider = Arc::new(MemoryProvider::new());
    let hub = Hub::builder()
        .backing(backing.clone())
        .mount("custom", Arc::new(MemoryProvider::new()))
        .bind("127.0.0.1:0")
        .unwrap();
    let client = RemoteProvider::connect(hub.addr()).unwrap();
    assert_eq!(client.list_datasets().unwrap(), vec!["custom"]);
    client.remote_mount("mnist").unwrap();
    client.remote_mount("laion").unwrap();
    // re-mounting the identical wire namespace is idempotent...
    client.remote_mount("mnist").unwrap();
    // ...but a name bound to a DIFFERENT backend must not be aliased
    assert!(client.remote_mount("custom").is_err());
    assert_eq!(
        client.list_datasets().unwrap(),
        vec!["custom", "laion", "mnist"]
    );
    // invalid names are refused before they can escape the namespace
    assert!(client.remote_mount("../evil").is_err());
    assert!(client.remote_mount("..").is_err());
    // the mount namespaces keys on the backing store
    client.attach("mnist").unwrap();
    client.put("k", Bytes::from_static(b"v")).unwrap();
    assert!(backing.exists("datasets/mnist/k").unwrap());
    assert!(!backing.exists("k").unwrap());
    // unmount: gone from the listing, attached clients get NotFound
    client.remote_unmount("mnist").unwrap();
    assert_eq!(client.list_datasets().unwrap(), vec!["custom", "laion"]);
    match client.get("k") {
        Err(StorageError::NotFound(msg)) => assert!(msg.contains("mnist"), "{msg:?}"),
        other => panic!("unexpected {other:?}"),
    }
}

/// Full dataset lifecycle + TQL offload against two datasets on one
/// hub: results match what each dataset holds, never the other's.
#[test]
fn query_offload_respects_attachment() {
    let (hub, a, b) = two_dataset_hub();
    labelled_dataset(a, "alpha", 30, 0); // labels 0..30
    labelled_dataset(b, "beta", 30, 1000); // labels 1000..1030
    let ca = RemoteProvider::connect(hub.addr()).unwrap();
    ca.attach("alpha").unwrap();
    let cb = RemoteProvider::connect(hub.addr()).unwrap();
    cb.attach("beta").unwrap();
    let ra = ca
        .query(
            "SELECT labels FROM d WHERE labels < 5",
            &QueryOptions::default(),
        )
        .unwrap();
    assert_eq!(ra.indices, vec![0, 1, 2, 3, 4]);
    let rb = cb
        .query(
            "SELECT labels FROM d WHERE labels < 5",
            &QueryOptions::default(),
        )
        .unwrap();
    assert!(rb.indices.is_empty(), "beta has no labels below 5");
    let rb = cb
        .query(
            "SELECT labels FROM d WHERE labels < 1005",
            &QueryOptions::default(),
        )
        .unwrap();
    assert_eq!(rb.indices, vec![0, 1, 2, 3, 4]);
}

/// The result cache: a repeated version-pinned query is served as a
/// frame copy — byte-identical result, zero storage round trips, and
/// whitespace/case variants share the entry.
#[test]
fn repeated_queries_hit_the_result_cache() {
    let storage = Arc::new(SimulatedCloudProvider::new(
        "s3",
        MemoryProvider::new(),
        NetworkProfile::instant(),
    ));
    labelled_dataset(storage.clone(), "cached", 64, 0);
    let hub = Hub::builder()
        .mount("cached", storage.clone())
        .bind("127.0.0.1:0")
        .unwrap();
    let client = RemoteProvider::connect(hub.addr()).unwrap();
    client.attach("cached").unwrap();

    storage.stats().reset();
    let first = client
        .query(
            "SELECT labels FROM d WHERE labels = 3",
            &QueryOptions::default(),
        )
        .unwrap();
    let first_rts = storage.stats().round_trips();
    assert!(first_rts > 0, "the first execution touches storage");
    assert_eq!(hub.cache().stats().cache_misses(), 1);

    storage.stats().reset();
    let again = client
        .query(
            "SELECT labels FROM d WHERE labels = 3",
            &QueryOptions::default(),
        )
        .unwrap();
    assert_eq!(
        storage.stats().round_trips(),
        0,
        "a hit is a pure frame copy"
    );
    assert_eq!(again.indices, first.indices);
    assert_eq!(again.rows, first.rows);
    assert_eq!(again.stats, first.stats);
    assert_eq!(hub.cache().stats().cache_hits(), 1);

    // canonicalization: a formatting variant is the same cache entry
    storage.stats().reset();
    let variant = client
        .query(
            "select   labels from d  where labels=3",
            &QueryOptions::default(),
        )
        .unwrap();
    assert_eq!(storage.stats().round_trips(), 0);
    assert_eq!(variant.indices, first.indices);
    assert_eq!(hub.cache().stats().cache_hits(), 2);

    // different options = different entry (stats differ between paths)
    let pruned_off = QueryOptions {
        pruning: false,
        ..QueryOptions::default()
    };
    let naive = client
        .query("SELECT labels FROM d WHERE labels = 3", &pruned_off)
        .unwrap();
    assert_eq!(naive.indices, first.indices);
    assert_eq!(hub.cache().stats().cache_misses(), 2);
}

/// Writes through the hub invalidate head-tip results: a query after an
/// append sees the new rows (no stale cache), while results pinned to a
/// committed version keep hitting.
#[test]
fn writes_invalidate_mutable_entries_but_not_pinned_ones() {
    let storage: DynProvider = Arc::new(MemoryProvider::new());
    let hub = Hub::builder()
        .mount("ds", storage.clone())
        .bind("127.0.0.1:0")
        .unwrap();
    let client = Arc::new(RemoteProvider::connect(hub.addr()).unwrap());
    client.attach("ds").unwrap();

    // build the dataset THROUGH the hub and commit a version
    let commit = {
        let mut ds = Dataset::create(client.clone(), "ds").unwrap();
        ds.create_tensor("labels", Htype::ClassLabel, None).unwrap();
        for i in 0..10 {
            ds.append_row(vec![("labels", Sample::scalar(i))]).unwrap();
        }
        ds.commit("ten rows").unwrap()
    };
    let text = "SELECT labels FROM ds WHERE labels >= 0";
    let at_commit = format!("SELECT labels FROM ds AT VERSION \"{commit}\" WHERE labels >= 0");

    let head_r = client.query(text, &QueryOptions::default()).unwrap();
    assert_eq!(head_r.indices.len(), 10);
    let pinned_r = client.query(&at_commit, &QueryOptions::default()).unwrap();
    assert_eq!(pinned_r.indices.len(), 10);

    // append two more rows through the hub
    {
        let mut ds = Dataset::open(client.clone()).unwrap();
        for i in 10..12 {
            ds.append_row(vec![("labels", Sample::scalar(i))]).unwrap();
        }
        ds.flush().unwrap();
    }
    // the head query must see 12 rows now — not a stale cached 10
    let head_r = client.query(text, &QueryOptions::default()).unwrap();
    assert_eq!(head_r.indices.len(), 12, "stale cache served after write");
    // the committed-version query still answers 10, from cache
    hub.cache().stats().reset();
    let pinned_again = client.query(&at_commit, &QueryOptions::default()).unwrap();
    assert_eq!(pinned_again.indices.len(), 10);
    assert_eq!(
        hub.cache().stats().cache_hits(),
        1,
        "pinned entry must survive the write"
    );
}

/// The cache's byte budget evicts least-recently-used entries and counts
/// them — the same contract the storage LRU exposes.
#[test]
fn cache_byte_budget_evicts_and_counts() {
    let storage: DynProvider = Arc::new(MemoryProvider::new());
    labelled_dataset(storage.clone(), "small", 32, 0);
    let hub = Hub::builder()
        .mount("small", storage)
        .options(HubOptions {
            cache_bytes: 700, // room for only a couple of result frames
            ..HubOptions::default()
        })
        .bind("127.0.0.1:0")
        .unwrap();
    let client = RemoteProvider::connect(hub.addr()).unwrap();
    client.attach("small").unwrap();
    for i in 0..8 {
        client
            .query(
                &format!("SELECT labels FROM d WHERE labels = {i}"),
                &QueryOptions::default(),
            )
            .unwrap();
    }
    assert!(hub.cache().cached_bytes() <= 700);
    assert!(
        hub.cache().evictions() > 0,
        "8 distinct results cannot fit a 700-byte budget without evicting"
    );
}

/// Overload answers a lossless Busy frame: with a worker pool of one, a
/// queue of one and an in-flight cap of one, a burst of pipelined
/// requests gets exactly one response per request, in order, some of
/// them Busy — and the stream stays synchronized.
#[test]
fn overload_answers_lossless_busy_frames() {
    use std::io::Write;
    let slow = Arc::new(SimulatedCloudProvider::new(
        "slow",
        MemoryProvider::new(),
        NetworkProfile {
            first_byte_latency: std::time::Duration::from_millis(150),
            bandwidth_bps: u64::MAX,
            put_overhead: std::time::Duration::ZERO,
            scale: 1.0,
        },
    ));
    slow.inner().put("k", Bytes::from_static(b"v")).unwrap();
    let hub = Hub::builder()
        .mount("slow", slow)
        .options(HubOptions {
            workers: 1,
            queue_depth: 1,
            max_inflight_per_conn: 1,
            ..HubOptions::default()
        })
        .bind("127.0.0.1:0")
        .unwrap();

    // hand-speak the protocol so we can pipeline without waiting
    let mut raw = std::net::TcpStream::connect(hub.addr()).unwrap();
    raw.set_nodelay(true).unwrap();
    let hello = proto::encode_request(&proto::Request::Hello {
        version: proto::PROTO_VERSION,
    });
    proto::write_frame(&mut raw, &hello).unwrap();
    let resp = proto::read_frame(&mut raw).unwrap().unwrap();
    assert_eq!(proto::expect_hello(&resp).unwrap(), proto::PROTO_VERSION);
    let attach = proto::encode_request(&proto::Request::Attach {
        dataset: "slow".into(),
    });
    proto::write_frame(&mut raw, &attach).unwrap();
    proto::expect_unit(&proto::read_frame(&mut raw).unwrap().unwrap()).unwrap();

    // burst of 4 Gets; the first occupies the single worker for ~150 ms,
    // so the cap of 1 rejects the rest
    const BURST: usize = 4;
    let get = proto::encode_request(&proto::Request::Get { key: "k".into() });
    let mut wire = Vec::new();
    for _ in 0..BURST {
        proto::write_frame(&mut wire, &get).unwrap();
    }
    raw.write_all(&wire).unwrap();

    let mut ok = 0;
    let mut busy = 0;
    for _ in 0..BURST {
        let resp = proto::read_frame(&mut raw)
            .unwrap()
            .expect("one response per request");
        match proto::expect_bytes(&resp) {
            Ok(data) => {
                assert_eq!(data, Bytes::from_static(b"v"));
                ok += 1;
            }
            Err(StorageError::Busy(hint)) => {
                assert!(hint.contains("retry"), "{hint:?}");
                busy += 1;
            }
            Err(other) => panic!("unexpected {other:?}"),
        }
    }
    assert!(ok >= 1, "the in-flight request must complete");
    assert!(busy >= 1, "the burst must overflow the cap");
    assert_eq!(ok + busy, BURST, "lossless: every request answered");
    assert_eq!(hub.stats().busy_rejections(), busy as u64);

    // the connection is still synchronized: a polite request works
    proto::write_frame(&mut raw, &get).unwrap();
    let resp = proto::read_frame(&mut raw).unwrap().unwrap();
    assert_eq!(
        proto::expect_bytes(&resp).unwrap(),
        Bytes::from_static(b"v")
    );
}

/// `RemoteProvider` absorbs transient overload: Busy frames are retried
/// with back-off client-side, so callers see successful results — the
/// hub's rejection counter proves the retries really happened.
#[test]
fn client_retries_absorb_transient_busy() {
    use deeplake_remote::RemoteOptions;
    let slow = Arc::new(SimulatedCloudProvider::new(
        "slow",
        MemoryProvider::new(),
        NetworkProfile {
            first_byte_latency: std::time::Duration::from_millis(60),
            bandwidth_bps: u64::MAX,
            put_overhead: std::time::Duration::ZERO,
            scale: 1.0,
        },
    ));
    slow.inner().put("k", Bytes::from_static(b"v")).unwrap();
    let hub = Hub::builder()
        .mount("slow", slow)
        .options(HubOptions {
            workers: 1,
            queue_depth: 1,
            ..HubOptions::default()
        })
        .bind("127.0.0.1:0")
        .unwrap();
    let opts = RemoteOptions {
        busy_retries: 20,
        busy_backoff: std::time::Duration::from_millis(15),
        ..RemoteOptions::default()
    };
    // rounds of 3 concurrent gets against a 1-worker, 1-slot queue:
    // overflow answers Busy, the clients retry, every get succeeds
    for _ in 0..20 {
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let addr = hub.addr();
                scope.spawn(move || {
                    let client = RemoteProvider::connect_with(addr, opts).unwrap();
                    client.attach("slow").unwrap();
                    assert_eq!(client.get("k").unwrap(), Bytes::from_static(b"v"));
                });
            }
        });
        if hub.stats().busy_rejections() > 0 {
            return; // overload happened and was absorbed — done
        }
    }
    panic!("20 rounds of 3-way concurrency never overflowed a 1-slot queue");
}

/// A client speaking the wrong protocol generation is rejected with the
/// lossless hello error — over a real socket, not just the codec.
#[test]
fn version_mismatch_rejected_over_tcp() {
    let (hub, _, _) = two_dataset_hub();
    let mut raw = std::net::TcpStream::connect(hub.addr()).unwrap();
    let hello = proto::encode_request(&proto::Request::Hello {
        version: proto::PROTO_VERSION + 1,
    });
    proto::write_frame(&mut raw, &hello).unwrap();
    let resp = proto::read_frame(&mut raw).unwrap().unwrap();
    let err = proto::expect_hello(&resp).unwrap_err();
    assert!(
        err.to_string().contains("unsupported"),
        "unexpected {err:?}"
    );
    // the hub hangs up on incompatible clients: next read is EOF
    assert!(proto::read_frame(&mut raw).unwrap().is_none());
}

/// Eight concurrent clients split across two datasets stream loader
/// epochs through one hub with byte-correct, isolated results.
#[test]
fn eight_clients_two_datasets_stream_epochs() {
    use deeplake_loader::DataLoader;
    const CLIENTS: usize = 8;
    const ROWS: u64 = 48;
    let (hub, a, b) = two_dataset_hub();
    labelled_dataset(a, "alpha", ROWS, 0);
    labelled_dataset(b, "beta", ROWS, 10_000);
    let addr = hub.addr();
    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for c in 0..CLIENTS {
            joins.push(scope.spawn(move || {
                let name = if c % 2 == 0 { "alpha" } else { "beta" };
                let client = RemoteProvider::connect(addr).unwrap();
                client.attach(name).unwrap();
                let ds = Arc::new(Dataset::open(Arc::new(client)).unwrap());
                let loader = DataLoader::builder(ds)
                    .batch_size(16)
                    .num_workers(2)
                    .shuffle(c as u64)
                    .build()
                    .unwrap();
                let mut sum = 0u64;
                let mut rows = 0u64;
                for batch in loader.epoch() {
                    let batch = batch.unwrap();
                    let col = batch.column("labels").unwrap();
                    for i in 0..col.len() {
                        sum += col.get(i).unwrap().get_f64(0).unwrap() as u64;
                        rows += 1;
                    }
                }
                (name, rows, sum)
            }));
        }
        let alpha_sum: u64 = (0..ROWS).sum();
        let beta_sum: u64 = (0..ROWS).map(|i| i + 10_000).sum();
        for j in joins {
            let (name, rows, sum) = j.join().unwrap();
            assert_eq!(rows, ROWS, "every client sees every row of its dataset");
            let expected = if name == "alpha" { alpha_sum } else { beta_sum };
            assert_eq!(sum, expected, "{name} values wrong");
        }
    });
}

/// Out-of-band writes (directly on the mounted provider) are invisible
/// to the hub; `invalidate(name)` flushes the stale state explicitly.
#[test]
fn explicit_invalidation_for_out_of_band_writes() {
    let storage: DynProvider = Arc::new(MemoryProvider::new());
    labelled_dataset(storage.clone(), "oob", 5, 0);
    let hub = Hub::builder()
        .mount("oob", storage.clone())
        .bind("127.0.0.1:0")
        .unwrap();
    let client = RemoteProvider::connect(hub.addr()).unwrap();
    client.attach("oob").unwrap();
    let text = "SELECT labels FROM d WHERE labels >= 0";
    assert_eq!(
        client.query(text, &QueryOptions::default()).unwrap().len(),
        5
    );
    // write BEHIND the hub's back
    {
        let mut ds = Dataset::open(storage).unwrap();
        ds.append_row(vec![("labels", Sample::scalar(5i32))])
            .unwrap();
        ds.flush().unwrap();
    }
    hub.invalidate("oob");
    assert_eq!(
        client.query(text, &QueryOptions::default()).unwrap().len(),
        6,
        "explicit invalidation must flush the stale entry"
    );
}
