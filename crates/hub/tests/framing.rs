//! Adversarial framing on the nonblocking reader tier: slow-loris
//! drip-feeds, frames split at every byte boundary, mid-frame
//! disconnects, and a client that requests but never reads. The hub
//! must answer what can be answered, cut what cannot, keep
//! per-connection memory bounded, and never grow its reader tier.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use deeplake_hub::{Hub, HubHandle, HubOptions};
use deeplake_remote::proto::{self, Request};
use deeplake_storage::{MemoryProvider, StorageProvider};

fn hub_with(opts: HubOptions, keys: &[(&str, Vec<u8>)]) -> HubHandle {
    let storage = Arc::new(MemoryProvider::new());
    for (k, v) in keys {
        storage.put(k, Bytes::from(v.clone())).unwrap();
    }
    Hub::builder()
        .default_mount(storage)
        .options(opts)
        .bind("127.0.0.1:0")
        .unwrap()
}

fn frame(payload: &[u8]) -> Vec<u8> {
    let mut wire = Vec::with_capacity(4 + payload.len());
    wire.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    wire.extend_from_slice(payload);
    wire
}

/// Raw legacy-mode socket: Hello exchanged, untagged framing.
fn raw_client(hub: &HubHandle) -> TcpStream {
    let mut s = TcpStream::connect(hub.addr()).unwrap();
    s.set_nodelay(true).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(&frame(&proto::encode_request(&Request::Hello {
        version: proto::PROTO_VERSION,
    })))
    .unwrap();
    let resp = proto::read_frame(&mut s).unwrap().unwrap();
    proto::expect_hello(&resp).unwrap();
    s
}

fn get_frame(key: &str) -> Vec<u8> {
    frame(&proto::encode_request(&Request::Get {
        key: key.to_string(),
    }))
}

/// One byte per write with a pause between bytes: the loop must hold
/// the partial frame across hundreds of readiness events and answer
/// normally once it completes — twice, so post-frame state is clean.
#[test]
fn slow_loris_request_is_served() {
    let hub = hub_with(HubOptions::default(), &[("k", b"value".to_vec())]);
    let mut s = raw_client(&hub);
    let expected = proto::resp_bytes(b"value");
    for _ in 0..2 {
        for byte in get_frame("k") {
            s.write_all(&[byte]).unwrap();
            s.flush().unwrap();
            std::thread::sleep(Duration::from_millis(1));
        }
        let resp = proto::read_frame(&mut s).unwrap().unwrap();
        assert_eq!(resp, expected);
    }
}

/// A slow-loris that stalls mid-frame for good is cut at
/// `stall_timeout` — it cannot hold its reader-tier slot hostage.
#[test]
fn mid_frame_stall_is_cut_at_the_deadline() {
    let hub = hub_with(
        HubOptions {
            stall_timeout: Duration::from_millis(200),
            ..HubOptions::default()
        },
        &[("k", b"v".to_vec())],
    );
    let mut s = raw_client(&hub);
    // half a header, then silence
    s.write_all(&[9, 0]).unwrap();
    let started = Instant::now();
    let mut buf = [0u8; 1];
    let n = s.read(&mut buf); // EOF or reset once the hub cuts us
    assert!(
        matches!(n, Ok(0) | Err(_)),
        "stalled connection must be cut, got {n:?}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "cut must come from the stall deadline, not the 10s read timeout"
    );
    // the hub is unharmed: a polite client still gets answers
    let mut polite = raw_client(&hub);
    polite.write_all(&get_frame("k")).unwrap();
    let resp = proto::read_frame(&mut polite).unwrap().unwrap();
    assert_eq!(resp, proto::resp_bytes(b"v"));
}

/// Every possible split point of a request frame, on one connection:
/// the framing state machine must reassemble all of them.
#[test]
fn frames_split_at_every_boundary() {
    let hub = hub_with(HubOptions::default(), &[("k", b"boundary".to_vec())]);
    let mut s = raw_client(&hub);
    let wire = get_frame("k");
    let expected = proto::resp_bytes(b"boundary");
    for split in 1..wire.len() {
        s.write_all(&wire[..split]).unwrap();
        s.flush().unwrap();
        // let the first fragment arrive as its own readiness event
        std::thread::sleep(Duration::from_millis(2));
        s.write_all(&wire[split..]).unwrap();
        let resp = proto::read_frame(&mut s).unwrap().unwrap();
        assert_eq!(resp, expected, "split at byte {split}");
    }
}

/// Disconnects at every stage of a partial frame — header only, partial
/// header, partial body, nothing at all — must be absorbed silently and
/// leak nothing.
#[test]
fn mid_frame_disconnects_are_absorbed() {
    let hub = hub_with(HubOptions::default(), &[("k", b"v".to_vec())]);
    let wire = get_frame("k");
    for cut in [0usize, 1, 2, 4, wire.len() - 1] {
        for _ in 0..5 {
            let mut s = raw_client(&hub);
            s.write_all(&wire[..cut]).unwrap();
            drop(s); // RST/FIN mid-frame
        }
    }
    // and one that dies after a *complete* request, before reading
    let mut s = raw_client(&hub);
    s.write_all(&wire).unwrap();
    drop(s);
    std::thread::sleep(Duration::from_millis(100));
    let mut polite = raw_client(&hub);
    polite.write_all(&wire).unwrap();
    let resp = proto::read_frame(&mut polite).unwrap().unwrap();
    assert_eq!(resp, proto::resp_bytes(b"v"));
}

/// A client that pipelines requests for large values and never reads a
/// byte of response: the hub must stop admitting its requests once the
/// outbound cap is hit (memory bounded), then cut it at the stall
/// deadline. Polite traffic is unaffected throughout.
#[test]
fn never_reads_client_is_bounded_then_cut() {
    const VALUE: usize = 32 << 10; // 32 KiB per response
    const CAP: usize = 64 << 10; // outbound cap: 2 responses
    let hub = hub_with(
        HubOptions {
            workers: 2,
            max_inflight_per_conn: 4,
            conn_buffer_bytes: CAP,
            stall_timeout: Duration::from_millis(300),
            ..HubOptions::default()
        },
        &[("big", vec![0xEE; VALUE])],
    );
    const REQUESTS: usize = 600; // ~19 MB of responses if unbounded
    let mut s = raw_client(&hub);
    s.set_nonblocking(true).unwrap();
    let wire = get_frame("big");
    // blast requests without ever reading a byte back
    let mut sent = 0;
    for _ in 0..REQUESTS {
        match s.write_all(&wire) {
            Ok(()) => sent += 1,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(_) => break, // already cut
        }
    }
    assert!(sent > 4, "the burst must outrun the in-flight cap");
    // the hub flushes into kernel buffers until they fill, then its
    // user-space outbound queue stalls at the cap and the deadline cuts
    // the connection; no probes here — any byte we sent or read would
    // count as progress and legitimately re-arm the deadline
    std::thread::sleep(Duration::from_secs(2));
    // bounded memory: the outbound queue peaked at the cap plus at most
    // the responses already executing when it tripped
    let bound = (CAP + 5 * (VALUE + 64)) as u64;
    let peak = hub.stats().peak_conn_buffered();
    assert!(
        peak <= bound,
        "peak conn buffer {peak} exceeded bound {bound} (cap {CAP})"
    );
    // drain what the kernel already held: it must end in EOF/reset long
    // before the full response volume — the hub cut us rather than
    // generate and queue ~19 MB for a peer that never reads
    s.set_nonblocking(false).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut sink = vec![0u8; 64 << 10];
    let mut drained = 0u64;
    loop {
        match s.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(n) => drained += n as u64,
        }
    }
    let total = (sent * (VALUE + 64)) as u64;
    assert!(
        drained < total / 2,
        "hub delivered {drained} of {total} bytes to a never-reading client; \
         it should have cut the connection instead"
    );
    // polite traffic unaffected
    let mut polite = raw_client(&hub);
    polite.write_all(&get_frame("big")).unwrap();
    let resp = proto::read_frame(&mut polite).unwrap().unwrap();
    assert_eq!(resp, proto::resp_bytes(&vec![0xEE; VALUE]));
}

/// Opening many connections must not grow the process thread count:
/// readers are a fixed tier, not per-connection.
#[cfg(target_os = "linux")]
#[test]
fn reader_tier_does_not_grow_with_connections() {
    fn thread_count() -> usize {
        let status = std::fs::read_to_string("/proc/self/status").unwrap();
        status
            .lines()
            .find_map(|l| l.strip_prefix("Threads:"))
            .and_then(|v| v.trim().parse().ok())
            .unwrap()
    }
    let hub = hub_with(HubOptions::default(), &[("k", b"v".to_vec())]);
    // settle the fixed tier (loops + workers) before measuring
    let mut warm = raw_client(&hub);
    warm.write_all(&get_frame("k")).unwrap();
    proto::read_frame(&mut warm).unwrap().unwrap();
    let before = thread_count();
    let mut conns: Vec<TcpStream> = (0..64).map(|_| raw_client(&hub)).collect();
    for s in &mut conns {
        s.write_all(&get_frame("k")).unwrap();
        let resp = proto::read_frame(&mut *s).unwrap().unwrap();
        assert_eq!(resp, proto::resp_bytes(b"v"));
    }
    let after = thread_count();
    assert_eq!(
        after, before,
        "64 extra connections must not add a single thread"
    );
}
