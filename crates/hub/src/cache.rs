//! The version-pinned query-result cache.
//!
//! Every offloaded query result is pinned to an immutable dataset
//! version (`QueryResult::version` — PR 4), so a repeated query against
//! the same version is *perfectly* cacheable: the hub keys entries by
//! `(dataset, resolved version, canonical TQL text, QueryOptions)` and
//! stores the **already-encoded response frame**, so a hit is a pure
//! frame copy — zero parse, zero plan, zero storage round trips.
//!
//! Three facts keep the cache correct:
//!
//! * the *text* component is [`deeplake_tql::canonical_text`], so
//!   whitespace/case/alias variants of one query share one entry;
//! * the *version* component is the resolved head node, and entries are
//!   flagged **pinned** only when that node is a committed (immutable)
//!   version — results computed against a *mutable* branch tip are
//!   dropped by [`ResultCache::invalidate_mutable`] whenever the hub
//!   routes a write into the dataset, because an uncommitted tip mutates
//!   *without changing its id*;
//! * eviction is byte-budgeted LRU, with [`StorageStats::evictions`]
//!   counted per dropped entry so budget pressure is observable (the
//!   same counter contract the storage-tier LRU exposes).

use std::collections::HashMap;

use deeplake_storage::StorageStats;
use deeplake_tql::QueryOptions;
use parking_lot::Mutex;

/// Cache key: one logical query against one immutable dataset version.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Registry name of the dataset.
    pub dataset: String,
    /// Resolved head node the query executed against.
    pub version: String,
    /// Canonical query text ([`deeplake_tql::canonical_text`]).
    pub text: String,
    /// Execution options (they select pruned/ANN paths, which report
    /// different [`deeplake_tql::QueryStats`] in the cached frame).
    pub options: QueryOptions,
}

impl CacheKey {
    fn cost(&self, frame_len: usize) -> u64 {
        // entry footprint: the frame plus the owned key strings
        (frame_len + self.dataset.len() + self.version.len() + self.text.len() + 64) as u64
    }
}

struct Entry {
    frame: Vec<u8>,
    /// True when the result can never change (committed version inside
    /// and out): survives write invalidation.
    pinned: bool,
    tick: u64,
    cost: u64,
}

struct CacheState {
    entries: HashMap<CacheKey, Entry>,
    bytes: u64,
    tick: u64,
}

/// Byte-budgeted LRU over encoded query-response frames.
pub struct ResultCache {
    state: Mutex<CacheState>,
    budget: u64,
    stats: StorageStats,
}

impl ResultCache {
    /// Cache up to `budget_bytes` of encoded result frames. A budget of
    /// zero disables caching (every lookup misses, nothing is stored).
    pub fn new(budget_bytes: u64) -> Self {
        ResultCache {
            state: Mutex::new(CacheState {
                entries: HashMap::new(),
                bytes: 0,
                tick: 0,
            }),
            budget: budget_bytes,
            stats: StorageStats::new(),
        }
    }

    /// The configured byte budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Hit/miss/eviction counters.
    pub fn stats(&self) -> &StorageStats {
        &self.stats
    }

    /// Fraction of lookups served from memory.
    pub fn hit_ratio(&self) -> f64 {
        self.stats.hit_ratio()
    }

    /// Entries evicted to stay within the byte budget.
    pub fn evictions(&self) -> u64 {
        self.stats.evictions()
    }

    /// Bytes currently held (frames + key strings).
    pub fn cached_bytes(&self) -> u64 {
        self.state.lock().bytes
    }

    /// Entries currently held.
    pub fn cached_entries(&self) -> usize {
        self.state.lock().entries.len()
    }

    /// Look one query up; a hit returns a copy of the encoded response
    /// frame, ready to write to the wire.
    pub fn lookup(&self, key: &CacheKey) -> Option<Vec<u8>> {
        let mut st = self.state.lock();
        st.tick += 1;
        let tick = st.tick;
        match st.entries.get_mut(key) {
            Some(entry) => {
                entry.tick = tick;
                self.stats.record_hit();
                Some(entry.frame.clone())
            }
            None => {
                self.stats.record_miss();
                None
            }
        }
    }

    /// Store one encoded response frame. `pinned` marks results whose
    /// version can never mutate (committed inside and out); unpinned
    /// entries are dropped on the next write to the dataset. Frames
    /// larger than the whole budget are never stored.
    pub fn insert(&self, key: CacheKey, frame: Vec<u8>, pinned: bool) {
        self.insert_if(key, frame, pinned, || true);
    }

    /// [`ResultCache::insert`] gated on `still_valid`, evaluated *under
    /// the cache lock*. The hub passes an epoch check here so an insert
    /// racing a write invalidation can never install a stale entry: the
    /// invalidation bumps the epoch before it scans the cache, so either
    /// the predicate observes the bump and refuses, or the insert lands
    /// first and the scan drops it.
    pub fn insert_if(
        &self,
        key: CacheKey,
        frame: Vec<u8>,
        pinned: bool,
        still_valid: impl FnOnce() -> bool,
    ) {
        let cost = key.cost(frame.len());
        if cost > self.budget {
            return;
        }
        let mut st = self.state.lock();
        if !still_valid() {
            return;
        }
        st.tick += 1;
        let tick = st.tick;
        if let Some(old) = st.entries.insert(
            key,
            Entry {
                frame,
                pinned,
                tick,
                cost,
            },
        ) {
            st.bytes -= old.cost;
        }
        st.bytes += cost;
        while st.bytes > self.budget {
            let victim = st
                .entries
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(k, _)| k.clone())
                .expect("bytes > 0 implies entries");
            if let Some(old) = st.entries.remove(&victim) {
                st.bytes -= old.cost;
                self.stats.record_eviction();
            }
        }
    }

    /// Drop every entry for `dataset` — mount/unmount and explicit
    /// out-of-band invalidation.
    pub fn invalidate_dataset(&self, dataset: &str) {
        self.retain(|k, _| k.dataset != dataset);
    }

    /// Drop the entries for `dataset` whose results could change under a
    /// write (unpinned — resolved against a mutable branch tip). Entries
    /// pinned to committed versions survive: committed nodes are
    /// immutable by construction.
    pub fn invalidate_mutable(&self, dataset: &str) {
        self.retain(|k, e| k.dataset != dataset || e.pinned);
    }

    fn retain(&self, keep: impl Fn(&CacheKey, &Entry) -> bool) {
        let mut st = self.state.lock();
        let doomed: Vec<CacheKey> = st
            .entries
            .iter()
            .filter(|(k, e)| !keep(k, e))
            .map(|(k, _)| k.clone())
            .collect();
        for key in doomed {
            if let Some(old) = st.entries.remove(&key) {
                st.bytes -= old.cost;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(dataset: &str, version: &str, text: &str) -> CacheKey {
        CacheKey {
            dataset: dataset.into(),
            version: version.into(),
            text: text.into(),
            options: QueryOptions::default(),
        }
    }

    #[test]
    fn hit_is_a_frame_copy() {
        let cache = ResultCache::new(1 << 20);
        let k = key("d", "v1", "SELECT * FROM d");
        assert!(cache.lookup(&k).is_none());
        cache.insert(k.clone(), vec![1, 2, 3], true);
        assert_eq!(cache.lookup(&k).unwrap(), vec![1, 2, 3]);
        assert_eq!(cache.stats().cache_hits(), 1);
        assert_eq!(cache.stats().cache_misses(), 1);
    }

    #[test]
    fn distinct_options_are_distinct_entries() {
        let cache = ResultCache::new(1 << 20);
        let k1 = key("d", "v1", "q");
        let mut k2 = k1.clone();
        k2.options.ann = true;
        cache.insert(k1.clone(), vec![1], true);
        assert!(cache.lookup(&k2).is_none());
        cache.insert(k2.clone(), vec![2], true);
        assert_eq!(cache.lookup(&k1).unwrap(), vec![1]);
        assert_eq!(cache.lookup(&k2).unwrap(), vec![2]);
    }

    #[test]
    fn byte_budget_evicts_lru_and_counts() {
        // each entry costs 64 overhead + strings (~3+2+2=7) + 100 frame
        let cache = ResultCache::new(400);
        for i in 0..4 {
            cache.insert(key("d", "v", &format!("q{i}")), vec![0u8; 100], true);
        }
        assert!(cache.cached_bytes() <= 400);
        assert!(cache.cached_entries() <= 2);
        assert_eq!(cache.evictions(), 2);
        // oversized frames are never stored
        cache.insert(key("d", "v", "huge"), vec![0u8; 1000], true);
        assert!(cache.lookup(&key("d", "v", "huge")).is_none());
    }

    #[test]
    fn write_invalidation_spares_pinned_entries() {
        let cache = ResultCache::new(1 << 20);
        let head = key("d", "tip", "q1");
        let committed = key("d", "commit1", "q2");
        let other = key("e", "tip", "q3");
        cache.insert(head.clone(), vec![1], false);
        cache.insert(committed.clone(), vec![2], true);
        cache.insert(other.clone(), vec![3], false);
        cache.invalidate_mutable("d");
        assert!(cache.lookup(&head).is_none(), "mutable entry dropped");
        assert!(cache.lookup(&committed).is_some(), "pinned entry survives");
        assert!(cache.lookup(&other).is_some(), "other dataset untouched");
        cache.invalidate_dataset("d");
        assert!(cache.lookup(&committed).is_none());
    }

    #[test]
    fn zero_budget_disables_caching() {
        let cache = ResultCache::new(0);
        let k = key("d", "v", "q");
        cache.insert(k.clone(), vec![1], true);
        assert!(cache.lookup(&k).is_none());
        assert_eq!(cache.cached_bytes(), 0);
    }
}
