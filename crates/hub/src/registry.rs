//! The dataset registry: many named datasets behind one listener.
//!
//! Each mount pairs a name with a [`DynProvider`] — usually a
//! [`PrefixProvider`](deeplake_storage::PrefixProvider) namespacing one
//! backing store, but any provider works (server-side mounts can point
//! different datasets at different backends). Connections `Attach` to a
//! name; unattached connections fall back to the *default* mount, which
//! is how the single-dataset `DatasetServer` facade keeps its exact PR-4
//! behaviour on the hub runtime.
//!
//! A mount also owns the serving-side memoization that makes repeated
//! query offload cheap: `reference → (resolved head, committed)` — the
//! lookup that would otherwise cost storage reads per query — plus an
//! invalidation epoch bumped on every write routed into the dataset, so
//! a query racing a write can never install a stale memo or cache entry.

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use deeplake_storage::DynProvider;
use parking_lot::{Mutex, RwLock};

/// One mounted dataset.
pub struct Mounted {
    /// Registry name.
    pub name: String,
    /// The dataset's (namespaced) storage.
    pub provider: DynProvider,
    /// `reference → resolved head node` memo. Resolving a branch name
    /// costs storage reads; memoizing it is what lets a cache hit
    /// answer with *zero* storage round trips. Cleared on every write
    /// into the dataset (an uncommitted tip mutates without changing
    /// its id, and a commit moves the branch).
    heads: Mutex<HashMap<String, String>>,
    /// Bumped on every invalidation; queries capture it before resolving
    /// and refuse to install memo/cache entries if it moved meanwhile.
    epoch: AtomicU64,
}

impl Mounted {
    fn new(name: String, provider: DynProvider) -> Arc<Self> {
        Arc::new(Mounted {
            name,
            provider,
            heads: Mutex::new(HashMap::new()),
            epoch: AtomicU64::new(0),
        })
    }

    /// Current invalidation epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Memoized resolution of `reference`, if still valid.
    pub fn head_memo(&self, reference: &str) -> Option<String> {
        self.heads.lock().get(reference).cloned()
    }

    /// Install a resolution memo, unless the dataset was invalidated
    /// since `seen_epoch` was captured (a concurrent write may have
    /// moved the head the resolution observed).
    pub fn memoize_head(&self, reference: &str, head: String, seen_epoch: u64) {
        let mut memo = self.heads.lock();
        if self.epoch.load(Ordering::Acquire) == seen_epoch {
            memo.insert(reference.to_string(), head);
        }
    }

    /// Forget every memoized resolution and advance the epoch.
    pub fn invalidate(&self) {
        let mut memo = self.heads.lock();
        self.epoch.fetch_add(1, Ordering::AcqRel);
        memo.clear();
    }
}

/// Named mounts plus the default for unattached connections.
#[derive(Default)]
pub struct DatasetRegistry {
    mounts: RwLock<BTreeMap<String, Arc<Mounted>>>,
    default: RwLock<Option<Arc<Mounted>>>,
}

impl DatasetRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Validate a registry name: non-empty, no `/` and not a dot
    /// segment (names become key prefixes on wire mounts; a slash — or
    /// `.`/`..`, which path-backed providers collapse — would escape
    /// the namespace), printable ASCII.
    pub fn valid_name(name: &str) -> Result<(), String> {
        if name.is_empty() {
            return Err("dataset name must not be empty".into());
        }
        if name.chars().all(|c| c == '.') {
            return Err(format!(
                "dataset name {name:?} is a path dot-segment and could escape its namespace"
            ));
        }
        if let Some(bad) = name
            .chars()
            .find(|c| *c == '/' || !c.is_ascii() || c.is_ascii_control())
        {
            return Err(format!("dataset name may not contain {bad:?}"));
        }
        Ok(())
    }

    /// Register `provider` under `name`. Errors if the name is invalid
    /// or already taken — repointing a live name would silently keep
    /// serving the old provider to attached clients, so the caller must
    /// [`unmount`](Self::unmount) first, explicitly.
    pub fn mount(&self, name: &str, provider: DynProvider) -> Result<Arc<Mounted>, String> {
        Self::valid_name(name)?;
        let mut mounts = self.mounts.write();
        if mounts.contains_key(name) {
            return Err(format!("dataset {name:?} is already mounted"));
        }
        let mounted = Mounted::new(name.to_string(), provider);
        mounts.insert(name.to_string(), mounted.clone());
        Ok(mounted)
    }

    /// Remove `name`; returns the mount if it existed. Storage is left
    /// untouched. The default mount cannot be unmounted by name removal
    /// alone — it stays reachable by unattached connections.
    pub fn unmount(&self, name: &str) -> Option<Arc<Mounted>> {
        self.mounts.write().remove(name)
    }

    /// Look a mount up by name.
    pub fn get(&self, name: &str) -> Option<Arc<Mounted>> {
        self.mounts.read().get(name).cloned()
    }

    /// Sorted names of every mount.
    pub fn list(&self) -> Vec<String> {
        self.mounts.read().keys().cloned().collect()
    }

    /// Number of mounts.
    pub fn len(&self) -> usize {
        self.mounts.read().len()
    }

    /// Whether no dataset is mounted.
    pub fn is_empty(&self) -> bool {
        self.mounts.read().is_empty()
    }

    /// The mount unattached connections resolve to.
    pub fn default_mount(&self) -> Option<Arc<Mounted>> {
        self.default.read().clone()
    }

    /// Set the default mount.
    pub fn set_default(&self, mounted: Arc<Mounted>) {
        *self.default.write() = Some(mounted);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deeplake_storage::MemoryProvider;

    fn provider() -> DynProvider {
        Arc::new(MemoryProvider::new())
    }

    #[test]
    fn mount_list_unmount() {
        let reg = DatasetRegistry::new();
        reg.mount("b", provider()).unwrap();
        reg.mount("a", provider()).unwrap();
        assert_eq!(reg.list(), vec!["a", "b"], "sorted listing");
        assert!(reg.get("a").is_some());
        assert!(reg.unmount("a").is_some());
        assert!(reg.get("a").is_none());
        assert!(reg.unmount("a").is_none(), "idempotent");
    }

    #[test]
    fn remount_taken_name_errors_instead_of_silently_keeping_old() {
        let reg = DatasetRegistry::new();
        let first = reg.mount("d", provider()).unwrap();
        let err = reg.mount("d", provider()).err().expect("re-mount refused");
        assert!(err.contains("already mounted"), "{err:?}");
        assert!(
            Arc::ptr_eq(&first, &reg.get("d").unwrap()),
            "original mount untouched"
        );
        // explicit unmount-then-mount repoints the name
        reg.unmount("d");
        reg.mount("d", provider()).unwrap();
    }

    #[test]
    fn names_are_validated() {
        assert!(DatasetRegistry::valid_name("mnist-v2.1_x").is_ok());
        assert!(DatasetRegistry::valid_name("").is_err());
        assert!(DatasetRegistry::valid_name("a/b").is_err());
        assert!(DatasetRegistry::valid_name("ünïcode").is_err());
        assert!(DatasetRegistry::valid_name("tab\there").is_err());
        // dot segments collapse on path-backed providers → escape risk
        assert!(DatasetRegistry::valid_name(".").is_err());
        assert!(DatasetRegistry::valid_name("..").is_err());
        assert!(DatasetRegistry::valid_name("...").is_err());
    }

    #[test]
    fn head_memo_respects_epochs() {
        let reg = DatasetRegistry::new();
        let m = reg.mount("d", provider()).unwrap();
        let e0 = m.epoch();
        m.memoize_head("main", "h1".into(), e0);
        assert_eq!(m.head_memo("main").unwrap(), "h1");
        // a write invalidates: memo gone, epoch moved
        m.invalidate();
        assert!(m.head_memo("main").is_none());
        // a stale installer (captured epoch before the write) is refused
        m.memoize_head("main", "h1-stale".into(), e0);
        assert!(m.head_memo("main").is_none());
        // a fresh installer lands
        m.memoize_head("main", "h2".into(), m.epoch());
        assert_eq!(m.head_memo("main").unwrap(), "h2");
    }
}
