//! The hub runtime: one listener, an event-driven reader tier, a
//! bounded worker pool.
//!
//! ## Event-driven readers (vs PR 5's thread-per-connection)
//!
//! Connections are multiplexed across a small, fixed set of *event
//! loops* ([`HubOptions::reader_threads`], default 2) built on the
//! `polling` readiness API (epoll on Linux). Each loop owns its
//! connections outright: it accumulates bytes into per-connection
//! buffers, slices complete frames out, answers the cheap control ops
//! (`Hello`, `Attach`, registry management) inline, and pushes decoded
//! data ops onto one bounded queue that `workers` pool threads drain.
//! Ten thousand idle connections therefore cost ten thousand
//! *registrations* (a few hundred bytes each) instead of ten thousand
//! parked OS threads, and storage/query concurrency never exceeds the
//! pool size.
//!
//! ## Overload is an answer, not a stall
//!
//! When a connection exceeds its in-flight cap, or the shared queue is
//! full, the loop answers that request immediately with a `Busy` frame
//! instead of enqueueing it. The response slot is preserved in request
//! order — the stream never desynchronizes, which is what makes the
//! rejection *lossless*: the client sees exactly one response per
//! request and can back off and retry.
//!
//! ## Write-side backpressure
//!
//! Workers never touch sockets. A finished response is deposited into
//! the connection's outbound queue and the owning loop is woken to
//! write it out — nonblocking, with partial-write tracking — so a peer
//! that stops draining can never pin a pool worker. Its outbound queue
//! is bounded instead: past [`HubOptions::conn_buffer_bytes`] the loop
//! stops *reading* that connection (admitting no further requests, so
//! no further responses accrue), and a connection that makes no read or
//! write progress for [`HubOptions::stall_timeout`] is disconnected.
//!
//! ## Response order
//!
//! A legacy connection may pipeline frames; workers finish out of
//! order, so each connection keeps a reorder buffer and responses are
//! committed strictly in request order. A connection that switched to
//! pipelined framing (`Request::Pipeline`) carries correlation ids
//! instead: responses are committed in completion order and the client
//! demultiplexes by id.
//!
//! ## Shutdown
//!
//! Graceful and fully event-driven — no poll ticks. [`HubHandle::
//! shutdown`] flags the hub and *wakes every loop through its poller*:
//! the listener closes, loops finish slicing the frames they already
//! buffered (a request that was read always drains to a response) and
//! stop reading; the workers drain the queue; the loops flush every
//! outbound byte (stalled peers are cut at `stall_timeout`) and exit.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::{Duration, Instant};

use deeplake_core::Dataset;
use deeplake_obs::{
    next_id, Counter, FlightEvent, FlightRecorder, Histogram, MetricsRegistry, MetricsSnapshot,
    RateWindow, SlowQueryEntry, SlowQueryLog, SpanRecord, SpanTimer, WindowedHistogram,
};
use deeplake_remote::proto::{self, Request};
use deeplake_storage::{
    DynProvider, PrefixProvider, ReadPlan, StorageError, StorageProvider, StorageStats,
    TimingProvider,
};
use deeplake_tql::{canonical, parser, QueryOptions};
use parking_lot::Mutex;
use polling::{Event, Interest, Poller};

use crate::cache::{CacheKey, ResultCache};
use crate::registry::{DatasetRegistry, Mounted};

/// Poller key the accept listener is registered under on loop 0
/// (`u64::MAX` is the poller's own waker; connection tokens count up
/// from zero and can never reach either).
const LISTEN_KEY: u64 = u64::MAX - 1;

/// Most bytes one readable event may pull from a single connection
/// before yielding — level-triggered readiness re-fires for the rest,
/// so one firehose peer cannot starve the loop's other connections.
const READ_BURST: usize = 256 * 1024;

/// Key prefix wire-`Mount`ed datasets are namespaced under on the hub's
/// backing store.
const WIRE_MOUNT_PREFIX: &str = "datasets";

/// Cluster placement resolver a hub node consults to answer `WhereIs`
/// requests: `dataset name → (map epoch, live replica addresses)`.
/// Installed by [`HubBuilder::placement`] when the hub is one node of a
/// cluster (the resolver typically closes over the cluster's shared
/// map); a hub without one answers `WhereIs` with a lossless protocol
/// error. An unknown dataset must return
/// [`StorageError::NotFound`] so clients can distinguish "not in this
/// cluster" from "node down".
pub type PlacementFn = Arc<dyn Fn(&str) -> Result<(u64, Vec<String>), StorageError> + Send + Sync>;

/// Hub tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct HubOptions {
    /// Worker threads executing storage ops and queries. This — not the
    /// connection count — bounds the hub's storage/query concurrency.
    pub workers: usize,
    /// Event-loop reader threads multiplexing every connection (1–2 is
    /// plenty: readers only frame, decode and answer control ops).
    pub reader_threads: usize,
    /// Decoded requests the shared queue holds before the loops start
    /// answering `Busy`.
    pub queue_depth: usize,
    /// Requests one connection may have queued + executing before its
    /// loop answers `Busy`. Well-behaved request/response clients
    /// never exceed 1; the cap exists so one pipelining client cannot
    /// monopolize the pool.
    pub max_inflight_per_conn: usize,
    /// Outbound bytes one connection may have queued before its loop
    /// stops reading it (admitting no further requests). The
    /// bounded-memory guarantee against a peer that requests but never
    /// drains responses; `Busy` handles the request side, this handles
    /// the response side.
    pub conn_buffer_bytes: usize,
    /// How long a connection may sit mid-frame, or with undrained
    /// outbound bytes, without making progress before it is
    /// disconnected. Generous for slow links, finite so a dead peer can
    /// neither desynchronize a stream nor hang shutdown.
    pub stall_timeout: Duration,
    /// Byte budget of the version-pinned query-result cache (0 disables
    /// it). Sizing guidance: roughly `hot queries × mean result frame`;
    /// watch `cache().evictions()` climb to spot a budget that is too
    /// small for the hot set.
    pub cache_bytes: u64,
    /// Queries whose hub-side time (queue wait included) reaches this
    /// threshold land in the slow-query log with their full span
    /// breakdown. `Duration::ZERO` logs every query — useful in tests
    /// and when chasing a tail you have not caught yet.
    pub slow_query_threshold: Duration,
    /// Slow-query ring capacity (0 disables the log). The ring keeps
    /// the most recent entries; readers see them oldest first via
    /// [`HubHandle::metrics`] or the wire `Metrics` opcode.
    pub slow_log_entries: usize,
    /// Flight-recorder ring capacity (0 disables it): how many recent
    /// notable events — connections cut, `Busy` rejections, stall cuts,
    /// mount changes, observed node deaths — the hub retains. The ring
    /// is always on and surfaces through `Metrics`, `Health` and
    /// [`HubHandle::flight_recorder`].
    pub flight_events: usize,
}

impl Default for HubOptions {
    fn default() -> Self {
        HubOptions {
            workers: 4,
            reader_threads: 2,
            queue_depth: 64,
            max_inflight_per_conn: 16,
            conn_buffer_bytes: 8 << 20,
            stall_timeout: Duration::from_secs(30),
            cache_bytes: 64 << 20,
            slow_query_threshold: Duration::from_millis(250),
            slow_log_entries: 64,
            flight_events: 128,
        }
    }
}

/// Served-traffic counters. A view over the hub's obs instruments: the
/// fields are [`Counter`] handles registered in the hub's
/// [`MetricsRegistry`] under `hub.*`, so the same numbers surface here,
/// in [`HubHandle::metrics`], and through the wire `Metrics` opcode.
#[derive(Debug, Default)]
pub struct HubStats {
    requests: Counter,
    queries: Counter,
    busy_rejections: Counter,
    peak_conn_buffered: Counter,
    wire: StorageStats,
}

impl HubStats {
    /// Frames answered (all opcodes, `Busy` rejections included).
    pub fn requests(&self) -> u64 {
        self.requests.get()
    }

    /// Offloaded queries executed *or served from the result cache*.
    pub fn queries(&self) -> u64 {
        self.queries.get()
    }

    /// Requests refused with a `Busy` frame (queue full or per-connection
    /// in-flight cap hit). The back-pressure signal to watch when sizing
    /// [`HubOptions::workers`] and [`HubOptions::queue_depth`].
    pub fn busy_rejections(&self) -> u64 {
        self.busy_rejections.get()
    }

    /// High-water mark of any single connection's outbound queue, in
    /// bytes. Stays within [`HubOptions::conn_buffer_bytes`] plus the
    /// responses already in flight when the cap tripped — the observable
    /// form of the bounded-memory guarantee against peers that never
    /// drain their responses.
    pub fn peak_conn_buffered(&self) -> u64 {
        self.peak_conn_buffered.get()
    }

    /// Wire traffic: one round trip per frame answered, request bytes in
    /// `bytes_read`, response bytes in `bytes_written` (mirror-image of
    /// the client's view).
    pub fn wire(&self) -> &StorageStats {
        &self.wire
    }

    /// Attach every counter to `registry` under `hub.*` / `hub.wire.*`.
    fn register_into(&self, registry: &MetricsRegistry) {
        registry.register_counter("hub.requests", &self.requests);
        registry.register_counter("hub.queries", &self.queries);
        registry.register_counter("hub.busy_rejections", &self.busy_rejections);
        registry.register_counter("hub.peak_conn_buffered", &self.peak_conn_buffered);
        self.wire.register_into(registry, "hub.wire");
    }
}

// ---------------------------------------------------------------------
// bounded job queue
// ---------------------------------------------------------------------

/// Which response slot a finished job fills: the connection's next
/// in-order sequence number (legacy framing, reorder buffer) or its
/// correlation id (pipelined framing, completion order).
#[derive(Clone, Copy)]
enum Slot {
    Seq(u64),
    Id(u64),
}

struct Job {
    conn: Arc<ConnShared>,
    slot: Slot,
    request_len: u64,
    mount: Arc<Mounted>,
    request: Request,
    /// When the event loop queued the job — the worker's pop time minus
    /// this is the queue-wait span.
    enqueued_at: Instant,
    /// `(trace_id, client span id)` when the request arrived wrapped in
    /// a `Traced` frame; `None` for legacy clients.
    trace: Option<(u64, u64)>,
}

/// Per-job observability context a worker threads into the data path.
struct JobCtx {
    queue_wait_ns: u64,
    trace: Option<(u64, u64)>,
}

/// Bounded MPMC queue with non-blocking push (overload answers `Busy`
/// instead of blocking a loop) and untimed pop (workers park on the
/// condvar until a job or the drain signal arrives — no poll tick).
struct JobQueue {
    state: StdMutex<VecDeque<Job>>,
    capacity: usize,
    ready: Condvar,
}

impl JobQueue {
    fn new(capacity: usize) -> Self {
        JobQueue {
            state: StdMutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            ready: Condvar::new(),
        }
    }

    /// `false` when the queue is full — the caller answers `Busy`.
    fn try_push(&self, job: Job) -> bool {
        let mut q = self.state.lock().unwrap();
        if q.len() >= self.capacity {
            return false;
        }
        q.push_back(job);
        drop(q);
        self.ready.notify_one();
        true
    }

    /// Block until a job arrives; `None` once `drain` is set and the
    /// queue is empty (no new jobs can appear after intake stopped).
    fn pop(&self, drain: &AtomicBool) -> Option<Job> {
        let mut q = self.state.lock().unwrap();
        loop {
            if let Some(job) = q.pop_front() {
                return Some(job);
            }
            if drain.load(Ordering::Acquire) {
                return None;
            }
            q = self.ready.wait(q).unwrap();
        }
    }

    fn notify_all(&self) {
        self.ready.notify_all();
    }

    /// Jobs currently waiting (a point-in-time reading for `Health`).
    fn len(&self) -> usize {
        self.state.lock().unwrap().len()
    }
}

// ---------------------------------------------------------------------
// per-connection state
// ---------------------------------------------------------------------

/// Outbound side of one connection. Workers deposit here; only the
/// owning event loop performs socket writes.
struct OutState {
    /// Legacy-mode responses finished out of order, keyed by sequence
    /// number, awaiting their turn.
    pending: BTreeMap<u64, (Vec<u8>, u64)>,
    /// Next legacy sequence number to commit.
    next_seq: u64,
    /// Committed wire frames (length header included) not yet fully
    /// written to the socket.
    wbuf: VecDeque<Vec<u8>>,
    /// Bytes of `wbuf.front()` already written.
    woff: usize,
    /// Total unwritten bytes across `wbuf`.
    buffered: usize,
}

/// The slice of connection state shared with pool workers. The socket
/// and read-side state live privately in the owning event loop.
struct ConnShared {
    token: u64,
    /// Which event loop owns the socket (workers wake it to flush).
    loop_idx: usize,
    out: Mutex<OutState>,
    /// Requests queued or executing for this connection.
    inflight: AtomicUsize,
    /// Dataset this connection attached to (`None` = default mount).
    attached: Mutex<Option<String>>,
    /// Set when the loop disconnects; deposits become no-ops.
    dead: AtomicBool,
    /// Coalesces flush wakeups: at most one `Flush` message in flight.
    flush_queued: AtomicBool,
}

/// Commit one response onto the connection's write queue (legacy mode:
/// only once it is next in request order) and account it. The socket
/// write itself happens later, on the owning event loop.
fn deposit(shared: &Shared, conn: &ConnShared, slot: Slot, request_len: u64, frame: Vec<u8>) {
    let mut out = conn.out.lock();
    if conn.dead.load(Ordering::Acquire) {
        return;
    }
    match slot {
        Slot::Seq(seq) => {
            out.pending.insert(seq, (frame, request_len));
            while let Some((frame, req_len)) = {
                let next = out.next_seq;
                out.pending.remove(&next)
            } {
                out.next_seq += 1;
                commit(shared, &mut out, None, req_len, frame);
            }
        }
        Slot::Id(id) => commit(shared, &mut out, Some(id), request_len, frame),
    }
    let peak = out.buffered as u64;
    drop(out);
    shared.stats.peak_conn_buffered.record_max(peak);
}

fn commit(shared: &Shared, out: &mut OutState, id: Option<u64>, request_len: u64, frame: Vec<u8>) {
    let tag_len = if id.is_some() { 8 } else { 0 };
    let mut wire = Vec::with_capacity(4 + tag_len + frame.len());
    wire.extend_from_slice(&((frame.len() + tag_len) as u32).to_le_bytes());
    if let Some(id) = id {
        wire.extend_from_slice(&id.to_le_bytes());
    }
    wire.extend_from_slice(&frame);
    out.buffered += wire.len();
    let wire_len = wire.len() as u64;
    out.wbuf.push_back(wire);
    shared.stats.requests.inc();
    shared.obs.bytes_out_rate.add(wire_len);
    shared
        .stats
        .wire
        .record_wire(request_len + 4, (frame.len() + tag_len) as u64 + 4);
}

/// Wake `conn`'s event loop to flush a deposit (coalesced: a wakeup
/// already in flight is enough).
fn request_flush(shared: &Shared, conn: &ConnShared) {
    if !conn.flush_queued.swap(true, Ordering::AcqRel) {
        shared.loops[conn.loop_idx].send(LoopMsg::Flush(conn.token));
    }
}

// ---------------------------------------------------------------------
// the hub
// ---------------------------------------------------------------------

/// Cross-thread mailbox of one event loop. `send` enqueues and wakes
/// the loop through its poller — the explicit wakeup that replaced the
/// idle poll tick.
struct LoopShared {
    poller: Poller,
    inbox: StdMutex<Vec<LoopMsg>>,
}

enum LoopMsg {
    /// A freshly accepted connection to adopt.
    Adopt(TcpStream),
    /// A deposit landed for this token; flush it.
    Flush(u64),
}

impl LoopShared {
    fn send(&self, msg: LoopMsg) {
        self.inbox.lock().unwrap().push(msg);
        let _ = self.poller.notify();
    }
}

/// The hub's observability plane: the instrument registry plus the
/// handful of histograms hot paths record into, resolved once at bind
/// time so the record path never takes the registry's name-map lock.
struct HubObs {
    registry: MetricsRegistry,
    slowlog: SlowQueryLog,
    /// Always-on ring of notable events (connections cut, `Busy`
    /// rejections, mount changes, observed node deaths).
    recorder: FlightRecorder,
    /// Job pop time minus enqueue time (`hub.queue_wait_ns`).
    queue_wait: Histogram,
    /// Head resolution + result-cache probe (`hub.cache_lookup_ns`).
    cache_lookup: Histogram,
    /// Dataset open + TQL execution on a cache miss (`hub.execute_ns`).
    execute: Histogram,
    /// Service time of batched read ops (`Execute`/`GetMany`) on a pool
    /// worker (`hub.read_ns`) — the hub-side cost of one loader worker
    /// task's scatter-gather fetch, queue wait excluded.
    read: Histogram,
    /// Nanoseconds inside the mounted provider per query
    /// (`hub.storage_ns`) — a child of the execute span.
    storage: Histogram,
    /// Depositing the finished response onto the connection's write
    /// queue (`hub.flush_ns`).
    flush: Histogram,
    /// Queries admitted in the last 1/10/60 s (`hub.queries_rate`).
    queries_rate: RateWindow,
    /// Non-OK query responses in the last 1/10/60 s
    /// (`hub.errors_rate`).
    errors_rate: RateWindow,
    /// Response bytes committed in the last 1/10/60 s
    /// (`hub.bytes_out_rate`).
    bytes_out_rate: RateWindow,
    /// Rolling end-to-end query latency (`hub.query_ns.w1/.w10/.w60`)
    /// — p50/p99 over the recent windows, where `hub.execute_ns` only
    /// gives lifetime quantiles.
    query_window: WindowedHistogram,
}

impl HubObs {
    fn new(opts: &HubOptions) -> Self {
        let registry = MetricsRegistry::new();
        let slowlog = SlowQueryLog::new(opts.slow_log_entries);
        registry.register_counter("hub.slow_log.evicted", slowlog.evicted_counter());
        HubObs {
            slowlog,
            recorder: FlightRecorder::new(opts.flight_events),
            queue_wait: registry.histogram("hub.queue_wait_ns"),
            cache_lookup: registry.histogram("hub.cache_lookup_ns"),
            execute: registry.histogram("hub.execute_ns"),
            read: registry.histogram("hub.read_ns"),
            storage: registry.histogram("hub.storage_ns"),
            flush: registry.histogram("hub.flush_ns"),
            queries_rate: registry.rate("hub.queries_rate"),
            errors_rate: registry.rate("hub.errors_rate"),
            bytes_out_rate: registry.rate("hub.bytes_out_rate"),
            query_window: registry.windowed("hub.query_ns"),
            registry,
        }
    }

    /// Registry snapshot with the slow-query ring and flight-recorder
    /// tail appended — the payload both [`HubHandle::metrics`] and the
    /// wire `Metrics` opcode return.
    fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.registry.snapshot();
        snap.slow_queries = self.slowlog.entries();
        snap.events = self.recorder.events();
        snap
    }
}

struct Shared {
    registry: DatasetRegistry,
    cache: ResultCache,
    /// Backing store wire-`Mount`s are namespaced on (`None` = wire
    /// mounts refused; server-side mounts always work).
    backing: Option<DynProvider>,
    /// Names created by wire `Mount` requests. A wire mount is fully
    /// determined by its name (a fixed prefix on the backing store), so
    /// a racing re-`Mount` of a name in this set is idempotent success —
    /// while a name bound to any *other* backend must never be aliased.
    wire_mounts: Mutex<std::collections::HashSet<String>>,
    /// Cluster placement resolver (`None` = this hub is not a cluster
    /// node; `WhereIs` answers a lossless protocol error).
    placement: Option<PlacementFn>,
    stats: HubStats,
    obs: HubObs,
    queue: JobQueue,
    loops: Vec<Arc<LoopShared>>,
    next_token: AtomicU64,
    /// When the listener bound — `Health` reports uptime from it.
    started: Instant,
    /// Data-path requests queued or executing across every connection —
    /// the fleet prober reads this through `Health` to tell a loaded
    /// node from an idle one.
    in_flight: AtomicUsize,
    /// Loops stop accepting and (after slicing what they buffered)
    /// reading.
    shutdown: AtomicBool,
    /// Workers exit once the queue is empty (set after intake stopped).
    drain: AtomicBool,
    /// Workers joined: loops flush their last bytes and exit.
    drain_done: AtomicBool,
    /// How many loops finished intake; shutdown waits on the condvar.
    intake_done: StdMutex<usize>,
    intake_cv: Condvar,
    opts: HubOptions,
}

/// Builder for a serving hub.
pub struct HubBuilder {
    mounts: Vec<(String, DynProvider)>,
    default: Option<DynProvider>,
    backing: Option<DynProvider>,
    placement: Option<PlacementFn>,
    opts: HubOptions,
}

/// The multi-dataset serving hub. See the [crate docs](crate) for the
/// architecture; construct with [`Hub::builder`].
pub struct Hub;

impl Hub {
    /// Start building a hub.
    pub fn builder() -> HubBuilder {
        HubBuilder {
            mounts: Vec::new(),
            default: None,
            backing: None,
            placement: None,
            opts: HubOptions::default(),
        }
    }
}

impl HubBuilder {
    /// Mount `provider` under `name` (panics on an invalid name — use
    /// [`HubHandle::mount`] for fallible runtime mounts).
    pub fn mount(mut self, name: &str, provider: DynProvider) -> Self {
        DatasetRegistry::valid_name(name).expect("valid dataset name");
        self.mounts.push((name.to_string(), provider));
        self
    }

    /// Mount `provider` under the name `"default"` and make it the
    /// mount unattached connections resolve to — the single-dataset
    /// `DatasetServer` behaviour.
    pub fn default_mount(mut self, provider: DynProvider) -> Self {
        self.default = Some(provider);
        self
    }

    /// Backing store for wire-`Mount` requests: each wire mount becomes
    /// a [`PrefixProvider`] namespaced `datasets/<name>/` on this store.
    pub fn backing(mut self, provider: DynProvider) -> Self {
        self.backing = Some(provider);
        self
    }

    /// Install the cluster placement resolver this node answers
    /// `WhereIs` requests from. The resolver is consulted on the event
    /// loop (it must not perform storage I/O) and typically closes over
    /// a cluster's shared, epoch-versioned map.
    pub fn placement(mut self, resolver: PlacementFn) -> Self {
        self.placement = Some(resolver);
        self
    }

    /// Tuning knobs.
    pub fn options(mut self, opts: HubOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Bind `addr` (port 0 for ephemeral) and start serving. Returns
    /// immediately; the hub runs on background threads until
    /// [`HubHandle::shutdown`].
    pub fn bind(self, addr: impl ToSocketAddrs) -> std::io::Result<HubHandle> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let registry = DatasetRegistry::new();
        for (name, provider) in self.mounts {
            if let Err(e) = registry.mount(&name, provider) {
                return Err(std::io::Error::new(std::io::ErrorKind::InvalidInput, e));
            }
        }
        if let Some(provider) = self.default {
            let mounted = registry
                .mount("default", provider)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
            registry.set_default(mounted);
        }
        let n_loops = self.opts.reader_threads.max(1);
        let mut loops = Vec::with_capacity(n_loops);
        for _ in 0..n_loops {
            loops.push(Arc::new(LoopShared {
                poller: Poller::new()?,
                inbox: StdMutex::new(Vec::new()),
            }));
        }
        loops[0]
            .poller
            .add(listener.as_raw_fd(), LISTEN_KEY, Interest::READ)?;
        let shared = Arc::new(Shared {
            registry,
            cache: ResultCache::new(self.opts.cache_bytes),
            backing: self.backing,
            wire_mounts: Mutex::new(std::collections::HashSet::new()),
            placement: self.placement,
            stats: HubStats::default(),
            obs: HubObs::new(&self.opts),
            queue: JobQueue::new(self.opts.queue_depth),
            loops,
            next_token: AtomicU64::new(0),
            started: Instant::now(),
            in_flight: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            drain: AtomicBool::new(false),
            drain_done: AtomicBool::new(false),
            intake_done: StdMutex::new(0),
            intake_cv: Condvar::new(),
            opts: self.opts,
        });
        shared.stats.register_into(&shared.obs.registry);
        shared
            .cache
            .stats()
            .register_into(&shared.obs.registry, "hub.cache");
        let workers: Vec<std::thread::JoinHandle<()>> = (0..self.opts.workers.max(1))
            .map(|_| {
                let shared = shared.clone();
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        // loop 0 keeps the listener instance whose fd was registered
        // above — a clone would drop the registered fd number, breaking
        // the poll(2) backend (POLLNVAL spin, fd-number reuse clashes)
        let mut listener = Some(listener);
        let mut readers = Vec::with_capacity(n_loops);
        for idx in 0..n_loops {
            let shared = shared.clone();
            let listener = if idx == 0 { listener.take() } else { None };
            readers.push(std::thread::spawn(move || {
                event_loop(&shared, idx, listener);
            }));
        }
        Ok(HubHandle {
            addr: local_addr,
            shared,
            readers,
            workers,
        })
    }
}

/// A running hub. Dropping the handle shuts it down gracefully.
pub struct HubHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    readers: Vec<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl HubHandle {
    /// The bound address (with the ephemeral port resolved).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Served-traffic counters.
    pub fn stats(&self) -> &HubStats {
        &self.shared.stats
    }

    /// The query-result cache (hit ratio, evictions, cached bytes).
    pub fn cache(&self) -> &ResultCache {
        &self.shared.cache
    }

    /// Machine-readable snapshot of every registered instrument —
    /// counters, gauges, latency histograms and the slow-query ring.
    /// The same payload a live client retrieves through the wire
    /// `Metrics` opcode.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.obs.snapshot()
    }

    /// The hub's instrument registry. Mounted providers, embedding
    /// layers, or tests can register additional instruments here and
    /// they will surface in [`metrics`](HubHandle::metrics) and the wire
    /// `Metrics` opcode alongside the hub's own.
    pub fn metrics_registry(&self) -> &MetricsRegistry {
        &self.shared.obs.registry
    }

    /// The hub's always-on flight recorder. A cheap-clone handle: a
    /// cluster wires its map's liveness observer to each node's
    /// recorder through this, so an observed node death shows up in
    /// every surviving node's event tail.
    pub fn flight_recorder(&self) -> &FlightRecorder {
        &self.shared.obs.recorder
    }

    /// Local form of the wire `Health` opcode: uptime, load and the
    /// flight-recorder tail, without a connection.
    pub fn health(&self) -> proto::HealthReport {
        proto::HealthReport {
            uptime_ms: self.shared.started.elapsed().as_millis() as u64,
            in_flight: self.shared.in_flight.load(Ordering::Acquire) as u64,
            queue_depth: self.shared.queue.len() as u64,
            queue_cap: self.shared.opts.queue_depth as u64,
            datasets: self.shared.registry.list(),
            proto_version: proto::PROTO_VERSION,
            tracing: true,
            events: self.shared.obs.recorder.events(),
        }
    }

    /// How many event-loop reader threads multiplex this hub's
    /// connections — fixed at bind time, independent of how many
    /// connections are served.
    pub fn reader_threads(&self) -> usize {
        self.shared.loops.len()
    }

    /// Mount `provider` under `name` at runtime.
    pub fn mount(&self, name: &str, provider: DynProvider) -> Result<(), StorageError> {
        self.shared
            .registry
            .mount(name, provider)
            .map(|_| {
                self.shared.obs.recorder.record(FlightEvent::MOUNT, 0, name);
            })
            .map_err(StorageError::Io)
    }

    /// Unmount `name` (storage untouched); returns whether it existed.
    /// Cached results and head memos for the dataset are dropped.
    pub fn unmount(&self, name: &str) -> bool {
        let existed = self.shared.registry.unmount(name);
        if let Some(mounted) = &existed {
            mounted.invalidate();
            self.shared.cache.invalidate_dataset(name);
            self.shared.wire_mounts.lock().remove(name);
            self.shared
                .obs
                .recorder
                .record(FlightEvent::UNMOUNT, 0, name);
        }
        existed.is_some()
    }

    /// Sorted names of every mounted dataset.
    pub fn datasets(&self) -> Vec<String> {
        self.shared.registry.list()
    }

    /// Drop every cached result and head memo for `name`. Call after
    /// writing to a mounted dataset *out of band* (directly on its
    /// provider rather than through the hub) — the hub sees writes it
    /// routes itself, but cannot see yours.
    pub fn invalidate(&self, name: &str) {
        if let Some(mounted) = self.shared.registry.get(name) {
            mounted.invalidate();
        }
        self.shared.cache.invalidate_dataset(name);
        self.shared
            .obs
            .recorder
            .record(FlightEvent::CACHE_INVALIDATE, 0, name);
    }

    /// Description of the hub and its mounts.
    pub fn describe(&self) -> String {
        match self.shared.registry.default_mount() {
            Some(mounted) => format!("serving {} at {}", mounted.provider.describe(), self.addr),
            None => format!(
                "hub serving {} datasets at {}",
                self.shared.registry.len(),
                self.addr
            ),
        }
    }

    /// Stop gracefully, waking every thread explicitly (event-driven,
    /// no poll ticks): the listener closes and the loops stop reading
    /// (frames already buffered are still served), the worker pool
    /// drains every queued request to a deposited response, the loops
    /// flush every outbound byte, then all threads are joined.
    /// Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        for l in &self.shared.loops {
            let _ = l.poller.notify();
        }
        {
            let mut done = self.shared.intake_done.lock().unwrap();
            while *done < self.shared.loops.len() {
                done = self.shared.intake_cv.wait(done).unwrap();
            }
        }
        // intake has stopped on every loop: no new job can appear, so
        // the workers may exit on empty
        self.shared.drain.store(true, Ordering::Release);
        self.shared.queue.notify_all();
        for h in std::mem::take(&mut self.workers) {
            let _ = h.join();
        }
        // every response is deposited; let the loops flush and exit
        self.shared.drain_done.store(true, Ordering::Release);
        for l in &self.shared.loops {
            let _ = l.poller.notify();
        }
        for h in std::mem::take(&mut self.readers) {
            let _ = h.join();
        }
    }
}

impl Drop for HubHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ---------------------------------------------------------------------
// event-loop reader tier
// ---------------------------------------------------------------------

/// Loop-private side of one connection: the socket, the read
/// accumulator and the framing state machine. Everything here is
/// touched only by the owning loop thread.
struct Conn {
    state: Arc<ConnShared>,
    stream: TcpStream,
    /// Accumulated inbound bytes; complete frames are sliced off the
    /// front. Grows only with bytes actually received.
    rbuf: Vec<u8>,
    /// Parse offset into `rbuf` (compacted after each parse pass).
    rpos: usize,
    /// Next legacy-mode request sequence number.
    seq: u64,
    /// Switched to correlation-id framing via `Request::Pipeline`.
    pipelined: bool,
    /// Read interest currently registered with the poller.
    read_on: bool,
    /// Write interest currently registered with the poller.
    write_on: bool,
    /// No further bytes will be read (EOF, intake stopped, or a fatal
    /// response was sent).
    read_closed: bool,
    /// Disconnect once every outbound byte is flushed and no job is in
    /// flight (clean EOF, or a version-mismatch rejection was sent).
    close_after_flush: bool,
    /// Stall deadline currently registered (mid-frame read or undrained
    /// outbound bytes); progress re-arms it.
    armed: Option<Instant>,
}

impl Conn {
    fn mid_frame(&self) -> bool {
        self.rpos < self.rbuf.len() && !self.read_closed
    }
}

fn event_loop(shared: &Arc<Shared>, idx: usize, mut listener: Option<TcpListener>) {
    let me = shared.loops[idx].clone();
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut deadlines: BTreeSet<(Instant, u64)> = BTreeSet::new();
    let mut events: Vec<Event> = Vec::new();
    let mut scratch = vec![0u8; 64 * 1024];
    // round-robin cursor distributing accepted sockets across loops
    let mut next_loop = 0usize;
    let mut intake_done = false;
    loop {
        let timeout = deadlines
            .iter()
            .next()
            .map(|(t, _)| t.saturating_duration_since(Instant::now()));
        let _ = me.poller.wait(&mut events, timeout);

        // cross-thread messages first, so a final Flush is always
        // serviced before the exit check below
        let msgs = std::mem::take(&mut *me.inbox.lock().unwrap());
        for msg in msgs {
            match msg {
                LoopMsg::Adopt(stream) => {
                    if !intake_done {
                        adopt(shared, &me, &mut conns, idx, stream);
                    }
                }
                LoopMsg::Flush(token) => {
                    if let Some(conn) = conns.get_mut(&token) {
                        conn.state.flush_queued.store(false, Ordering::Release);
                        if !service(shared, &me, conn, &mut deadlines, &mut scratch, false, true) {
                            let cut = Some(FlightEvent::CONN_CUT);
                            disconnect(shared, &me, &mut conns, &mut deadlines, token, cut);
                        }
                    }
                }
            }
        }

        for &ev in &events {
            if ev.key == LISTEN_KEY {
                if let Some(l) = &listener {
                    accept_burst(shared, &mut conns, idx, &mut next_loop, l);
                }
                continue;
            }
            let Some(conn) = conns.get_mut(&ev.key) else {
                continue;
            };
            if ev.readable && !conn.read_on {
                // read interest is off, so this can only be the poller
                // reporting an error/hang-up condition; peek to tell a
                // benign half-close from a gone peer
                let mut probe = [0u8; 1];
                match conn.stream.peek(&mut probe) {
                    Ok(0) => {
                        conn.read_closed = true;
                        conn.close_after_flush = true;
                    }
                    Ok(_) => {} // data we are not reading (backpressure)
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        // nothing readable yet the event fired: the peer
                        // is gone and nothing can be delivered
                        let cut = Some(FlightEvent::CONN_CUT);
                        disconnect(shared, &me, &mut conns, &mut deadlines, ev.key, cut);
                        continue;
                    }
                    Err(_) => {
                        let cut = Some(FlightEvent::CONN_CUT);
                        disconnect(shared, &me, &mut conns, &mut deadlines, ev.key, cut);
                        continue;
                    }
                }
            }
            let readable = ev.readable && conn.read_on;
            if !service(
                shared,
                &me,
                conn,
                &mut deadlines,
                &mut scratch,
                readable,
                ev.writable,
            ) {
                let cut = Some(FlightEvent::CONN_CUT);
                disconnect(shared, &me, &mut conns, &mut deadlines, ev.key, cut);
            }
        }

        // stalled connections: no read/write progress before the
        // deadline means the peer is dead or malicious — cut it
        let now = Instant::now();
        while let Some(&(t, token)) = deadlines.iter().next() {
            if t > now {
                break;
            }
            deadlines.remove(&(t, token));
            if let Some(conn) = conns.get(&token) {
                if conn.armed == Some(t) {
                    let cut = Some(FlightEvent::STALL_CUT);
                    disconnect(shared, &me, &mut conns, &mut deadlines, token, cut);
                }
            }
        }

        if !intake_done && shared.shutdown.load(Ordering::Acquire) {
            if let Some(l) = listener.take() {
                let _ = me.poller.remove(l.as_raw_fd());
            }
            // requests already buffered are still sliced and served;
            // nothing further is read
            let tokens: Vec<u64> = conns.keys().copied().collect();
            for token in tokens {
                let conn = conns.get_mut(&token).expect("token just listed");
                let ok = service(shared, &me, conn, &mut deadlines, &mut scratch, false, true);
                let conn = conns.get_mut(&token).expect("token just listed");
                conn.read_closed = true;
                if !ok {
                    let cut = Some(FlightEvent::CONN_CUT);
                    disconnect(shared, &me, &mut conns, &mut deadlines, token, cut);
                } else if let Some(conn) = conns.get_mut(&token) {
                    update_interest(&me, conn, shared.opts.conn_buffer_bytes);
                }
            }
            intake_done = true;
            let mut done = shared.intake_done.lock().unwrap();
            *done += 1;
            shared.intake_cv.notify_all();
        }

        if intake_done && shared.drain_done.load(Ordering::Acquire) {
            // workers are gone: every response is deposited. Leave once
            // every outbound byte is flushed (stall deadlines bound the
            // wait on peers that stopped draining).
            let flushed = conns.values().all(|c| c.state.out.lock().wbuf.is_empty());
            if flushed {
                let tokens: Vec<u64> = conns.keys().copied().collect();
                for token in tokens {
                    disconnect(shared, &me, &mut conns, &mut deadlines, token, None);
                }
                return;
            }
        }
    }
}

/// Accept until the listener would block, spreading connections
/// round-robin across the loops.
fn accept_burst(
    shared: &Arc<Shared>,
    conns: &mut HashMap<u64, Conn>,
    my_idx: usize,
    next_loop: &mut usize,
    listener: &TcpListener,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                let target = *next_loop % shared.loops.len();
                *next_loop += 1;
                if target == my_idx {
                    let me = shared.loops[my_idx].clone();
                    adopt(shared, &me, conns, my_idx, stream);
                } else {
                    shared.loops[target].send(LoopMsg::Adopt(stream));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
    }
}

/// Register a fresh connection with this loop.
fn adopt(
    shared: &Arc<Shared>,
    me: &LoopShared,
    conns: &mut HashMap<u64, Conn>,
    idx: usize,
    stream: TcpStream,
) {
    if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
        return;
    }
    let token = shared.next_token.fetch_add(1, Ordering::Relaxed);
    if me
        .poller
        .add(stream.as_raw_fd(), token, Interest::READ)
        .is_err()
    {
        return;
    }
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_default();
    shared
        .obs
        .recorder
        .record(FlightEvent::CONN_ACCEPT, 0, format!("conn {token} {peer}"));
    let state = Arc::new(ConnShared {
        token,
        loop_idx: idx,
        out: Mutex::new(OutState {
            pending: BTreeMap::new(),
            next_seq: 0,
            wbuf: VecDeque::new(),
            woff: 0,
            buffered: 0,
        }),
        inflight: AtomicUsize::new(0),
        attached: Mutex::new(None),
        dead: AtomicBool::new(false),
        flush_queued: AtomicBool::new(false),
    });
    conns.insert(
        token,
        Conn {
            state,
            stream,
            rbuf: Vec::new(),
            rpos: 0,
            seq: 0,
            pipelined: false,
            read_on: true,
            write_on: false,
            read_closed: false,
            close_after_flush: false,
            armed: None,
        },
    );
}

/// Tear a connection down: deregister, drop buffered responses, mark
/// the shared state dead so late deposits become no-ops. `cut` names
/// the flight-recorder event to log (`None` for the hub's own shutdown
/// sweep — tearing down every peer at exit is not a notable event).
fn disconnect(
    shared: &Shared,
    me: &LoopShared,
    conns: &mut HashMap<u64, Conn>,
    deadlines: &mut BTreeSet<(Instant, u64)>,
    token: u64,
    cut: Option<&'static str>,
) {
    let Some(conn) = conns.remove(&token) else {
        return;
    };
    if let Some(kind) = cut {
        shared.obs.recorder.record(kind, 0, format!("conn {token}"));
    }
    if let Some(t) = conn.armed {
        deadlines.remove(&(t, token));
    }
    conn.state.dead.store(true, Ordering::Release);
    let mut out = conn.state.out.lock();
    out.pending.clear();
    out.wbuf.clear();
    out.buffered = 0;
    drop(out);
    let _ = me.poller.remove(conn.stream.as_raw_fd());
    // socket closes when `conn.stream` drops here
}

/// One service pass over a connection: pull inbound bytes (when
/// `readable`), slice and dispatch complete frames, flush outbound
/// bytes, then re-register interest and the stall deadline. Returns
/// `false` when the connection must be disconnected.
fn service(
    shared: &Arc<Shared>,
    me: &LoopShared,
    conn: &mut Conn,
    deadlines: &mut BTreeSet<(Instant, u64)>,
    scratch: &mut [u8],
    readable: bool,
    writable: bool,
) -> bool {
    let mut progress = false;
    if readable && !conn.read_closed {
        match pull_bytes(conn, scratch) {
            Ok(n) => progress |= n > 0,
            Err(()) => return false,
        }
    }
    let _ = writable; // flushing is unconditional: cheap no-op when empty
                      // parse/flush until neither makes progress: flushing can drop
                      // `buffered` below the cap, un-pausing complete frames that
                      // backpressure left in `rbuf` with no readiness event pending to
                      // revisit them
    loop {
        let unparsed = conn.rbuf.len();
        if !parse_frames(shared, conn) {
            return false;
        }
        let parsed = conn.rbuf.len() < unparsed;
        let wrote = match flush_out(conn) {
            Ok(n) => n > 0,
            Err(()) => return false,
        };
        progress |= parsed || wrote;
        if !parsed && !wrote {
            break;
        }
    }
    let (buffered, pending_empty) = {
        let out = conn.state.out.lock();
        (out.buffered, out.pending.is_empty() && out.wbuf.is_empty())
    };
    if conn.close_after_flush && pending_empty && conn.state.inflight.load(Ordering::Acquire) == 0 {
        return false;
    }
    update_interest(me, conn, shared.opts.conn_buffer_bytes);
    // a connection is "stalled" while it owes progress: a frame is
    // partially read or responses are partially written
    let stalled = buffered > 0 || conn.mid_frame();
    let want = if !stalled {
        None
    } else if progress || conn.armed.is_none() {
        Some(Instant::now() + shared.opts.stall_timeout)
    } else {
        conn.armed
    };
    if want != conn.armed {
        if let Some(t) = conn.armed.take() {
            deadlines.remove(&(t, conn.state.token));
        }
        if let Some(t) = want {
            deadlines.insert((t, conn.state.token));
            conn.armed = Some(t);
        }
    }
    true
}

/// Read until the socket would block (or the fairness burst is spent).
fn pull_bytes(conn: &mut Conn, scratch: &mut [u8]) -> Result<usize, ()> {
    let mut total = 0;
    loop {
        match conn.stream.read(scratch) {
            Ok(0) => {
                // clean EOF: the peer is done sending; responses for
                // requests already received still flush
                conn.read_closed = true;
                conn.close_after_flush = true;
                return Ok(total);
            }
            Ok(n) => {
                conn.rbuf.extend_from_slice(&scratch[..n]);
                total += n;
                if total >= READ_BURST {
                    return Ok(total);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(total),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return Err(()),
        }
    }
}

/// Slice complete frames off the accumulator and dispatch them, until
/// bytes run out or backpressure pauses admission.
fn parse_frames(shared: &Arc<Shared>, conn: &mut Conn) -> bool {
    loop {
        if conn.read_closed && conn.rpos >= conn.rbuf.len() {
            break;
        }
        if conn.state.out.lock().buffered >= shared.opts.conn_buffer_bytes {
            break; // backpressured: stop admitting requests
        }
        let avail = conn.rbuf.len() - conn.rpos;
        if avail < 4 {
            break;
        }
        let len = u32::from_le_bytes(
            conn.rbuf[conn.rpos..conn.rpos + 4]
                .try_into()
                .expect("4 bytes checked"),
        ) as usize;
        if len > proto::MAX_FRAME {
            return false; // lying header: the stream cannot resync
        }
        if avail < 4 + len {
            break;
        }
        let payload = conn.rbuf[conn.rpos + 4..conn.rpos + 4 + len].to_vec();
        conn.rpos += 4 + len;
        if !handle_frame(shared, conn, payload) {
            return false;
        }
        if conn.read_closed {
            break; // a fatal response (version mismatch) was just sent
        }
    }
    if conn.rpos > 0 {
        conn.rbuf.drain(..conn.rpos);
        conn.rpos = 0;
    }
    true
}

/// Write queued frames until done or the socket would block.
fn flush_out(conn: &mut Conn) -> Result<usize, ()> {
    let mut out = conn.state.out.lock();
    let mut total = 0;
    while let Some(front) = out.wbuf.front() {
        let at = out.woff;
        let front_len = front.len();
        match conn.stream.write(&front[at..]) {
            Ok(0) => return Err(()),
            Ok(n) => {
                total += n;
                out.woff += n;
                out.buffered -= n;
                if out.woff == front_len {
                    out.wbuf.pop_front();
                    out.woff = 0;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return Err(()),
        }
    }
    Ok(total)
}

/// Re-register poller interest from current state: read while intake is
/// open and backpressure allows, write while bytes are queued.
fn update_interest(me: &LoopShared, conn: &mut Conn, conn_buffer_bytes: usize) {
    let out = conn.state.out.lock();
    let want_r = !conn.read_closed && out.buffered < conn_buffer_bytes;
    let want_w = !out.wbuf.is_empty();
    drop(out);
    if want_r != conn.read_on || want_w != conn.write_on {
        let interest = Interest {
            readable: want_r,
            writable: want_w,
        };
        if me
            .poller
            .modify(conn.stream.as_raw_fd(), conn.state.token, interest)
            .is_ok()
        {
            conn.read_on = want_r;
            conn.write_on = want_w;
        }
    }
}

/// Which stage answers a request. Control ops are cheap (no storage
/// I/O) and order-sensitive (`Attach` changes what later requests mean),
/// so the loop answers them inline; data ops go to the pool.
fn is_control(req: &Request) -> bool {
    matches!(
        req,
        Request::Ping
            | Request::Hello { .. }
            | Request::Attach { .. }
            | Request::Mount { .. }
            | Request::Unmount { .. }
            | Request::ListDatasets
            | Request::Describe
            | Request::WhereIs { .. }
            | Request::Pipeline
            | Request::Metrics
            | Request::Health
    )
}

/// Decode and answer (or enqueue) one complete frame. Returns `false`
/// only for violations the stream cannot recover from.
fn handle_frame(shared: &Arc<Shared>, conn: &mut Conn, payload: Vec<u8>) -> bool {
    let request_len = payload.len() as u64;
    let (slot, body): (Slot, &[u8]) = if conn.pipelined {
        match proto::split_tagged(&payload) {
            Some((id, body)) => (Slot::Id(id), body),
            // a pipelined frame too short for its id cannot be answered
            // in any slot: fail the connection
            None => return false,
        }
    } else {
        let seq = conn.seq;
        conn.seq += 1;
        (Slot::Seq(seq), &payload[..])
    };
    let request = match proto::decode_request(body) {
        Ok(r) => r,
        Err(e) => {
            deposit(
                shared,
                &conn.state,
                slot,
                request_len,
                proto::resp_proto_err(&e.to_string()),
            );
            return true;
        }
    };
    // peel the additive trace envelope: the inner request is dispatched
    // exactly as an untraced one, the ids ride along on the job
    let (trace, request) = match request {
        Request::Traced {
            trace_id,
            parent_span,
            inner,
        } => (Some((trace_id, parent_span)), *inner),
        other => (None, other),
    };
    if is_control(&request) {
        let version_mismatch = matches!(
            &request,
            Request::Hello { version } if *version != proto::PROTO_VERSION
        );
        let switch = matches!(&request, Request::Pipeline);
        let response = dispatch_control(shared, &conn.state, request);
        deposit(shared, &conn.state, slot, request_len, response);
        if version_mismatch {
            // an incompatible client's later frames could decode to
            // nonsense; the lossless rejection above is the last frame
            // this connection gets
            conn.read_closed = true;
            conn.close_after_flush = true;
        }
        if switch {
            // the acknowledgement above went out untagged; every later
            // frame both ways carries a correlation id
            conn.pipelined = true;
        }
        return true;
    }
    // data op: resolve the namespace snapshot now, so an Attach later
    // in the pipeline cannot retroactively change it
    let attached = conn.state.attached.lock().clone();
    let mount = match &attached {
        Some(name) => match shared.registry.get(name) {
            Some(m) => m,
            None => {
                deposit(
                    shared,
                    &conn.state,
                    slot,
                    request_len,
                    proto::resp_storage_err(&StorageError::NotFound(format!(
                        "dataset {name:?} is not mounted"
                    ))),
                );
                return true;
            }
        },
        None => match shared.registry.default_mount() {
            Some(m) => m,
            None => {
                deposit(
                    shared,
                    &conn.state,
                    slot,
                    request_len,
                    proto::resp_proto_err(
                        "no dataset attached and the hub has no default mount; send Attach",
                    ),
                );
                return true;
            }
        },
    };
    // lossless back-pressure: over-cap or queue-full answers Busy in
    // this request's response slot instead of blocking the loop
    let cap = shared.opts.max_inflight_per_conn.max(1);
    let trace_id = trace.map_or(0, |(id, _)| id);
    if conn.state.inflight.load(Ordering::Acquire) >= cap {
        shared.stats.busy_rejections.inc();
        shared.obs.recorder.record(
            FlightEvent::BUSY,
            trace_id,
            format!("conn {} over in-flight cap {cap}", conn.state.token),
        );
        deposit(
            shared,
            &conn.state,
            slot,
            request_len,
            proto::resp_busy(&format!(
                "connection has {cap} requests in flight; back off and retry"
            )),
        );
        return true;
    }
    conn.state.inflight.fetch_add(1, Ordering::AcqRel);
    shared.in_flight.fetch_add(1, Ordering::AcqRel);
    let job = Job {
        conn: conn.state.clone(),
        slot,
        request_len,
        mount,
        request,
        enqueued_at: Instant::now(),
        trace,
    };
    if !shared.queue.try_push(job) {
        conn.state.inflight.fetch_sub(1, Ordering::AcqRel);
        shared.in_flight.fetch_sub(1, Ordering::AcqRel);
        shared.stats.busy_rejections.inc();
        shared.obs.recorder.record(
            FlightEvent::BUSY,
            trace_id,
            format!("worker queue of {} full", shared.opts.queue_depth),
        );
        deposit(
            shared,
            &conn.state,
            slot,
            request_len,
            proto::resp_busy(&format!(
                "worker queue of {} is full; back off and retry",
                shared.opts.queue_depth
            )),
        );
    }
    true
}

/// Answer a control op inline on the event loop.
fn dispatch_control(shared: &Shared, conn: &ConnShared, request: Request) -> Vec<u8> {
    match request {
        Request::Ping => proto::resp_unit(),
        Request::Hello { version } => proto::hello_response(version),
        Request::Pipeline => proto::resp_unit(),
        Request::Attach { dataset } => match shared.registry.get(&dataset) {
            Some(_) => {
                *conn.attached.lock() = Some(dataset);
                proto::resp_unit()
            }
            None => proto::resp_storage_err(&StorageError::NotFound(format!(
                "dataset {dataset:?} is not mounted"
            ))),
        },
        Request::Mount { dataset } => match &shared.backing {
            Some(backing) => {
                let scoped: DynProvider = match DatasetRegistry::valid_name(&dataset) {
                    Ok(()) => Arc::new(PrefixProvider::new(
                        backing.clone(),
                        format!("{WIRE_MOUNT_PREFIX}/{dataset}"),
                    )),
                    Err(e) => return proto::resp_storage_err(&StorageError::Io(e)),
                };
                match shared.registry.mount(&dataset, scoped) {
                    Ok(_) => {
                        shared
                            .obs
                            .recorder
                            .record(FlightEvent::MOUNT, 0, dataset.clone());
                        shared.wire_mounts.lock().insert(dataset);
                        proto::resp_unit()
                    }
                    // two clients racing the same wire mount define the
                    // IDENTICAL namespace (name → fixed prefix on the
                    // backing store), so the loser's re-mount is success
                    // — but a name bound to some other backend must not
                    // be silently aliased
                    Err(_) if shared.wire_mounts.lock().contains(&dataset) => proto::resp_unit(),
                    Err(e) => proto::resp_storage_err(&StorageError::Io(e)),
                }
            }
            None => proto::resp_storage_err(&StorageError::Io(
                "this hub has no backing store for wire mounts".into(),
            )),
        },
        Request::Unmount { dataset } => {
            if let Some(mounted) = shared.registry.unmount(&dataset) {
                mounted.invalidate();
                shared.cache.invalidate_dataset(&dataset);
                shared.wire_mounts.lock().remove(&dataset);
                shared
                    .obs
                    .recorder
                    .record(FlightEvent::UNMOUNT, 0, dataset.clone());
                shared
                    .obs
                    .recorder
                    .record(FlightEvent::CACHE_INVALIDATE, 0, dataset);
            }
            proto::resp_unit()
        }
        Request::Metrics => proto::resp_metrics(&shared.obs.snapshot()),
        Request::Health => proto::resp_health(&proto::HealthReport {
            uptime_ms: shared.started.elapsed().as_millis() as u64,
            in_flight: shared.in_flight.load(Ordering::Acquire) as u64,
            queue_depth: shared.queue.len() as u64,
            queue_cap: shared.opts.queue_depth as u64,
            datasets: shared.registry.list(),
            proto_version: proto::PROTO_VERSION,
            tracing: true,
            events: shared.obs.recorder.events(),
        }),
        Request::ListDatasets => proto::resp_list(&shared.registry.list()),
        Request::WhereIs { dataset } => match &shared.placement {
            Some(resolve) => match resolve(&dataset) {
                Ok((epoch, replicas)) => proto::resp_placement(epoch, &replicas),
                Err(e) => proto::resp_storage_err(&e),
            },
            None => proto::resp_proto_err(
                "this hub is not part of a cluster; WhereIs has no placement to answer",
            ),
        },
        Request::Describe => match conn.attached.lock().clone() {
            Some(name) => match shared.registry.get(&name) {
                Some(m) => proto::resp_str(&m.provider.describe()),
                None => proto::resp_storage_err(&StorageError::NotFound(format!(
                    "dataset {name:?} is not mounted"
                ))),
            },
            None => match shared.registry.default_mount() {
                Some(m) => proto::resp_str(&m.provider.describe()),
                None => proto::resp_str(&format!(
                    "hub({} datasets, no default)",
                    shared.registry.len()
                )),
            },
        },
        other => proto::resp_proto_err(&format!("{other:?} is not a control op")),
    }
}

// ---------------------------------------------------------------------
// worker stage
// ---------------------------------------------------------------------

fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop(&shared.drain) {
        let queue_wait_ns = job.enqueued_at.elapsed().as_nanos() as u64;
        shared.obs.queue_wait.record(queue_wait_ns);
        let ctx = JobCtx {
            queue_wait_ns,
            trace: job.trace,
        };
        let response = dispatch_data(shared, &job.mount, job.request, &ctx);
        let flush = SpanTimer::start();
        deposit(shared, &job.conn, job.slot, job.request_len, response);
        flush.record(&shared.obs.flush);
        job.conn.inflight.fetch_sub(1, Ordering::AcqRel);
        shared.in_flight.fetch_sub(1, Ordering::AcqRel);
        request_flush(shared, &job.conn);
    }
}

/// A write was routed into `mount`: forget head memos and drop cached
/// results that were computed against a mutable tip. Entries pinned to
/// committed versions survive (committed nodes are immutable).
fn invalidate_for_write(shared: &Shared, mount: &Mounted) {
    mount.invalidate();
    shared.cache.invalidate_mutable(&mount.name);
}

/// Answer a data op against the resolved mount, on a pool worker.
fn dispatch_data(shared: &Shared, mount: &Arc<Mounted>, request: Request, ctx: &JobCtx) -> Vec<u8> {
    let p = &mount.provider;
    match request {
        Request::Get { key } => match p.get(&key) {
            Ok(data) => proto::resp_bytes(&data),
            Err(e) => proto::resp_storage_err(&e),
        },
        Request::GetRange { key, start, end } => match p.get_range(&key, start, end) {
            Ok(data) => proto::resp_bytes(&data),
            Err(e) => proto::resp_storage_err(&e),
        },
        Request::Put { key, value } => {
            let outcome = p.put(&key, value);
            invalidate_for_write(shared, mount);
            match outcome {
                Ok(()) => proto::resp_unit(),
                Err(e) => proto::resp_storage_err(&e),
            }
        }
        Request::Delete { key } => {
            let outcome = p.delete(&key);
            invalidate_for_write(shared, mount);
            match outcome {
                Ok(()) => proto::resp_unit(),
                Err(e) => proto::resp_storage_err(&e),
            }
        }
        Request::Exists { key } => match p.exists(&key) {
            Ok(v) => proto::resp_bool(v),
            Err(e) => proto::resp_storage_err(&e),
        },
        Request::LenOf { key } => match p.len_of(&key) {
            Ok(v) => proto::resp_u64(v),
            Err(e) => proto::resp_storage_err(&e),
        },
        Request::List { prefix } => match p.list(&prefix) {
            Ok(keys) => proto::resp_list(&keys),
            Err(e) => proto::resp_storage_err(&e),
        },
        Request::DeletePrefix { prefix } => {
            let outcome = p.delete_prefix(&prefix);
            invalidate_for_write(shared, mount);
            match outcome {
                Ok(()) => proto::resp_unit(),
                Err(e) => proto::resp_storage_err(&e),
            }
        }
        Request::GetMany { requests } => {
            let n = requests.len();
            let timed = TimingProvider::new(p.clone());
            let storage_nanos = timed.nanos_counter();
            let exec = SpanTimer::start();
            let results = timed.get_many(&requests);
            let execute_ns = exec.stop();
            record_read_op(
                shared,
                mount,
                ctx,
                format!("GETMANY {n} keys"),
                execute_ns,
                storage_nanos.get(),
            );
            proto::resp_results(&results)
        }
        Request::Execute {
            gap_tolerance,
            requests,
        } => {
            let n = requests.len();
            let mut plan = ReadPlan::with_gap_tolerance(gap_tolerance);
            for r in requests {
                plan.push(r);
            }
            let timed = TimingProvider::new(p.clone());
            let storage_nanos = timed.nanos_counter();
            let exec = SpanTimer::start();
            let outcome = timed.execute(&plan);
            let execute_ns = exec.stop();
            record_read_op(
                shared,
                mount,
                ctx,
                format!("EXECUTE {n} ranges"),
                execute_ns,
                storage_nanos.get(),
            );
            proto::resp_execute(outcome.fetches, &outcome.results)
        }
        Request::Query {
            reference,
            text,
            options,
        } => handle_query(shared, mount, &reference, &text, options, ctx),
        other => proto::resp_proto_err(&format!("{other:?} is not a data op")),
    }
}

/// Account one batched read op (`Execute`/`GetMany`): service time into
/// `hub.read_ns`, and — when the op is over the slow threshold — a
/// span-tree entry in the slow log shaped exactly like a query's
/// (`queue_wait`/`execute` under a fresh root, `storage` under the
/// execute span, `parent_span` = the client's span from the trace
/// envelope). This is what connects a loader worker's fetch span to the
/// hub stages that served it: the loader sends its fetch `Execute`
/// under an ambient trace context, and this entry's `parent_span` is
/// that fetch span's id.
fn record_read_op(
    shared: &Shared,
    mount: &Arc<Mounted>,
    ctx: &JobCtx,
    text: String,
    execute_ns: u64,
    storage_ns: u64,
) {
    shared.obs.read.record(execute_ns);
    let total_ns = ctx.queue_wait_ns + execute_ns;
    if total_ns < shared.opts.slow_query_threshold.as_nanos() as u64 {
        return;
    }
    let (trace_id, client_span) = ctx.trace.unwrap_or((0, 0));
    let root_span = next_id();
    let execute_span = next_id();
    shared.obs.slowlog.push(SlowQueryEntry {
        trace_id,
        root_span,
        parent_span: client_span,
        dataset: mount.name.clone(),
        version: String::new(),
        text,
        total_ns,
        spans: vec![
            SpanRecord {
                name: "queue_wait".into(),
                span_id: next_id(),
                parent_span: root_span,
                dur_ns: ctx.queue_wait_ns,
            },
            SpanRecord {
                name: "execute".into(),
                span_id: execute_span,
                parent_span: root_span,
                dur_ns: execute_ns,
            },
            SpanRecord {
                name: "storage".into(),
                span_id: next_id(),
                parent_span: execute_span,
                dur_ns: storage_ns,
            },
        ],
    });
}

/// Resolve `reference` to its head node id with ONE storage read (the
/// version tree), instead of a full `Dataset::open_at` — the difference
/// between a cache hit costing one round trip after a memo invalidation
/// and costing a whole re-execution.
fn resolve_reference(provider: &DynProvider, reference: &str) -> Result<String, String> {
    let raw = provider
        .get(deeplake_core::version::VERSION_INFO_KEY)
        .map_err(|e| e.to_string())?;
    let tree = deeplake_core::version::VersionTree::from_json(&raw).map_err(|e| e.to_string())?;
    tree.resolve(reference).map_err(|e| e.to_string())
}

/// Execute (or serve from cache) one offloaded query.
///
/// The fast path is the whole point of the hub cache: `head memo →
/// canonical-text key → frame copy`, with **zero** storage round trips
/// and zero query planning (one round trip to re-resolve the head when
/// a write cleared the memo). The slow path executes exactly as PR 4's
/// server did, then installs the memo + cache entry — both gated on the
/// mount's invalidation epoch so a racing write can never trap a stale
/// result in the cache.
fn handle_query(
    shared: &Shared,
    mount: &Arc<Mounted>,
    reference: &str,
    text: &str,
    options: QueryOptions,
    ctx: &JobCtx,
) -> Vec<u8> {
    shared.stats.queries.inc();
    shared.obs.queries_rate.inc();
    let total = SpanTimer::start();
    // per-query storage attribution: every provider call below — head
    // resolution, dataset open, the scan workers' chunk reads — goes
    // through this wrapper, so the accumulated nanoseconds are the
    // query's storage round-trip span even though the calls come from
    // several threads
    let timed = TimingProvider::new(mount.provider.clone());
    let storage_nanos = timed.nanos_counter();
    let provider: DynProvider = Arc::new(timed);
    let epoch = mount.epoch();
    // one parse serves canonicalization, cacheability analysis and (via
    // the canonical text) every whitespace/case variant of this query
    let parsed = parser::parse(text).ok();
    let text_key = parsed
        .as_ref()
        .and_then(|q| canonical::render_query(q).ok());
    let lookup = SpanTimer::start();
    let resolved = match mount.head_memo(reference) {
        Some(memo) => Some(memo),
        None => match resolve_reference(&provider, reference) {
            Ok(head) => {
                mount.memoize_head(reference, head.clone(), epoch);
                Some(head)
            }
            // let the dataset open below render the error (a hub can be
            // queried before any dataset exists under the mount)
            Err(_) => None,
        },
    };
    let mut hit = None;
    if let (Some(tk), Some(head)) = (&text_key, &resolved) {
        let key = CacheKey {
            dataset: mount.name.clone(),
            version: head.clone(),
            text: tk.clone(),
            options,
        };
        hit = shared.cache.lookup(&key);
    }
    let cache_lookup_ns = lookup.record(&shared.obs.cache_lookup);
    let (frame, version, execute_ns) = match hit {
        // a pure frame copy
        Some(frame) => (frame, resolved, 0),
        None => {
            let exec = SpanTimer::start();
            let (frame, version) = execute_query(
                shared, mount, &provider, reference, text, options, epoch, parsed, &text_key,
            );
            let execute_ns = exec.record(&shared.obs.execute);
            // recorded per cache MISS only: hits cost zero (or one
            // memoized head re-resolution) storage nanoseconds, and on a
            // hot-cache workload those near-zero samples would drag
            // hub.storage_ns p50/p99 far below the real round-trip
            // latency the histogram exists to size
            shared.obs.storage.record(storage_nanos.get());
            (frame, version, execute_ns)
        }
    };
    let storage_ns = storage_nanos.get();
    let total_ns = ctx.queue_wait_ns + total.stop();
    shared.obs.query_window.record(total_ns);
    if frame.first() != Some(&proto::STATUS_OK) {
        shared.obs.errors_rate.inc();
    }
    if total_ns >= shared.opts.slow_query_threshold.as_nanos() as u64 {
        let (trace_id, client_span) = ctx.trace.unwrap_or((0, 0));
        let root_span = next_id();
        let execute_span = next_id();
        shared.obs.slowlog.push(SlowQueryEntry {
            trace_id,
            root_span,
            parent_span: client_span,
            dataset: mount.name.clone(),
            version: version.unwrap_or_default(),
            // the canonical rendering, never the raw client bytes
            text: text_key.unwrap_or_else(|| "<unparseable>".into()),
            total_ns,
            spans: vec![
                SpanRecord {
                    name: "queue_wait".into(),
                    span_id: next_id(),
                    parent_span: root_span,
                    dur_ns: ctx.queue_wait_ns,
                },
                SpanRecord {
                    name: "cache_lookup".into(),
                    span_id: next_id(),
                    parent_span: root_span,
                    dur_ns: cache_lookup_ns,
                },
                SpanRecord {
                    name: "execute".into(),
                    span_id: execute_span,
                    parent_span: root_span,
                    dur_ns: execute_ns,
                },
                SpanRecord {
                    name: "storage".into(),
                    span_id: next_id(),
                    parent_span: execute_span,
                    dur_ns: storage_ns,
                },
            ],
        });
    }
    frame
}

/// The cache-miss path: open a fresh dataset handle, execute, install
/// the head memo and (when cacheable) the result-cache entry. Returns
/// the response frame and the head the query resolved to.
#[allow(clippy::too_many_arguments)]
fn execute_query(
    shared: &Shared,
    mount: &Arc<Mounted>,
    provider: &DynProvider,
    reference: &str,
    text: &str,
    options: QueryOptions,
    epoch: u64,
    parsed: Option<deeplake_tql::ast::Query>,
    text_key: &Option<String>,
) -> (Vec<u8>, Option<String>) {
    // a fresh handle per query: always serves the storage's current
    // state, and queries from many clients never share mutable dataset
    // state
    let ds = match Dataset::open_at(provider.clone(), reference) {
        Ok(ds) => ds,
        Err(e) => {
            return (
                proto::resp_query_err(&format!("open {reference:?}: {e}")),
                None,
            )
        }
    };
    let head = ds.head_id().to_string();
    let outer_committed = ds.is_read_only();
    mount.memoize_head(reference, head.clone(), epoch);
    match deeplake_tql::query_opts(&ds, text, &options) {
        Ok(result) => {
            let frame = proto::resp_query(&result);
            if let (Some(tk), Some(q)) = (text_key, parsed) {
                // pinned = the result can never change: the version the
                // rows refer to is a committed (immutable) node — the
                // outer reference for plain queries, the reopened
                // AT-VERSION dataset otherwise
                let pinned = match q.version {
                    None => outer_committed,
                    Some(_) => result
                        .dataset
                        .as_ref()
                        .map(|d| d.is_read_only())
                        .unwrap_or(false),
                };
                let key = CacheKey {
                    dataset: mount.name.clone(),
                    version: head.clone(),
                    text: tk.clone(),
                    options,
                };
                shared
                    .cache
                    .insert_if(key, frame.clone(), pinned, || mount.epoch() == epoch);
            }
            (frame, Some(head))
        }
        Err(e) => (proto::resp_query_err(&e.to_string()), Some(head)),
    }
}
