//! The hub runtime: one listener, many datasets, a bounded worker pool.
//!
//! ## Staged concurrency (vs PR 4's thread-per-connection)
//!
//! Each accepted connection gets a lightweight *reader* whose only jobs
//! are framing, decoding, and the cheap control ops (`Hello`, `Attach`,
//! registry management). Everything that touches storage or runs a
//! query — the work whose parallelism must be *bounded* — is pushed as a
//! decoded job onto one bounded queue that `workers` pool threads drain.
//! A thousand idle loader connections therefore cost a thousand parked
//! readers (blocked in `read`, cheap) but storage/query concurrency
//! never exceeds the pool size.
//!
//! ## Overload is an answer, not a stall
//!
//! When a connection exceeds its in-flight cap, or the shared queue is
//! full, the reader answers that request immediately with a `Busy` frame
//! instead of enqueueing it. The response slot is preserved in request
//! order — the stream never desynchronizes, which is what makes the
//! rejection *lossless*: the client sees exactly one response per
//! request and can back off and retry.
//!
//! ## Pipelining and response order
//!
//! The protocol allows a client to pipeline frames. Workers may finish
//! out of order, so each connection keeps a reorder buffer: responses
//! are deposited under the connection's sequence number and written
//! strictly in request order.
//!
//! Workers perform the response write themselves, so a peer that stops
//! draining its socket can pin the worker in `write` — but only once:
//! the write times out after [`IN_FRAME_TIMEOUT`], the connection is
//! declared dead and its pending responses are dropped, so each
//! misbehaving connection costs the pool at most one bounded stall
//! (size the pool above the number of simultaneously-dying peers you
//! care about).
//!
//! ## Shutdown
//!
//! Graceful by construction, in stages: the accept loop stops, readers
//! stop taking frames (any request already read is still enqueued), the
//! workers drain the queue to its last response, and only then does
//! [`HubHandle::shutdown`] return. An in-flight request always drains to
//! a written response.

use std::collections::{BTreeMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::Duration;

use deeplake_core::Dataset;
use deeplake_remote::proto::{self, Request};
use deeplake_storage::{DynProvider, PrefixProvider, ReadPlan, StorageError, StorageStats};
use deeplake_tql::{canonical, parser, QueryOptions};
use parking_lot::Mutex;

use crate::cache::{CacheKey, ResultCache};
use crate::registry::{DatasetRegistry, Mounted};

/// How long a connection may stall *inside* a frame (reading a started
/// request, or writing a response the peer isn't draining) before the
/// hub gives up on it. Generous for slow links, finite so a dead peer
/// can neither desynchronize a reader nor hang shutdown.
const IN_FRAME_TIMEOUT: Duration = Duration::from_secs(30);

/// Key prefix wire-`Mount`ed datasets are namespaced under on the hub's
/// backing store.
const WIRE_MOUNT_PREFIX: &str = "datasets";

/// Cluster placement resolver a hub node consults to answer `WhereIs`
/// requests: `dataset name → (map epoch, live replica addresses)`.
/// Installed by [`HubBuilder::placement`] when the hub is one node of a
/// cluster (the resolver typically closes over the cluster's shared
/// map); a hub without one answers `WhereIs` with a lossless protocol
/// error. An unknown dataset must return
/// [`StorageError::NotFound`] so clients can distinguish "not in this
/// cluster" from "node down".
pub type PlacementFn = Arc<dyn Fn(&str) -> Result<(u64, Vec<String>), StorageError> + Send + Sync>;

/// Hub tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct HubOptions {
    /// Worker threads executing storage ops and queries. This — not the
    /// connection count — bounds the hub's storage/query concurrency.
    pub workers: usize,
    /// Decoded requests the shared queue holds before readers start
    /// answering `Busy`.
    pub queue_depth: usize,
    /// Requests one connection may have queued + executing before its
    /// reader answers `Busy`. Well-behaved request/response clients
    /// never exceed 1; the cap exists so one pipelining client cannot
    /// monopolize the pool.
    pub max_inflight_per_conn: usize,
    /// Byte budget of the version-pinned query-result cache (0 disables
    /// it). Sizing guidance: roughly `hot queries × mean result frame`;
    /// watch `cache().evictions()` climb to spot a budget that is too
    /// small for the hot set.
    pub cache_bytes: u64,
    /// How often idle readers/workers wake to check for shutdown. Also
    /// bounds how long shutdown waits for an idle connection.
    pub idle_poll: Duration,
}

impl Default for HubOptions {
    fn default() -> Self {
        HubOptions {
            workers: 4,
            queue_depth: 64,
            max_inflight_per_conn: 16,
            cache_bytes: 64 << 20,
            idle_poll: Duration::from_millis(50),
        }
    }
}

/// Served-traffic counters.
#[derive(Debug, Default)]
pub struct HubStats {
    requests: AtomicU64,
    queries: AtomicU64,
    busy_rejections: AtomicU64,
    wire: StorageStats,
}

impl HubStats {
    /// Frames answered (all opcodes, `Busy` rejections included).
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Offloaded queries executed *or served from the result cache*.
    pub fn queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Requests refused with a `Busy` frame (queue full or per-connection
    /// in-flight cap hit). The back-pressure signal to watch when sizing
    /// [`HubOptions::workers`] and [`HubOptions::queue_depth`].
    pub fn busy_rejections(&self) -> u64 {
        self.busy_rejections.load(Ordering::Relaxed)
    }

    /// Wire traffic: one round trip per frame answered, request bytes in
    /// `bytes_read`, response bytes in `bytes_written` (mirror-image of
    /// the client's view).
    pub fn wire(&self) -> &StorageStats {
        &self.wire
    }
}

// ---------------------------------------------------------------------
// bounded job queue
// ---------------------------------------------------------------------

struct Job {
    conn: Arc<ConnState>,
    seq: u64,
    request_len: u64,
    mount: Arc<Mounted>,
    request: Request,
}

/// Bounded MPMC queue with non-blocking push (overload answers `Busy`
/// instead of blocking the reader) and timed pop (workers poll the
/// shutdown flag between waits).
struct JobQueue {
    state: StdMutex<VecDeque<Job>>,
    capacity: usize,
    ready: Condvar,
}

impl JobQueue {
    fn new(capacity: usize) -> Self {
        JobQueue {
            state: StdMutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            ready: Condvar::new(),
        }
    }

    /// `false` when the queue is full — the caller answers `Busy`.
    fn try_push(&self, job: Job) -> bool {
        let mut q = self.state.lock().unwrap();
        if q.len() >= self.capacity {
            return false;
        }
        q.push_back(job);
        drop(q);
        self.ready.notify_one();
        true
    }

    fn pop_timeout(&self, timeout: Duration) -> Option<Job> {
        let mut q = self.state.lock().unwrap();
        if let Some(job) = q.pop_front() {
            return Some(job);
        }
        let (mut q, _) = self.ready.wait_timeout(q, timeout).unwrap();
        q.pop_front()
    }

    fn is_empty(&self) -> bool {
        self.state.lock().unwrap().is_empty()
    }

    fn notify_all(&self) {
        self.ready.notify_all();
    }
}

// ---------------------------------------------------------------------
// per-connection state
// ---------------------------------------------------------------------

struct OutState {
    stream: TcpStream,
    /// Responses finished out of order, keyed by sequence number.
    pending: BTreeMap<u64, (Vec<u8>, u64)>,
    /// Next sequence number to write.
    next: u64,
}

struct ConnState {
    out: Mutex<OutState>,
    /// Requests queued or executing for this connection.
    inflight: AtomicUsize,
    /// Dataset this connection attached to (`None` = default mount).
    attached: Mutex<Option<String>>,
    /// Set on a write failure; the reader stops taking frames.
    dead: AtomicBool,
}

/// Deposit a finished response and flush every response that is now
/// next-in-order. Writing under the same lock that orders the buffer
/// keeps responses strictly in request order.
fn deposit(shared: &Shared, conn: &ConnState, seq: u64, request_len: u64, frame: Vec<u8>) {
    let mut out = conn.out.lock();
    out.pending.insert(seq, (frame, request_len));
    loop {
        let next = out.next;
        let Some((frame, req_len)) = out.pending.remove(&next) else {
            break;
        };
        out.next += 1;
        shared.stats.requests.fetch_add(1, Ordering::Relaxed);
        shared
            .stats
            .wire
            .record_wire(req_len + 4, frame.len() as u64 + 4);
        if proto::write_frame(&mut out.stream, &frame).is_err() {
            conn.dead.store(true, Ordering::Release);
            out.pending.clear();
            return;
        }
    }
}

// ---------------------------------------------------------------------
// the hub
// ---------------------------------------------------------------------

struct Shared {
    registry: DatasetRegistry,
    cache: ResultCache,
    /// Backing store wire-`Mount`s are namespaced on (`None` = wire
    /// mounts refused; server-side mounts always work).
    backing: Option<DynProvider>,
    /// Names created by wire `Mount` requests. A wire mount is fully
    /// determined by its name (a fixed prefix on the backing store), so
    /// a racing re-`Mount` of a name in this set is idempotent success —
    /// while a name bound to any *other* backend must never be aliased.
    wire_mounts: Mutex<std::collections::HashSet<String>>,
    /// Cluster placement resolver (`None` = this hub is not a cluster
    /// node; `WhereIs` answers a lossless protocol error).
    placement: Option<PlacementFn>,
    stats: HubStats,
    queue: JobQueue,
    /// Readers stop taking new frames.
    shutdown: AtomicBool,
    /// Workers exit once the queue is empty (set after readers joined).
    drain: AtomicBool,
    opts: HubOptions,
}

/// Builder for a serving hub.
pub struct HubBuilder {
    mounts: Vec<(String, DynProvider)>,
    default: Option<DynProvider>,
    backing: Option<DynProvider>,
    placement: Option<PlacementFn>,
    opts: HubOptions,
}

/// The multi-dataset serving hub. See the [crate docs](crate) for the
/// architecture; construct with [`Hub::builder`].
pub struct Hub;

impl Hub {
    /// Start building a hub.
    pub fn builder() -> HubBuilder {
        HubBuilder {
            mounts: Vec::new(),
            default: None,
            backing: None,
            placement: None,
            opts: HubOptions::default(),
        }
    }
}

impl HubBuilder {
    /// Mount `provider` under `name` (panics on an invalid name — use
    /// [`HubHandle::mount`] for fallible runtime mounts).
    pub fn mount(mut self, name: &str, provider: DynProvider) -> Self {
        DatasetRegistry::valid_name(name).expect("valid dataset name");
        self.mounts.push((name.to_string(), provider));
        self
    }

    /// Mount `provider` under the name `"default"` and make it the
    /// mount unattached connections resolve to — the single-dataset
    /// `DatasetServer` behaviour.
    pub fn default_mount(mut self, provider: DynProvider) -> Self {
        self.default = Some(provider);
        self
    }

    /// Backing store for wire-`Mount` requests: each wire mount becomes
    /// a [`PrefixProvider`] namespaced `datasets/<name>/` on this store.
    pub fn backing(mut self, provider: DynProvider) -> Self {
        self.backing = Some(provider);
        self
    }

    /// Install the cluster placement resolver this node answers
    /// `WhereIs` requests from. The resolver is consulted on the reader
    /// (it must not perform storage I/O) and typically closes over a
    /// cluster's shared, epoch-versioned map.
    pub fn placement(mut self, resolver: PlacementFn) -> Self {
        self.placement = Some(resolver);
        self
    }

    /// Tuning knobs.
    pub fn options(mut self, opts: HubOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Bind `addr` (port 0 for ephemeral) and start serving. Returns
    /// immediately; the hub runs on background threads until
    /// [`HubHandle::shutdown`].
    pub fn bind(self, addr: impl ToSocketAddrs) -> std::io::Result<HubHandle> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let registry = DatasetRegistry::new();
        for (name, provider) in self.mounts {
            if let Err(e) = registry.mount(&name, provider) {
                return Err(std::io::Error::new(std::io::ErrorKind::InvalidInput, e));
            }
        }
        if let Some(provider) = self.default {
            let mounted = registry
                .mount("default", provider)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
            registry.set_default(mounted);
        }
        let shared = Arc::new(Shared {
            registry,
            cache: ResultCache::new(self.opts.cache_bytes),
            backing: self.backing,
            wire_mounts: Mutex::new(std::collections::HashSet::new()),
            placement: self.placement,
            stats: HubStats::default(),
            queue: JobQueue::new(self.opts.queue_depth),
            shutdown: AtomicBool::new(false),
            drain: AtomicBool::new(false),
            opts: self.opts,
        });
        let readers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
            Arc::new(Mutex::new(Vec::new()));
        let workers: Vec<std::thread::JoinHandle<()>> = (0..self.opts.workers.max(1))
            .map(|_| {
                let shared = shared.clone();
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let accept = {
            let shared = shared.clone();
            let readers = readers.clone();
            std::thread::spawn(move || loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        let shared = shared.clone();
                        let mut guard = readers.lock();
                        // reap finished readers so a long-lived hub does
                        // not hold one JoinHandle per connection ever
                        // served
                        guard.retain(|h| !h.is_finished());
                        guard.push(std::thread::spawn(move || {
                            reader_loop(stream, &shared);
                        }));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(shared.opts.idle_poll.min(Duration::from_millis(5)));
                    }
                    Err(_) => break,
                }
            })
        };
        Ok(HubHandle {
            addr: local_addr,
            shared,
            accept: Some(accept),
            readers,
            workers,
        })
    }
}

/// A running hub. Dropping the handle shuts it down gracefully.
pub struct HubHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<std::thread::JoinHandle<()>>,
    readers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl HubHandle {
    /// The bound address (with the ephemeral port resolved).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Served-traffic counters.
    pub fn stats(&self) -> &HubStats {
        &self.shared.stats
    }

    /// The query-result cache (hit ratio, evictions, cached bytes).
    pub fn cache(&self) -> &ResultCache {
        &self.shared.cache
    }

    /// Mount `provider` under `name` at runtime.
    pub fn mount(&self, name: &str, provider: DynProvider) -> Result<(), StorageError> {
        self.shared
            .registry
            .mount(name, provider)
            .map(|_| ())
            .map_err(StorageError::Io)
    }

    /// Unmount `name` (storage untouched); returns whether it existed.
    /// Cached results and head memos for the dataset are dropped.
    pub fn unmount(&self, name: &str) -> bool {
        let existed = self.shared.registry.unmount(name);
        if let Some(mounted) = &existed {
            mounted.invalidate();
            self.shared.cache.invalidate_dataset(name);
            self.shared.wire_mounts.lock().remove(name);
        }
        existed.is_some()
    }

    /// Sorted names of every mounted dataset.
    pub fn datasets(&self) -> Vec<String> {
        self.shared.registry.list()
    }

    /// Drop every cached result and head memo for `name`. Call after
    /// writing to a mounted dataset *out of band* (directly on its
    /// provider rather than through the hub) — the hub sees writes it
    /// routes itself, but cannot see yours.
    pub fn invalidate(&self, name: &str) {
        if let Some(mounted) = self.shared.registry.get(name) {
            mounted.invalidate();
        }
        self.shared.cache.invalidate_dataset(name);
    }

    /// Description of the hub and its mounts.
    pub fn describe(&self) -> String {
        match self.shared.registry.default_mount() {
            Some(mounted) => format!("serving {} at {}", mounted.provider.describe(), self.addr),
            None => format!(
                "hub serving {} datasets at {}",
                self.shared.registry.len(),
                self.addr
            ),
        }
    }

    /// Stop gracefully: no new connections, readers stop taking frames,
    /// the worker pool drains every queued request to a written
    /// response, then all threads are joined. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let readers: Vec<_> = std::mem::take(&mut *self.readers.lock());
        for h in readers {
            let _ = h.join();
        }
        // only after every reader is gone can no new job appear; now the
        // workers may exit on empty
        self.shared.drain.store(true, Ordering::Release);
        self.shared.queue.notify_all();
        for h in std::mem::take(&mut self.workers) {
            let _ = h.join();
        }
    }
}

impl Drop for HubHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ---------------------------------------------------------------------
// reader stage
// ---------------------------------------------------------------------

/// Which stage answers a request. Control ops are cheap (no storage
/// I/O) and order-sensitive (`Attach` changes what later requests mean),
/// so the reader answers them inline; data ops go to the pool.
fn is_control(req: &Request) -> bool {
    matches!(
        req,
        Request::Ping
            | Request::Hello { .. }
            | Request::Attach { .. }
            | Request::Mount { .. }
            | Request::Unmount { .. }
            | Request::ListDatasets
            | Request::Describe
            | Request::WhereIs { .. }
    )
}

fn reader_loop(stream: TcpStream, shared: &Shared) {
    if stream.set_nodelay(true).is_err() {
        return;
    }
    // a stalled response write must not hang shutdown forever
    if stream.set_write_timeout(Some(IN_FRAME_TIMEOUT)).is_err() {
        return;
    }
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut read_half = stream;
    let conn = Arc::new(ConnState {
        out: Mutex::new(OutState {
            stream: write_half,
            pending: BTreeMap::new(),
            next: 0,
        }),
        inflight: AtomicUsize::new(0),
        attached: Mutex::new(None),
        dead: AtomicBool::new(false),
    });
    let mut seq = 0u64;
    loop {
        if conn.dead.load(Ordering::Acquire) {
            return;
        }
        // Wait for the next frame's FIRST byte under the short idle
        // timeout (the shutdown poll tick). Only this wait may time out
        // recoverably: no frame bytes have been consumed yet, so looping
        // re-reads from a clean boundary. Once the first byte arrives,
        // the rest of the frame is read under the long in-frame timeout,
        // and any stall there fails the *connection* — resuming a
        // half-read frame would desynchronize the stream.
        if read_half
            .set_read_timeout(Some(shared.opts.idle_poll))
            .is_err()
        {
            return;
        }
        let mut first = [0u8; 1];
        let first = loop {
            match std::io::Read::read(&mut read_half, &mut first) {
                Ok(0) => return, // clean close at a frame boundary
                Ok(_) => break first[0],
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if shared.shutdown.load(Ordering::Acquire) || conn.dead.load(Ordering::Acquire)
                    {
                        return;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        };
        if read_half.set_read_timeout(Some(IN_FRAME_TIMEOUT)).is_err() {
            return;
        }
        let payload = match proto::read_frame_after(&mut read_half, first) {
            Ok(payload) => payload,
            Err(_) => return,
        };
        let this_seq = seq;
        seq += 1;
        let request_len = payload.len() as u64;
        // From here until the response is deposited, shutdown is NOT
        // checked: a request that was read always drains to a response.
        let request = match proto::decode_request(&payload) {
            Ok(r) => r,
            Err(e) => {
                deposit(
                    shared,
                    &conn,
                    this_seq,
                    request_len,
                    proto::resp_proto_err(&e.to_string()),
                );
                continue;
            }
        };
        if is_control(&request) {
            let version_mismatch = matches!(
                &request,
                Request::Hello { version } if *version != proto::PROTO_VERSION
            );
            let response = dispatch_control(shared, &conn, request);
            deposit(shared, &conn, this_seq, request_len, response);
            if version_mismatch {
                // an incompatible client's later frames could decode to
                // nonsense; the lossless rejection above is the last
                // frame this connection gets
                return;
            }
            continue;
        }
        // data op: resolve the namespace snapshot now, so an Attach
        // later in the pipeline cannot retroactively change it
        let attached = conn.attached.lock().clone();
        let mount = match &attached {
            Some(name) => match shared.registry.get(name) {
                Some(m) => m,
                None => {
                    deposit(
                        shared,
                        &conn,
                        this_seq,
                        request_len,
                        proto::resp_storage_err(&StorageError::NotFound(format!(
                            "dataset {name:?} is not mounted"
                        ))),
                    );
                    continue;
                }
            },
            None => match shared.registry.default_mount() {
                Some(m) => m,
                None => {
                    deposit(
                        shared,
                        &conn,
                        this_seq,
                        request_len,
                        proto::resp_proto_err(
                            "no dataset attached and the hub has no default mount; send Attach",
                        ),
                    );
                    continue;
                }
            },
        };
        // lossless back-pressure: over-cap or queue-full answers Busy in
        // this request's response slot instead of blocking the reader
        let cap = shared.opts.max_inflight_per_conn.max(1);
        if conn.inflight.load(Ordering::Acquire) >= cap {
            shared.stats.busy_rejections.fetch_add(1, Ordering::Relaxed);
            deposit(
                shared,
                &conn,
                this_seq,
                request_len,
                proto::resp_busy(&format!(
                    "connection has {cap} requests in flight; back off and retry"
                )),
            );
            continue;
        }
        conn.inflight.fetch_add(1, Ordering::AcqRel);
        let job = Job {
            conn: conn.clone(),
            seq: this_seq,
            request_len,
            mount,
            request,
        };
        if !shared.queue.try_push(job) {
            conn.inflight.fetch_sub(1, Ordering::AcqRel);
            shared.stats.busy_rejections.fetch_add(1, Ordering::Relaxed);
            deposit(
                shared,
                &conn,
                this_seq,
                request_len,
                proto::resp_busy(&format!(
                    "worker queue of {} is full; back off and retry",
                    shared.opts.queue_depth
                )),
            );
        }
    }
}

/// Answer a control op inline on the reader.
fn dispatch_control(shared: &Shared, conn: &ConnState, request: Request) -> Vec<u8> {
    match request {
        Request::Ping => proto::resp_unit(),
        Request::Hello { version } => proto::hello_response(version),
        Request::Attach { dataset } => match shared.registry.get(&dataset) {
            Some(_) => {
                *conn.attached.lock() = Some(dataset);
                proto::resp_unit()
            }
            None => proto::resp_storage_err(&StorageError::NotFound(format!(
                "dataset {dataset:?} is not mounted"
            ))),
        },
        Request::Mount { dataset } => match &shared.backing {
            Some(backing) => {
                let scoped: DynProvider = match DatasetRegistry::valid_name(&dataset) {
                    Ok(()) => Arc::new(PrefixProvider::new(
                        backing.clone(),
                        format!("{WIRE_MOUNT_PREFIX}/{dataset}"),
                    )),
                    Err(e) => return proto::resp_storage_err(&StorageError::Io(e)),
                };
                match shared.registry.mount(&dataset, scoped) {
                    Ok(_) => {
                        shared.wire_mounts.lock().insert(dataset);
                        proto::resp_unit()
                    }
                    // two clients racing the same wire mount define the
                    // IDENTICAL namespace (name → fixed prefix on the
                    // backing store), so the loser's re-mount is success
                    // — but a name bound to some other backend must not
                    // be silently aliased
                    Err(_) if shared.wire_mounts.lock().contains(&dataset) => proto::resp_unit(),
                    Err(e) => proto::resp_storage_err(&StorageError::Io(e)),
                }
            }
            None => proto::resp_storage_err(&StorageError::Io(
                "this hub has no backing store for wire mounts".into(),
            )),
        },
        Request::Unmount { dataset } => {
            if let Some(mounted) = shared.registry.unmount(&dataset) {
                mounted.invalidate();
                shared.cache.invalidate_dataset(&dataset);
                shared.wire_mounts.lock().remove(&dataset);
            }
            proto::resp_unit()
        }
        Request::ListDatasets => proto::resp_list(&shared.registry.list()),
        Request::WhereIs { dataset } => match &shared.placement {
            Some(resolve) => match resolve(&dataset) {
                Ok((epoch, replicas)) => proto::resp_placement(epoch, &replicas),
                Err(e) => proto::resp_storage_err(&e),
            },
            None => proto::resp_proto_err(
                "this hub is not part of a cluster; WhereIs has no placement to answer",
            ),
        },
        Request::Describe => match conn.attached.lock().clone() {
            Some(name) => match shared.registry.get(&name) {
                Some(m) => proto::resp_str(&m.provider.describe()),
                None => proto::resp_storage_err(&StorageError::NotFound(format!(
                    "dataset {name:?} is not mounted"
                ))),
            },
            None => match shared.registry.default_mount() {
                Some(m) => proto::resp_str(&m.provider.describe()),
                None => proto::resp_str(&format!(
                    "hub({} datasets, no default)",
                    shared.registry.len()
                )),
            },
        },
        other => proto::resp_proto_err(&format!("{other:?} is not a control op")),
    }
}

// ---------------------------------------------------------------------
// worker stage
// ---------------------------------------------------------------------

fn worker_loop(shared: &Shared) {
    loop {
        match shared.queue.pop_timeout(shared.opts.idle_poll) {
            Some(job) => {
                let response = dispatch_data(shared, &job.mount, job.request);
                deposit(shared, &job.conn, job.seq, job.request_len, response);
                job.conn.inflight.fetch_sub(1, Ordering::AcqRel);
            }
            None => {
                if shared.drain.load(Ordering::Acquire) && shared.queue.is_empty() {
                    return;
                }
            }
        }
    }
}

/// A write was routed into `mount`: forget head memos and drop cached
/// results that were computed against a mutable tip. Entries pinned to
/// committed versions survive (committed nodes are immutable).
fn invalidate_for_write(shared: &Shared, mount: &Mounted) {
    mount.invalidate();
    shared.cache.invalidate_mutable(&mount.name);
}

/// Answer a data op against the resolved mount, on a pool worker.
fn dispatch_data(shared: &Shared, mount: &Arc<Mounted>, request: Request) -> Vec<u8> {
    let p = &mount.provider;
    match request {
        Request::Get { key } => match p.get(&key) {
            Ok(data) => proto::resp_bytes(&data),
            Err(e) => proto::resp_storage_err(&e),
        },
        Request::GetRange { key, start, end } => match p.get_range(&key, start, end) {
            Ok(data) => proto::resp_bytes(&data),
            Err(e) => proto::resp_storage_err(&e),
        },
        Request::Put { key, value } => {
            let outcome = p.put(&key, value);
            invalidate_for_write(shared, mount);
            match outcome {
                Ok(()) => proto::resp_unit(),
                Err(e) => proto::resp_storage_err(&e),
            }
        }
        Request::Delete { key } => {
            let outcome = p.delete(&key);
            invalidate_for_write(shared, mount);
            match outcome {
                Ok(()) => proto::resp_unit(),
                Err(e) => proto::resp_storage_err(&e),
            }
        }
        Request::Exists { key } => match p.exists(&key) {
            Ok(v) => proto::resp_bool(v),
            Err(e) => proto::resp_storage_err(&e),
        },
        Request::LenOf { key } => match p.len_of(&key) {
            Ok(v) => proto::resp_u64(v),
            Err(e) => proto::resp_storage_err(&e),
        },
        Request::List { prefix } => match p.list(&prefix) {
            Ok(keys) => proto::resp_list(&keys),
            Err(e) => proto::resp_storage_err(&e),
        },
        Request::DeletePrefix { prefix } => {
            let outcome = p.delete_prefix(&prefix);
            invalidate_for_write(shared, mount);
            match outcome {
                Ok(()) => proto::resp_unit(),
                Err(e) => proto::resp_storage_err(&e),
            }
        }
        Request::GetMany { requests } => proto::resp_results(&p.get_many(&requests)),
        Request::Execute {
            gap_tolerance,
            requests,
        } => {
            let mut plan = ReadPlan::with_gap_tolerance(gap_tolerance);
            for r in requests {
                plan.push(r);
            }
            let outcome = p.execute(&plan);
            proto::resp_execute(outcome.fetches, &outcome.results)
        }
        Request::Query {
            reference,
            text,
            options,
        } => handle_query(shared, mount, &reference, &text, options),
        other => proto::resp_proto_err(&format!("{other:?} is not a data op")),
    }
}

/// Resolve `reference` to its head node id with ONE storage read (the
/// version tree), instead of a full `Dataset::open_at` — the difference
/// between a cache hit costing one round trip after a memo invalidation
/// and costing a whole re-execution.
fn resolve_reference(provider: &DynProvider, reference: &str) -> Result<String, String> {
    let raw = provider
        .get(deeplake_core::version::VERSION_INFO_KEY)
        .map_err(|e| e.to_string())?;
    let tree = deeplake_core::version::VersionTree::from_json(&raw).map_err(|e| e.to_string())?;
    tree.resolve(reference).map_err(|e| e.to_string())
}

/// Execute (or serve from cache) one offloaded query.
///
/// The fast path is the whole point of the hub cache: `head memo →
/// canonical-text key → frame copy`, with **zero** storage round trips
/// and zero query planning (one round trip to re-resolve the head when
/// a write cleared the memo). The slow path executes exactly as PR 4's
/// server did, then installs the memo + cache entry — both gated on the
/// mount's invalidation epoch so a racing write can never trap a stale
/// result in the cache.
fn handle_query(
    shared: &Shared,
    mount: &Arc<Mounted>,
    reference: &str,
    text: &str,
    options: QueryOptions,
) -> Vec<u8> {
    shared.stats.queries.fetch_add(1, Ordering::Relaxed);
    let epoch = mount.epoch();
    // one parse serves canonicalization, cacheability analysis and (via
    // the canonical text) every whitespace/case variant of this query
    let parsed = parser::parse(text).ok();
    let text_key = parsed
        .as_ref()
        .and_then(|q| canonical::render_query(q).ok());
    let resolved = match mount.head_memo(reference) {
        Some(memo) => Some(memo),
        None => match resolve_reference(&mount.provider, reference) {
            Ok(head) => {
                mount.memoize_head(reference, head.clone(), epoch);
                Some(head)
            }
            // let the dataset open below render the error (a hub can be
            // queried before any dataset exists under the mount)
            Err(_) => None,
        },
    };
    if let (Some(tk), Some(head)) = (&text_key, &resolved) {
        let key = CacheKey {
            dataset: mount.name.clone(),
            version: head.clone(),
            text: tk.clone(),
            options,
        };
        if let Some(frame) = shared.cache.lookup(&key) {
            return frame; // a pure frame copy
        }
    }
    // a fresh handle per query: always serves the storage's current
    // state, and queries from many clients never share mutable dataset
    // state
    let ds = match Dataset::open_at(mount.provider.clone(), reference) {
        Ok(ds) => ds,
        Err(e) => return proto::resp_query_err(&format!("open {reference:?}: {e}")),
    };
    let head = ds.head_id().to_string();
    let outer_committed = ds.is_read_only();
    mount.memoize_head(reference, head.clone(), epoch);
    match deeplake_tql::query_opts(&ds, text, &options) {
        Ok(result) => {
            let frame = proto::resp_query(&result);
            if let (Some(tk), Some(q)) = (text_key, parsed) {
                // pinned = the result can never change: the version the
                // rows refer to is a committed (immutable) node — the
                // outer reference for plain queries, the reopened
                // AT-VERSION dataset otherwise
                let pinned = match q.version {
                    None => outer_committed,
                    Some(_) => result
                        .dataset
                        .as_ref()
                        .map(|d| d.is_read_only())
                        .unwrap_or(false),
                };
                let key = CacheKey {
                    dataset: mount.name.clone(),
                    version: head,
                    text: tk,
                    options,
                };
                shared
                    .cache
                    .insert_if(key, frame.clone(), pinned, || mount.epoch() == epoch);
            }
            frame
        }
        Err(e) => proto::resp_query_err(&e.to_string()),
    }
}
