//! # deeplake-hub
//!
//! The multi-dataset serving hub: one deployment serving many datasets
//! to many concurrent training jobs — the paper's lakehouse positioning
//! ("heavy traffic from millions of users") applied to the PR-4 serving
//! tier, which mounted exactly one dataset per server and spent one OS
//! thread per connection.
//!
//! Three subsystems, layered between storage and the wire:
//!
//! ```text
//!  clients (RemoteProvider)          deeplake-hub
//!        │  Hello/Attach      ┌───────────────────────────┐
//!        ├────── frame ──────▶│ reader (per conn, framing) │
//!        │                    │     │ bounded job queue    │──Busy on overload
//!        │                    │     ▼                      │
//!        │                    │ worker pool (N threads)    │
//!        │                    │     │                      │
//!        │                    │ ┌───┴────────┐ ┌─────────┐ │
//!        ◀────── frame ───────│ │  registry  │ │ result  │ │
//!                             │ │ name→store │ │  cache  │ │
//!                             │ └───┬────────┘ └────┬────┘ │
//!                             └─────┼───────────────┼──────┘
//!                                mounted providers  └─ (dataset, version,
//!                               (PrefixProvider        canonical TQL,
//!                                namespaces, any       options) → encoded
//!                                backend)              response frame
//! ```
//!
//! * **[`registry`]** — named datasets behind one listener. Clients
//!   `Attach(name)` once per connection and then use every existing
//!   provider method, TQL offload and loader *unchanged*; unattached
//!   connections fall back to a default mount, which is how the
//!   single-dataset `DatasetServer` facade is now a two-line wrapper
//!   over the hub runtime.
//! * **[`hub`]** — the bounded worker pool. Readers only frame/decode;
//!   N pool workers execute storage ops and queries, so concurrency is
//!   bounded by configuration, not by connection count. Overload is
//!   answered with a lossless `Busy` frame in the request's response
//!   slot — clients back off, streams never desynchronize.
//! * **[`cache`]** — the version-pinned query-result cache. Keyed by
//!   `(dataset, resolved version, canonical TQL text, options)`, storing
//!   the already-encoded response frame: a hit is a pure frame copy with
//!   **zero** storage round trips. Writes routed through the hub
//!   invalidate mutable-tip entries; results pinned to committed
//!   versions survive, because committed versions are immutable.
//!
//! ```no_run
//! use std::sync::Arc;
//! use deeplake_hub::Hub;
//! use deeplake_storage::MemoryProvider;
//!
//! let hub = Hub::builder()
//!     .mount("mnist", Arc::new(MemoryProvider::new()))
//!     .mount("laion", Arc::new(MemoryProvider::new()))
//!     .bind("127.0.0.1:0")
//!     .unwrap();
//! println!("{}", hub.describe());
//! // clients: RemoteProvider::connect(hub.addr()) then .attach("mnist")
//! drop(hub); // graceful: drains every in-flight request
//! ```

pub mod cache;
pub mod hub;
pub mod registry;

pub use cache::{CacheKey, ResultCache};
pub use hub::{Hub, HubBuilder, HubHandle, HubOptions, HubStats, PlacementFn};
pub use registry::{DatasetRegistry, Mounted};
