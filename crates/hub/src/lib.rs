//! # deeplake-hub
//!
//! The multi-dataset serving hub: one deployment serving many datasets
//! to many concurrent training jobs — the paper's lakehouse positioning
//! ("heavy traffic from millions of users") applied to the PR-4 serving
//! tier, which mounted exactly one dataset per server and spent one OS
//! thread per connection.
//!
//! Three subsystems, layered between storage and the wire:
//!
//! ```text
//!  clients (RemoteProvider)            deeplake-hub
//!        │  Hello/Attach       ┌──────────────────────────────┐
//!        ├────── frames ──────▶│ event loops (1-2 threads,    │
//!        │  (many conns per    │  epoll: ALL conns; framing,  │
//!        │   loop; pipelined   │  control ops, backpressure)  │
//!        │   ids or in-order)  │     │ bounded job queue      │──Busy on overload
//!        │                     │     ▼                        │
//!        │                     │ worker pool (N threads)      │
//!        │                     │     │                        │
//!        │                     │ ┌───┴────────┐ ┌─────────┐   │
//!        ◀────── frames ───────│ │  registry  │ │ result  │   │
//!          (flushed by the     │ │ name→store │ │  cache  │   │
//!           owning loop, never │ └───┬────────┘ └────┬────┘   │
//!           by a pool worker)  └─────┼───────────────┼────────┘
//!                                mounted providers   └─ (dataset, version,
//!                               (PrefixProvider         canonical TQL,
//!                                namespaces, any        options) → encoded
//!                                backend)               response frame
//! ```
//!
//! * **[`registry`]** — named datasets behind one listener. Clients
//!   `Attach(name)` once per connection and then use every existing
//!   provider method, TQL offload and loader *unchanged*; unattached
//!   connections fall back to a default mount, which is how the
//!   single-dataset `DatasetServer` facade is now a two-line wrapper
//!   over the hub runtime.
//! * **[`hub`]** — the event-loop reader tier and the bounded worker
//!   pool. One or two reader threads multiplex *every* connection via
//!   readiness notification (epoll through the `polling` stand-in):
//!   they frame, decode, answer control ops inline, and push data ops
//!   onto one bounded queue that N pool workers drain — so 10 000 idle
//!   connections cost registrations, not parked OS threads, and
//!   storage/query concurrency is bounded by configuration, not by
//!   connection count. Overload is answered with a lossless `Busy`
//!   frame in the request's response slot — clients back off, streams
//!   never desynchronize. Workers never touch sockets: responses are
//!   deposited into per-connection bounded write queues and flushed by
//!   the owning loop, so a peer that stops draining pauses only its own
//!   reads, never a worker.
//! * **[`cache`]** — the version-pinned query-result cache. Keyed by
//!   `(dataset, resolved version, canonical TQL text, options)`, storing
//!   the already-encoded response frame: a hit is a pure frame copy with
//!   **zero** storage round trips. Writes routed through the hub
//!   invalidate mutable-tip entries; results pinned to committed
//!   versions survive, because committed versions are immutable.
//!
//! ```no_run
//! use std::sync::Arc;
//! use deeplake_hub::Hub;
//! use deeplake_storage::MemoryProvider;
//!
//! let hub = Hub::builder()
//!     .mount("mnist", Arc::new(MemoryProvider::new()))
//!     .mount("laion", Arc::new(MemoryProvider::new()))
//!     .bind("127.0.0.1:0")
//!     .unwrap();
//! println!("{}", hub.describe());
//! // clients: RemoteProvider::connect(hub.addr()) then .attach("mnist")
//! drop(hub); // graceful: drains every in-flight request
//! ```

pub mod cache;
pub mod hub;
pub mod registry;

pub use cache::{CacheKey, ResultCache};
pub use hub::{Hub, HubBuilder, HubHandle, HubOptions, HubStats, PlacementFn};
pub use registry::{DatasetRegistry, Mounted};
