//! Contract tests: every storage provider must satisfy the same semantics
//! (the dataloader and format layers rely on them interchangeably, §3.6).
//!
//! The check bodies live in [`deeplake_storage::contract`] so other
//! crates (notably the remote client served over loopback TCP) run the
//! *identical* suite; this file instantiates them for the five in-crate
//! providers.

use std::sync::Arc;

use deeplake_storage::contract;
use deeplake_storage::{
    LocalProvider, LruCacheProvider, MemoryProvider, NetworkProfile, PrefixProvider,
    SimulatedCloudProvider, StorageProvider,
};

fn providers() -> Vec<(&'static str, Box<dyn StorageProvider>)> {
    let tmp = std::env::temp_dir().join(format!(
        "deeplake-contract-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&tmp);
    vec![
        ("memory", Box::new(MemoryProvider::new())),
        ("local", Box::new(LocalProvider::new(tmp).unwrap())),
        (
            "sim-cloud",
            Box::new(SimulatedCloudProvider::new(
                "s3",
                MemoryProvider::new(),
                NetworkProfile::instant(),
            )),
        ),
        (
            "lru-chain",
            Box::new(LruCacheProvider::new(MemoryProvider::new(), 1 << 20)),
        ),
        (
            "prefix",
            Box::new(PrefixProvider::new(
                Arc::new(MemoryProvider::new()),
                "scoped/ds",
            )),
        ),
    ]
}

macro_rules! contract_test {
    ($test_name:ident, $check:ident) => {
        #[test]
        fn $test_name() {
            for (name, p) in providers() {
                contract::$check(name, p.as_ref());
            }
        }
    };
}

contract_test!(put_get_roundtrip_all_providers, check_put_get_roundtrip);
contract_test!(
    missing_keys_not_found_all_providers,
    check_missing_keys_not_found
);
contract_test!(
    not_found_names_requested_key_all_providers,
    check_not_found_names_requested_key
);
contract_test!(range_semantics_all_providers, check_range_semantics);
contract_test!(
    overwrite_and_delete_all_providers,
    check_overwrite_and_delete
);
contract_test!(list_prefix_sorted_all_providers, check_list_prefix_sorted);
contract_test!(
    get_many_matches_single_key_reads_all_providers,
    check_get_many_matches_single_key
);
contract_test!(
    execute_preserves_request_order_all_providers,
    check_execute_preserves_order
);
contract_test!(
    execute_clamps_over_long_ranges_in_batch_all_providers,
    check_execute_clamps_like_single_key
);
contract_test!(
    execute_rejects_inverted_ranges_like_single_key_all_providers,
    check_execute_rejects_inverted_ranges
);
contract_test!(
    execute_isolates_missing_keys_in_batch_all_providers,
    check_execute_isolates_missing_keys
);
contract_test!(
    execute_coalesces_same_key_ranges_all_providers,
    check_execute_coalesces_same_key
);
contract_test!(empty_plan_is_a_no_op_all_providers, check_empty_plan_noop);
contract_test!(concurrent_writers_all_providers, check_concurrent_writers);
