//! Contract tests: every storage provider must satisfy the same semantics
//! (the dataloader and format layers rely on them interchangeably, §3.6).

use std::sync::Arc;

use bytes::Bytes;
use deeplake_storage::{
    LocalProvider, LruCacheProvider, MemoryProvider, NetworkProfile, PrefixProvider, ReadPlan,
    ReadRequest, SimulatedCloudProvider, StorageError, StorageProvider,
};

fn providers() -> Vec<(&'static str, Box<dyn StorageProvider>)> {
    let tmp = std::env::temp_dir().join(format!(
        "deeplake-contract-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&tmp);
    vec![
        ("memory", Box::new(MemoryProvider::new())),
        ("local", Box::new(LocalProvider::new(tmp).unwrap())),
        (
            "sim-cloud",
            Box::new(SimulatedCloudProvider::new(
                "s3",
                MemoryProvider::new(),
                NetworkProfile::instant(),
            )),
        ),
        (
            "lru-chain",
            Box::new(LruCacheProvider::new(MemoryProvider::new(), 1 << 20)),
        ),
        (
            "prefix",
            Box::new(PrefixProvider::new(
                Arc::new(MemoryProvider::new()),
                "scoped/ds",
            )),
        ),
    ]
}

#[test]
fn put_get_roundtrip_all_providers() {
    for (name, p) in providers() {
        p.put("a/b/c", Bytes::from_static(b"payload")).unwrap();
        assert_eq!(
            p.get("a/b/c").unwrap(),
            Bytes::from_static(b"payload"),
            "{name}"
        );
        assert_eq!(p.len_of("a/b/c").unwrap(), 7, "{name}");
        assert!(p.exists("a/b/c").unwrap(), "{name}");
    }
}

#[test]
fn missing_keys_not_found_all_providers() {
    for (name, p) in providers() {
        assert!(
            matches!(p.get("missing"), Err(StorageError::NotFound(_))),
            "{name}"
        );
        assert!(!p.exists("missing").unwrap(), "{name}");
        assert!(
            matches!(p.len_of("missing"), Err(StorageError::NotFound(_))),
            "{name}"
        );
        p.delete("missing").unwrap(); // idempotent everywhere
    }
}

#[test]
fn range_semantics_all_providers() {
    for (name, p) in providers() {
        p.put("obj", Bytes::from_static(b"0123456789")).unwrap();
        assert_eq!(
            p.get_range("obj", 2, 6).unwrap(),
            Bytes::from_static(b"2345"),
            "{name}"
        );
        // over-long end clamps (S3 semantics)
        assert_eq!(
            p.get_range("obj", 7, 1000).unwrap(),
            Bytes::from_static(b"789"),
            "{name}"
        );
        // empty range at the boundary
        assert_eq!(p.get_range("obj", 10, 10).unwrap().len(), 0, "{name}");
        // start past end errors
        assert!(p.get_range("obj", 11, 12).is_err(), "{name}");
    }
}

#[test]
fn overwrite_and_delete_all_providers() {
    for (name, p) in providers() {
        p.put("k", Bytes::from_static(b"one")).unwrap();
        p.put("k", Bytes::from_static(b"twotwo")).unwrap();
        assert_eq!(p.len_of("k").unwrap(), 6, "{name}");
        p.delete("k").unwrap();
        assert!(!p.exists("k").unwrap(), "{name}");
    }
}

#[test]
fn list_prefix_sorted_all_providers() {
    for (name, p) in providers() {
        for key in ["t/2", "t/1", "t/10", "u/1"] {
            p.put(key, Bytes::new()).unwrap();
        }
        let listed = p.list("t/").unwrap();
        assert_eq!(listed, vec!["t/1", "t/10", "t/2"], "{name}");
        p.delete_prefix("t/").unwrap();
        assert!(p.list("t/").unwrap().is_empty(), "{name}");
        assert!(p.exists("u/1").unwrap(), "{name}");
    }
}

#[test]
fn get_many_matches_single_key_reads_all_providers() {
    for (name, p) in providers() {
        p.put("batch/a", Bytes::from_static(b"alpha")).unwrap();
        p.put("batch/b", Bytes::from_static(b"0123456789")).unwrap();
        let requests = vec![
            ReadRequest::whole("batch/a"),
            ReadRequest::range("batch/b", 2, 6),
            ReadRequest::whole("batch/b"),
            ReadRequest::range("batch/a", 0, 2),
        ];
        let results = p.get_many(&requests);
        assert_eq!(results.len(), 4, "{name}");
        assert_eq!(
            results[0].as_ref().unwrap(),
            &Bytes::from_static(b"alpha"),
            "{name}"
        );
        assert_eq!(
            results[1].as_ref().unwrap(),
            &Bytes::from_static(b"2345"),
            "{name}"
        );
        assert_eq!(
            results[2].as_ref().unwrap(),
            &Bytes::from_static(b"0123456789"),
            "{name}"
        );
        assert_eq!(
            results[3].as_ref().unwrap(),
            &Bytes::from_static(b"al"),
            "{name}"
        );
    }
}

#[test]
fn execute_preserves_request_order_all_providers() {
    for (name, p) in providers() {
        p.put("obj", Bytes::from_static(b"abcdefghij")).unwrap();
        let mut plan = ReadPlan::new();
        plan.range("obj", 6, 9);
        plan.range("obj", 0, 3);
        plan.whole("obj");
        let outcome = p.execute(&plan);
        assert_eq!(outcome.results.len(), 3, "{name}");
        assert_eq!(
            outcome.results[0].as_ref().unwrap(),
            &Bytes::from_static(b"ghi"),
            "{name}"
        );
        assert_eq!(
            outcome.results[1].as_ref().unwrap(),
            &Bytes::from_static(b"abc"),
            "{name}"
        );
        assert_eq!(
            outcome.results[2].as_ref().unwrap(),
            &Bytes::from_static(b"abcdefghij"),
            "{name}"
        );
        assert!(
            outcome.fetches <= 3,
            "{name}: coalescing must never add fetches"
        );
    }
}

#[test]
fn execute_clamps_over_long_ranges_in_batch_all_providers() {
    for (name, p) in providers() {
        p.put("obj", Bytes::from_static(b"0123456789")).unwrap();
        let mut plan = ReadPlan::new();
        plan.range("obj", 8, 1000); // over-long end clamps, S3 style
        plan.range("obj", 10, 10); // empty range at the boundary
        plan.range("obj", 11, 12); // start past end errors
        plan.range("obj", 0, 4); // and an in-bounds request still succeeds
        let outcome = p.execute(&plan);
        assert_eq!(
            outcome.results[0].as_ref().unwrap(),
            &Bytes::from_static(b"89"),
            "{name}"
        );
        assert_eq!(outcome.results[1].as_ref().unwrap().len(), 0, "{name}");
        assert!(
            matches!(
                outcome.results[2],
                Err(StorageError::RangeOutOfBounds { .. })
            ),
            "{name}: got {:?}",
            outcome.results[2]
        );
        assert_eq!(
            outcome.results[3].as_ref().unwrap(),
            &Bytes::from_static(b"0123"),
            "{name}"
        );
    }
}

#[test]
fn execute_rejects_inverted_ranges_like_single_key_all_providers() {
    for (name, p) in providers() {
        p.put("obj", Bytes::from_static(b"0123456789")).unwrap();
        // single-key ground truth
        assert!(p.get_range("obj", 8, 3).is_err(), "{name}");
        let mut plan = ReadPlan::new();
        plan.range("obj", 8, 3); // inverted: must fail
        plan.range("obj", 0, 4); // valid neighbour: must still succeed
        let outcome = p.execute(&plan);
        assert!(
            matches!(
                outcome.results[0],
                Err(StorageError::RangeOutOfBounds { .. })
            ),
            "{name}: got {:?}",
            outcome.results[0]
        );
        assert_eq!(
            outcome.results[1].as_ref().unwrap(),
            &Bytes::from_static(b"0123"),
            "{name}"
        );
    }
}

#[test]
fn execute_isolates_missing_keys_in_batch_all_providers() {
    for (name, p) in providers() {
        p.put("have", Bytes::from_static(b"data")).unwrap();
        let mut plan = ReadPlan::new();
        plan.whole("have");
        plan.whole("ghost");
        plan.range("ghost", 0, 2);
        plan.range("have", 1, 3);
        let outcome = p.execute(&plan);
        assert_eq!(
            outcome.results[0].as_ref().unwrap(),
            &Bytes::from_static(b"data"),
            "{name}"
        );
        assert!(
            matches!(outcome.results[1], Err(StorageError::NotFound(_))),
            "{name}"
        );
        assert!(
            matches!(outcome.results[2], Err(StorageError::NotFound(_))),
            "{name}"
        );
        assert_eq!(
            outcome.results[3].as_ref().unwrap(),
            &Bytes::from_static(b"at"),
            "{name}"
        );
        // get_many agrees with execute on the same shape
        let via_get_many = p.get_many(plan.requests());
        assert_eq!(via_get_many.len(), 4, "{name}");
        assert!(via_get_many[0].is_ok() && via_get_many[3].is_ok(), "{name}");
        assert!(
            via_get_many[1].is_err() && via_get_many[2].is_err(),
            "{name}"
        );
    }
}

#[test]
fn execute_coalesces_same_key_ranges_all_providers() {
    for (name, p) in providers() {
        let payload: Vec<u8> = (0..=255).collect();
        p.put("chunk", Bytes::from(payload)).unwrap();
        // 8 adjacent 32-byte reads of one object coalesce into one fetch
        let mut plan = ReadPlan::new();
        for i in 0..8u64 {
            plan.range("chunk", i * 32, (i + 1) * 32);
        }
        let outcome = p.execute(&plan);
        for (i, r) in outcome.results.iter().enumerate() {
            let data = r.as_ref().unwrap();
            assert_eq!(data.len(), 32, "{name}");
            assert_eq!(data[0], (i * 32) as u8, "{name}");
        }
        assert!(
            outcome.fetches <= 1,
            "{name}: adjacent ranges on one key must merge (got {} fetches)",
            outcome.fetches
        );
    }
}

#[test]
fn empty_plan_is_a_no_op_all_providers() {
    for (name, p) in providers() {
        let outcome = p.execute(&ReadPlan::new());
        assert!(outcome.results.is_empty(), "{name}");
        assert_eq!(outcome.fetches, 0, "{name}");
        assert!(p.get_many(&[]).is_empty(), "{name}");
    }
}

#[test]
fn concurrent_writers_all_providers() {
    for (name, p) in providers() {
        let p = Arc::new(p);
        let mut handles = Vec::new();
        for t in 0..4 {
            let p = Arc::clone(&p);
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    let key = format!("c{t}/{i}");
                    p.put(&key, Bytes::from(vec![t as u8; 32])).unwrap();
                    assert_eq!(p.get(&key).unwrap().len(), 32);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(p.list("c").unwrap().len(), 200, "{name}");
    }
}
