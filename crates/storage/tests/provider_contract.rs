//! Contract tests: every storage provider must satisfy the same semantics
//! (the dataloader and format layers rely on them interchangeably, §3.6).

use std::sync::Arc;

use bytes::Bytes;
use deeplake_storage::{
    LocalProvider, LruCacheProvider, MemoryProvider, NetworkProfile, PrefixProvider,
    SimulatedCloudProvider, StorageError, StorageProvider,
};

fn providers() -> Vec<(&'static str, Box<dyn StorageProvider>)> {
    let tmp = std::env::temp_dir().join(format!(
        "deeplake-contract-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&tmp);
    vec![
        ("memory", Box::new(MemoryProvider::new())),
        ("local", Box::new(LocalProvider::new(tmp).unwrap())),
        (
            "sim-cloud",
            Box::new(SimulatedCloudProvider::new(
                "s3",
                MemoryProvider::new(),
                NetworkProfile::instant(),
            )),
        ),
        (
            "lru-chain",
            Box::new(LruCacheProvider::new(MemoryProvider::new(), 1 << 20)),
        ),
        (
            "prefix",
            Box::new(PrefixProvider::new(Arc::new(MemoryProvider::new()), "scoped/ds")),
        ),
    ]
}

#[test]
fn put_get_roundtrip_all_providers() {
    for (name, p) in providers() {
        p.put("a/b/c", Bytes::from_static(b"payload")).unwrap();
        assert_eq!(p.get("a/b/c").unwrap(), Bytes::from_static(b"payload"), "{name}");
        assert_eq!(p.len_of("a/b/c").unwrap(), 7, "{name}");
        assert!(p.exists("a/b/c").unwrap(), "{name}");
    }
}

#[test]
fn missing_keys_not_found_all_providers() {
    for (name, p) in providers() {
        assert!(matches!(p.get("missing"), Err(StorageError::NotFound(_))), "{name}");
        assert!(!p.exists("missing").unwrap(), "{name}");
        assert!(matches!(p.len_of("missing"), Err(StorageError::NotFound(_))), "{name}");
        p.delete("missing").unwrap(); // idempotent everywhere
    }
}

#[test]
fn range_semantics_all_providers() {
    for (name, p) in providers() {
        p.put("obj", Bytes::from_static(b"0123456789")).unwrap();
        assert_eq!(p.get_range("obj", 2, 6).unwrap(), Bytes::from_static(b"2345"), "{name}");
        // over-long end clamps (S3 semantics)
        assert_eq!(p.get_range("obj", 7, 1000).unwrap(), Bytes::from_static(b"789"), "{name}");
        // empty range at the boundary
        assert_eq!(p.get_range("obj", 10, 10).unwrap().len(), 0, "{name}");
        // start past end errors
        assert!(p.get_range("obj", 11, 12).is_err(), "{name}");
    }
}

#[test]
fn overwrite_and_delete_all_providers() {
    for (name, p) in providers() {
        p.put("k", Bytes::from_static(b"one")).unwrap();
        p.put("k", Bytes::from_static(b"twotwo")).unwrap();
        assert_eq!(p.len_of("k").unwrap(), 6, "{name}");
        p.delete("k").unwrap();
        assert!(!p.exists("k").unwrap(), "{name}");
    }
}

#[test]
fn list_prefix_sorted_all_providers() {
    for (name, p) in providers() {
        for key in ["t/2", "t/1", "t/10", "u/1"] {
            p.put(key, Bytes::new()).unwrap();
        }
        let listed = p.list("t/").unwrap();
        assert_eq!(listed, vec!["t/1", "t/10", "t/2"], "{name}");
        p.delete_prefix("t/").unwrap();
        assert!(p.list("t/").unwrap().is_empty(), "{name}");
        assert!(p.exists("u/1").unwrap(), "{name}");
    }
}

#[test]
fn concurrent_writers_all_providers() {
    for (name, p) in providers() {
        let p = Arc::new(p);
        let mut handles = Vec::new();
        for t in 0..4 {
            let p = Arc::clone(&p);
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    let key = format!("c{t}/{i}");
                    p.put(&key, Bytes::from(vec![t as u8; 32])).unwrap();
                    assert_eq!(p.get(&key).unwrap().len(), 32);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(p.list("c").unwrap().len(), 200, "{name}");
    }
}
