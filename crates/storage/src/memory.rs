//! In-memory storage provider.

use std::collections::BTreeMap;

use bytes::Bytes;
use parking_lot::RwLock;

use crate::error::StorageError;
use crate::plan::{execute_coalesced, ReadPlan, ReadRequest, ReadResult};
use crate::provider::{clamp_range, StorageProvider};
use crate::stats::StorageStats;
use crate::Result;

/// The simplest provider: a thread-safe ordered map. Also serves as the
/// backing store of [`crate::SimulatedCloudProvider`] and the cache tier of
/// [`crate::LruCacheProvider`].
#[derive(Default)]
pub struct MemoryProvider {
    objects: RwLock<BTreeMap<String, Bytes>>,
    stats: StorageStats,
}

impl MemoryProvider {
    /// Create an empty provider.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored objects.
    pub fn object_count(&self) -> usize {
        self.objects.read().len()
    }

    /// Total stored bytes.
    pub fn total_bytes(&self) -> u64 {
        self.objects.read().values().map(|v| v.len() as u64).sum()
    }

    /// Traffic counters (successful reads/writes; errors are not counted).
    pub fn stats(&self) -> &StorageStats {
        &self.stats
    }
}

impl StorageProvider for MemoryProvider {
    fn get(&self, key: &str) -> Result<Bytes> {
        let data = self
            .objects
            .read()
            .get(key)
            .cloned()
            .ok_or_else(|| StorageError::NotFound(key.to_string()))?;
        self.stats.record_get(data.len() as u64);
        Ok(data)
    }

    fn get_range(&self, key: &str, start: u64, end: u64) -> Result<Bytes> {
        let guard = self.objects.read();
        let obj = guard
            .get(key)
            .ok_or_else(|| StorageError::NotFound(key.to_string()))?;
        let (s, e) = clamp_range(start, end, obj.len() as u64)?;
        let data = obj.slice(s..e);
        self.stats.record_range(data.len() as u64);
        Ok(data)
    }

    fn put(&self, key: &str, value: Bytes) -> Result<()> {
        self.stats.record_put(value.len() as u64);
        self.objects.write().insert(key.to_string(), value);
        Ok(())
    }

    fn delete(&self, key: &str) -> Result<()> {
        self.objects.write().remove(key);
        Ok(())
    }

    fn exists(&self, key: &str) -> Result<bool> {
        Ok(self.objects.read().contains_key(key))
    }

    fn len_of(&self, key: &str) -> Result<u64> {
        self.objects
            .read()
            .get(key)
            .map(|v| v.len() as u64)
            .ok_or_else(|| StorageError::NotFound(key.to_string()))
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        Ok(self
            .objects
            .read()
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect())
    }

    fn describe(&self) -> String {
        format!("memory({} objects)", self.object_count())
    }

    /// Batched reads under a single read lock — no per-request lock churn.
    fn get_many(&self, requests: &[ReadRequest]) -> Vec<Result<Bytes>> {
        let mut bytes_moved = 0u64;
        let out: Vec<Result<Bytes>> = {
            let guard = self.objects.read();
            requests
                .iter()
                .map(|r| {
                    let obj = guard
                        .get(&r.key)
                        .ok_or_else(|| StorageError::NotFound(r.key.clone()))?;
                    let data = match r.range {
                        None => obj.clone(),
                        Some((start, end)) => {
                            let (s, e) = clamp_range(start, end, obj.len() as u64)?;
                            obj.slice(s..e)
                        }
                    };
                    bytes_moved += data.len() as u64;
                    Ok(data)
                })
                .collect()
        };
        self.stats
            .record_batch(requests.len() as u64, requests.len() as u64, bytes_moved);
        out
    }

    /// The whole plan is served under a single read lock; coalescing
    /// costs nothing here (slices share the stored buffer) and keeps the
    /// reported fetch count consistent with the other providers.
    fn execute(&self, plan: &ReadPlan) -> ReadResult {
        let mut bytes_moved = 0u64;
        let result = {
            let guard = self.objects.read();
            execute_coalesced(plan, |f| {
                let obj = guard
                    .get(&f.key)
                    .ok_or_else(|| StorageError::NotFound(f.key.clone()))?;
                let data = match f.range {
                    None => obj.clone(),
                    Some((start, end)) => {
                        let (s, e) = clamp_range(start, end, obj.len() as u64)?;
                        obj.slice(s..e)
                    }
                };
                bytes_moved += data.len() as u64;
                Ok(data)
            })
        };
        self.stats
            .record_batch(plan.len() as u64, result.fetches, bytes_moved);
        result
    }

    /// One write-lock pass removes the whole subtree.
    fn delete_prefix(&self, prefix: &str) -> Result<()> {
        let mut removed = 0u64;
        self.objects.write().retain(|k, _| {
            let doomed = k.starts_with(prefix);
            removed += doomed as u64;
            !doomed
        });
        self.stats.record_delete_prefix(removed);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let p = MemoryProvider::new();
        p.put("a/b", Bytes::from_static(b"hello")).unwrap();
        assert_eq!(p.get("a/b").unwrap(), Bytes::from_static(b"hello"));
        assert_eq!(p.len_of("a/b").unwrap(), 5);
        assert!(p.exists("a/b").unwrap());
        assert!(!p.exists("a/c").unwrap());
    }

    #[test]
    fn get_missing_is_not_found() {
        let p = MemoryProvider::new();
        assert!(matches!(p.get("nope"), Err(StorageError::NotFound(_))));
        assert!(matches!(p.len_of("nope"), Err(StorageError::NotFound(_))));
    }

    #[test]
    fn range_reads() {
        let p = MemoryProvider::new();
        p.put("k", Bytes::from_static(b"0123456789")).unwrap();
        assert_eq!(p.get_range("k", 2, 5).unwrap(), Bytes::from_static(b"234"));
        // over-long end is clamped, S3 style
        assert_eq!(p.get_range("k", 8, 100).unwrap(), Bytes::from_static(b"89"));
        assert!(p.get_range("k", 11, 12).is_err());
    }

    #[test]
    fn delete_is_idempotent() {
        let p = MemoryProvider::new();
        p.put("k", Bytes::from_static(b"x")).unwrap();
        p.delete("k").unwrap();
        p.delete("k").unwrap();
        assert!(!p.exists("k").unwrap());
    }

    #[test]
    fn list_by_prefix_sorted() {
        let p = MemoryProvider::new();
        for k in ["t/c2", "t/c1", "u/x", "t/c10"] {
            p.put(k, Bytes::new()).unwrap();
        }
        assert_eq!(p.list("t/").unwrap(), vec!["t/c1", "t/c10", "t/c2"]);
        assert_eq!(p.list("").unwrap().len(), 4);
        assert!(p.list("zz/").unwrap().is_empty());
    }

    #[test]
    fn delete_prefix_removes_subtree() {
        let p = MemoryProvider::new();
        for k in ["a/1", "a/2", "b/1"] {
            p.put(k, Bytes::new()).unwrap();
        }
        p.delete_prefix("a/").unwrap();
        assert_eq!(p.list("").unwrap(), vec!["b/1"]);
    }

    #[test]
    fn counters() {
        let p = MemoryProvider::new();
        p.put("x", Bytes::from(vec![0u8; 10])).unwrap();
        p.put("y", Bytes::from(vec![0u8; 20])).unwrap();
        assert_eq!(p.object_count(), 2);
        assert_eq!(p.total_bytes(), 30);
    }

    #[test]
    fn stats_count_traffic() {
        let p = MemoryProvider::new();
        p.put("k", Bytes::from(vec![0u8; 100])).unwrap();
        assert_eq!(p.stats().bytes_written(), 100);
        p.get("k").unwrap();
        p.get_range("k", 0, 40).unwrap();
        assert_eq!(p.stats().bytes_read(), 140);
        assert_eq!(p.stats().requests(), 2);
        let mut plan = ReadPlan::new();
        plan.whole("k");
        p.execute(&plan);
        assert_eq!(p.stats().bytes_read(), 240);
        assert_eq!(p.stats().batch_requests(), 1);
        // a failed read moves (and counts) nothing
        assert!(p.get("missing").is_err());
        assert_eq!(p.stats().bytes_read(), 240);
    }

    #[test]
    fn concurrent_access() {
        use std::sync::Arc;
        let p = Arc::new(MemoryProvider::new());
        let mut handles = Vec::new();
        for t in 0..8 {
            let p = p.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    let key = format!("t{t}/k{i}");
                    p.put(&key, Bytes::from(vec![t as u8; 64])).unwrap();
                    assert_eq!(p.get(&key).unwrap().len(), 64);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(p.object_count(), 800);
    }
}
