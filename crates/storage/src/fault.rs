//! Deterministic fault injection for any [`StorageProvider`].
//!
//! The serving stack's failure-handling claims — a dead replica fails
//! over, a slow replica times out, a transient drop retries — need
//! *reproducible* faults to be testable. [`FaultPlan`] describes a fault
//! schedule ("succeed N ops then fail forever", "fail the next K ops
//! then recover", "delay every op by D"), and [`FaultProvider`] applies
//! it in front of a wrapped provider: every provider call first consults
//! the plan, pays any injected delay, and either proceeds or surfaces
//! the plan's error without touching the backing store.
//!
//! Three fault shapes cover the cluster test matrix:
//!
//! * **N-then-fail** ([`FaultPlan::fail_after`]) — a node that serves
//!   traffic normally and then dies mid-run; the failure is permanent
//!   until [`FaultProvider::heal`].
//! * **Transient** ([`FaultPlan::fail_next`]) — K dropped requests that
//!   then recover; exercises bounded retry instead of failover.
//! * **Slow replica** ([`FaultPlan::delay`]) — every op sleeps first,
//!   so a client read timeout (or a latency-pick policy) can be driven
//!   deterministically.
//!
//! Plans can also be swapped at runtime ([`FaultProvider::set_plan`],
//! [`FaultProvider::trip`]) so a test can kill a healthy replica at a
//! chosen moment. Injected failures default to a [`StorageError::Io`]
//! naming the injection — the same shape a dropped connection produces —
//! so the layers above exercise their real transport-error paths.

use std::time::Duration;

use bytes::Bytes;
use deeplake_obs::{Counter, MetricsRegistry};

use crate::error::StorageError;
use crate::plan::{ReadPlan, ReadRequest, ReadResult};
use crate::provider::StorageProvider;
use crate::{DynProvider, Result};

/// A deterministic fault schedule. Counters are per-[`FaultProvider`]
/// (each provider call is one "op"); the plan itself is immutable state
/// that can be swapped at runtime.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Ops that succeed before failures start (`None` = never trip).
    fail_after: Option<u64>,
    /// Failures injected once tripped (`None` = fail forever).
    fail_count: Option<u64>,
    /// Delay paid by every op, failing or not (a slow replica).
    delay: Duration,
    /// The error injected failures surface.
    error: StorageError,
}

impl FaultPlan {
    /// A healthy plan: no failures, no delay.
    pub fn none() -> Self {
        FaultPlan {
            fail_after: None,
            fail_count: None,
            delay: Duration::ZERO,
            error: Self::default_error(),
        }
    }

    /// Succeed `n` ops, then fail every later op until healed — the
    /// "node dies mid-run" schedule the failover tests kill replicas
    /// with.
    pub fn fail_after(n: u64) -> Self {
        FaultPlan {
            fail_after: Some(n),
            fail_count: None,
            ..Self::none()
        }
    }

    /// Fail the next `k` ops, then recover — a transient connection
    /// drop, exercising retry rather than failover.
    pub fn fail_next(k: u64) -> Self {
        FaultPlan {
            fail_after: Some(0),
            fail_count: Some(k),
            ..Self::none()
        }
    }

    /// Pay `delay` before every op (slow replica / injected timeout).
    /// Composes with the failure schedules.
    pub fn delay(mut self, delay: Duration) -> Self {
        self.delay = delay;
        self
    }

    /// Override the injected error (default: an I/O error naming the
    /// injection, the shape of a dropped connection).
    pub fn error(mut self, error: StorageError) -> Self {
        self.error = error;
        self
    }

    fn default_error() -> StorageError {
        StorageError::Io("injected fault: connection dropped".into())
    }

    /// Outcome for the op with zero-based index `op`: `Some(err)` =
    /// inject a failure.
    fn outcome(&self, op: u64) -> Option<StorageError> {
        let tripped_at = self.fail_after?;
        if op < tripped_at {
            return None;
        }
        match self.fail_count {
            Some(k) if op >= tripped_at + k => None, // recovered
            _ => Some(self.error.clone()),
        }
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

/// A [`StorageProvider`] that applies a [`FaultPlan`] in front of a
/// wrapped provider. Failing ops never reach the backing store.
pub struct FaultProvider {
    inner: DynProvider,
    plan: parking_lot::Mutex<FaultPlan>,
    ops: Counter,
    injected: Counter,
    delay_ns: Counter,
}

impl FaultProvider {
    /// Wrap `inner` under `plan`.
    pub fn new(inner: DynProvider, plan: FaultPlan) -> Self {
        FaultProvider {
            inner,
            plan: parking_lot::Mutex::new(plan),
            ops: Counter::new(),
            injected: Counter::new(),
            delay_ns: Counter::new(),
        }
    }

    /// Attach the fault counters to `registry` under `<prefix>.*`
    /// (`ops`, `faults_injected`, `injected_delay_ns`) so sim runs can
    /// read "N faults injected" from the same snapshot that reports
    /// client-visible failures.
    pub fn register_into(&self, registry: &MetricsRegistry, prefix: &str) {
        registry.register_counter(&format!("{prefix}.ops"), &self.ops);
        registry.register_counter(&format!("{prefix}.faults_injected"), &self.injected);
        registry.register_counter(&format!("{prefix}.injected_delay_ns"), &self.delay_ns);
    }

    /// Replace the schedule (op counter keeps running — `fail_after(n)`
    /// installed now counts `n` from the ops already seen... so reset
    /// the counter too, making the new plan's clock start here).
    pub fn set_plan(&self, plan: FaultPlan) {
        let mut guard = self.plan.lock();
        *guard = plan;
        self.ops.reset();
    }

    /// Fail every op from now on — "pull the plug" on a healthy replica
    /// at a moment the test chooses.
    pub fn trip(&self) {
        self.set_plan(FaultPlan::fail_after(0));
    }

    /// Back to healthy.
    pub fn heal(&self) {
        self.set_plan(FaultPlan::none());
    }

    /// Ops that reached the provider (injected failures included).
    pub fn ops_seen(&self) -> u64 {
        self.ops.get()
    }

    /// Failures injected so far.
    pub fn faults_injected(&self) -> u64 {
        self.injected.get()
    }

    /// Total injected delay paid so far, in nanoseconds.
    pub fn injected_delay_ns(&self) -> u64 {
        self.delay_ns.get()
    }

    /// The wrapped provider (bypasses the plan — for test assertions).
    pub fn inner(&self) -> &DynProvider {
        &self.inner
    }

    /// Consult the plan for one op: pay the delay, then either pass or
    /// surface the injected error.
    fn gate(&self) -> Result<()> {
        let (delay, outcome) = {
            let plan = self.plan.lock();
            // the plan lock serializes gates, so read-then-add is one
            // atomic op-number draw
            let op = self.ops.get();
            self.ops.add(1);
            (plan.delay, plan.outcome(op))
        };
        if !delay.is_zero() {
            self.delay_ns
                .add(delay.as_nanos().min(u64::MAX as u128) as u64);
            std::thread::sleep(delay);
        }
        match outcome {
            None => Ok(()),
            Some(err) => {
                self.injected.inc();
                Err(err)
            }
        }
    }
}

impl StorageProvider for FaultProvider {
    fn get(&self, key: &str) -> Result<Bytes> {
        self.gate()?;
        self.inner.get(key)
    }

    fn get_range(&self, key: &str, start: u64, end: u64) -> Result<Bytes> {
        self.gate()?;
        self.inner.get_range(key, start, end)
    }

    fn put(&self, key: &str, value: Bytes) -> Result<()> {
        self.gate()?;
        self.inner.put(key, value)
    }

    fn delete(&self, key: &str) -> Result<()> {
        self.gate()?;
        self.inner.delete(key)
    }

    fn exists(&self, key: &str) -> Result<bool> {
        self.gate()?;
        self.inner.exists(key)
    }

    fn len_of(&self, key: &str) -> Result<u64> {
        self.gate()?;
        self.inner.len_of(key)
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        self.gate()?;
        self.inner.list(prefix)
    }

    fn describe(&self) -> String {
        format!("faulted({})", self.inner.describe())
    }

    /// One batched call is one op: a tripped plan fails every slot (the
    /// connection died, not one object), matching the remote client's
    /// batch-wide transport-error behaviour.
    fn get_many(&self, requests: &[ReadRequest]) -> Vec<Result<Bytes>> {
        match self.gate() {
            Ok(()) => self.inner.get_many(requests),
            Err(e) => requests.iter().map(|_| Err(e.clone())).collect(),
        }
    }

    fn execute(&self, plan: &ReadPlan) -> ReadResult {
        match self.gate() {
            Ok(()) => self.inner.execute(plan),
            Err(e) => ReadResult {
                results: plan.requests().iter().map(|_| Err(e.clone())).collect(),
                fetches: 0,
            },
        }
    }

    fn delete_prefix(&self, prefix: &str) -> Result<()> {
        self.gate()?;
        self.inner.delete_prefix(prefix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryProvider;
    use std::sync::Arc;
    use std::time::Instant;

    fn faulted(plan: FaultPlan) -> FaultProvider {
        let inner = MemoryProvider::new();
        inner.put("k", Bytes::from_static(b"v")).unwrap();
        FaultProvider::new(Arc::new(inner), plan)
    }

    #[test]
    fn healthy_plan_passes_everything_through() {
        let p = faulted(FaultPlan::none());
        for _ in 0..10 {
            assert_eq!(p.get("k").unwrap(), Bytes::from_static(b"v"));
        }
        assert_eq!(p.faults_injected(), 0);
        assert_eq!(p.ops_seen(), 10);
    }

    #[test]
    fn n_then_fail_is_permanent() {
        let p = faulted(FaultPlan::fail_after(3));
        for _ in 0..3 {
            assert!(p.get("k").is_ok());
        }
        for _ in 0..5 {
            assert!(matches!(p.get("k"), Err(StorageError::Io(_))));
        }
        assert_eq!(p.faults_injected(), 5);
        // writes are gated too, and never reach the backing store
        assert!(p.put("new", Bytes::from_static(b"x")).is_err());
        assert!(!p.inner().exists("new").unwrap());
    }

    #[test]
    fn transient_faults_recover() {
        let p = faulted(FaultPlan::fail_next(2));
        assert!(p.get("k").is_err());
        assert!(p.get("k").is_err());
        assert!(p.get("k").is_ok(), "plan recovers after k failures");
        assert_eq!(p.faults_injected(), 2);
    }

    #[test]
    fn batched_calls_fail_every_slot() {
        let p = faulted(FaultPlan::fail_after(0));
        let reqs = [ReadRequest::whole("k"), ReadRequest::range("k", 0, 1)];
        for slot in p.get_many(&reqs) {
            assert!(matches!(slot, Err(StorageError::Io(_))));
        }
        let mut plan = ReadPlan::new();
        plan.whole("k");
        let out = p.execute(&plan);
        assert_eq!(out.fetches, 0);
        assert!(out.results.iter().all(|r| r.is_err()));
    }

    #[test]
    fn delay_is_paid_even_on_success() {
        let p = faulted(FaultPlan::none().delay(Duration::from_millis(5)));
        let t = Instant::now();
        for _ in 0..4 {
            p.get("k").unwrap();
        }
        assert!(t.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn trip_and_heal_at_runtime() {
        let p = faulted(FaultPlan::none());
        assert!(p.get("k").is_ok());
        p.trip();
        assert!(p.get("k").is_err());
        p.heal();
        assert!(p.get("k").is_ok());
    }

    #[test]
    fn custom_errors_surface_verbatim() {
        let p = faulted(FaultPlan::fail_after(0).error(StorageError::Busy("drowning".into())));
        assert_eq!(
            p.get("k").unwrap_err(),
            StorageError::Busy("drowning".into())
        );
    }
}
