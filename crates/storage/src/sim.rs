//! Simulated cloud object storage.
//!
//! The paper's evaluation (Fig. 8-10) runs against AWS S3, MinIO on a LAN,
//! and cross-region links. We do not have those, so per DESIGN.md we model
//! what matters for a dataloader: every request pays a first-byte latency
//! plus `bytes ÷ bandwidth` of transfer time, and requests from different
//! worker threads proceed in parallel (each worker has its own connection,
//! as HTTP clients do). The cost is realized as an actual `thread::sleep`,
//! so wall-clock benchmarks through this provider behave like networked
//! storage, only scaled down by [`NetworkProfile::scale`].

use std::time::Duration;

use bytes::Bytes;

use crate::plan::{execute_coalesced, ReadPlan, ReadResult};
use crate::provider::StorageProvider;
use crate::stats::StorageStats;
use crate::Result;

/// Latency/bandwidth model of one storage location.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkProfile {
    /// Time to first byte for any request.
    pub first_byte_latency: Duration,
    /// Sustained transfer bandwidth in bytes/second.
    pub bandwidth_bps: u64,
    /// Extra fixed overhead for PUTs (connection + commit).
    pub put_overhead: Duration,
    /// Scale factor applied to every computed delay; `0.1` makes the
    /// simulation run 10× faster than real time while preserving ratios.
    pub scale: f64,
}

impl NetworkProfile {
    /// No delays at all (useful to reuse code paths in unit tests).
    pub fn instant() -> Self {
        NetworkProfile {
            first_byte_latency: Duration::ZERO,
            bandwidth_bps: u64::MAX,
            put_overhead: Duration::ZERO,
            scale: 0.0,
        }
    }

    /// AWS-S3-like, same region: ~15 ms first byte, ~95 MB/s per
    /// connection.
    pub fn s3() -> Self {
        NetworkProfile {
            first_byte_latency: Duration::from_millis(15),
            bandwidth_bps: 95_000_000,
            put_overhead: Duration::from_millis(10),
            scale: 1.0,
        }
    }

    /// GCS-like, same region.
    pub fn gcs() -> Self {
        NetworkProfile {
            first_byte_latency: Duration::from_millis(18),
            bandwidth_bps: 90_000_000,
            put_overhead: Duration::from_millis(12),
            scale: 1.0,
        }
    }

    /// MinIO on another machine in a local network (Fig. 8): lower latency
    /// than S3 but a single 1 Gbps link shared across connections, which is
    /// why the paper observes *both* Deep Lake and WebDataset slower on
    /// MinIO than on S3 — per-connection bandwidth is the bottleneck.
    pub fn minio_lan() -> Self {
        NetworkProfile {
            first_byte_latency: Duration::from_millis(4),
            bandwidth_bps: 30_000_000,
            put_overhead: Duration::from_millis(3),
            scale: 1.0,
        }
    }

    /// Cross-region (us-east → us-central, Fig. 10): high latency, good
    /// but not local bandwidth.
    pub fn cross_region() -> Self {
        NetworkProfile {
            first_byte_latency: Duration::from_millis(45),
            bandwidth_bps: 60_000_000,
            put_overhead: Duration::from_millis(30),
            scale: 1.0,
        }
    }

    /// Local NVMe-like profile for baseline comparison.
    pub fn local_disk() -> Self {
        NetworkProfile {
            first_byte_latency: Duration::from_micros(80),
            bandwidth_bps: 2_000_000_000,
            put_overhead: Duration::from_micros(50),
            scale: 1.0,
        }
    }

    /// Return a copy with every delay multiplied by `scale` (e.g. `0.02`
    /// to run the Fig. 8 benchmark 50× faster than real time).
    pub fn scaled(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Duration a GET of `bytes` costs under this profile.
    pub fn get_cost(&self, bytes: u64) -> Duration {
        self.apply(self.first_byte_latency + self.transfer(bytes))
    }

    /// Duration a PUT of `bytes` costs under this profile.
    pub fn put_cost(&self, bytes: u64) -> Duration {
        self.apply(self.first_byte_latency + self.put_overhead + self.transfer(bytes))
    }

    /// Duration of a metadata-only request (exists / length / list page).
    pub fn meta_cost(&self) -> Duration {
        self.apply(self.first_byte_latency)
    }

    /// Duration of a *batch* of `fetches` concurrent GETs moving `bytes`
    /// in total. The requests go out together over the worker's
    /// connection pool, so first-byte latency is paid once for the whole
    /// batch (the §3.5 overlap effect); transfer still pays for every
    /// byte since the connections share the link.
    pub fn batch_cost(&self, fetches: u64, bytes: u64) -> Duration {
        if fetches == 0 {
            return Duration::ZERO;
        }
        self.apply(self.first_byte_latency + self.transfer(bytes))
    }

    fn transfer(&self, bytes: u64) -> Duration {
        if self.bandwidth_bps == u64::MAX {
            Duration::ZERO
        } else {
            Duration::from_secs_f64(bytes as f64 / self.bandwidth_bps as f64)
        }
    }

    fn apply(&self, d: Duration) -> Duration {
        if self.scale <= 0.0 {
            Duration::ZERO
        } else if (self.scale - 1.0).abs() < f64::EPSILON {
            d
        } else {
            d.mul_f64(self.scale)
        }
    }
}

/// A provider that behaves like networked object storage: it wraps a
/// backing provider and sleeps for the modeled request cost, while counting
/// traffic in [`StorageStats`].
pub struct SimulatedCloudProvider<P> {
    inner: P,
    profile: NetworkProfile,
    stats: StorageStats,
    name: String,
}

impl<P: StorageProvider> SimulatedCloudProvider<P> {
    /// Wrap `inner` with the given network profile.
    pub fn new(name: impl Into<String>, inner: P, profile: NetworkProfile) -> Self {
        SimulatedCloudProvider {
            inner,
            profile,
            stats: StorageStats::new(),
            name: name.into(),
        }
    }

    /// Traffic counters.
    pub fn stats(&self) -> &StorageStats {
        &self.stats
    }

    /// The active network profile.
    pub fn profile(&self) -> NetworkProfile {
        self.profile
    }

    /// Access the wrapped provider (no delays).
    pub fn inner(&self) -> &P {
        &self.inner
    }

    fn pay(&self, cost: Duration) {
        if !cost.is_zero() {
            std::thread::sleep(cost);
        }
    }
}

impl<P: StorageProvider> StorageProvider for SimulatedCloudProvider<P> {
    fn get(&self, key: &str) -> Result<Bytes> {
        let data = self.inner.get(key)?;
        self.stats.record_get(data.len() as u64);
        self.pay(self.profile.get_cost(data.len() as u64));
        Ok(data)
    }

    fn get_range(&self, key: &str, start: u64, end: u64) -> Result<Bytes> {
        let data = self.inner.get_range(key, start, end)?;
        self.stats.record_range(data.len() as u64);
        self.pay(self.profile.get_cost(data.len() as u64));
        Ok(data)
    }

    fn put(&self, key: &str, value: Bytes) -> Result<()> {
        let n = value.len() as u64;
        self.inner.put(key, value)?;
        self.stats.record_put(n);
        self.pay(self.profile.put_cost(n));
        Ok(())
    }

    fn delete(&self, key: &str) -> Result<()> {
        self.inner.delete(key)?;
        self.pay(self.profile.meta_cost());
        Ok(())
    }

    fn exists(&self, key: &str) -> Result<bool> {
        let r = self.inner.exists(key)?;
        self.pay(self.profile.meta_cost());
        Ok(r)
    }

    fn len_of(&self, key: &str) -> Result<u64> {
        let r = self.inner.len_of(key)?;
        self.pay(self.profile.meta_cost());
        Ok(r)
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        let r = self.inner.list(prefix)?;
        self.pay(self.profile.meta_cost() * list_pages(r.len()));
        Ok(r)
    }

    fn describe(&self) -> String {
        format!("sim-cloud({}, over {})", self.name, self.inner.describe())
    }

    /// Batched reads: coalesce, fetch every merged span from the backing
    /// store (no per-fetch delay), then pay a **single amortized network
    /// charge** for the whole batch — first-byte latency once plus the
    /// transfer time of all bytes moved. This is the §3.5/§4.6 overlap
    /// effect the single-key path cannot express.
    fn execute(&self, plan: &ReadPlan) -> ReadResult {
        let mut bytes_moved = 0u64;
        let result = execute_coalesced(plan, |f| {
            let data = match f.range {
                None => self.inner.get(&f.key)?,
                Some((start, end)) => self.inner.get_range(&f.key, start, end)?,
            };
            bytes_moved += data.len() as u64;
            Ok(data)
        });
        self.stats
            .record_batch(plan.len() as u64, result.fetches, bytes_moved);
        self.pay(self.profile.batch_cost(result.fetches, bytes_moved));
        result
    }

    /// Batched prefix deletion: one list round trip per 1000-key page
    /// plus a single amortized delete charge, instead of `meta_cost` per
    /// key (the doc/behaviour mismatch the single-key loop risked: N
    /// latency charges for what object stores do in one bulk call). An
    /// empty prefix pays one list page and nothing else.
    fn delete_prefix(&self, prefix: &str) -> Result<()> {
        let keys = self.inner.list(prefix)?;
        self.pay(self.profile.meta_cost() * list_pages(keys.len()));
        if keys.is_empty() {
            return Ok(());
        }
        let n = keys.len() as u64;
        for key in keys {
            self.inner.delete(&key)?;
        }
        self.stats.record_delete_prefix(n);
        self.pay(self.profile.meta_cost());
        Ok(())
    }
}

/// ListObjectsV2-style paging: 1000 keys per round trip, and even an
/// empty listing costs one request.
fn list_pages(keys: usize) -> u32 {
    keys.div_ceil(1000).max(1) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryProvider;
    use std::time::Instant;

    fn sim(profile: NetworkProfile) -> SimulatedCloudProvider<MemoryProvider> {
        SimulatedCloudProvider::new("test", MemoryProvider::new(), profile)
    }

    #[test]
    fn instant_profile_adds_no_delay() {
        let p = sim(NetworkProfile::instant());
        p.put("k", Bytes::from(vec![0u8; 1_000_000])).unwrap();
        let t = Instant::now();
        for _ in 0..100 {
            p.get("k").unwrap();
        }
        assert!(t.elapsed() < Duration::from_millis(500));
        assert_eq!(p.stats().get_requests(), 100);
    }

    #[test]
    fn latency_is_paid_per_request() {
        let profile = NetworkProfile {
            first_byte_latency: Duration::from_millis(5),
            bandwidth_bps: u64::MAX,
            put_overhead: Duration::ZERO,
            scale: 1.0,
        };
        let p = sim(profile);
        p.inner().put("k", Bytes::from_static(b"x")).unwrap();
        let t = Instant::now();
        for _ in 0..10 {
            p.get("k").unwrap();
        }
        assert!(t.elapsed() >= Duration::from_millis(50));
    }

    #[test]
    fn bandwidth_scales_with_size() {
        let profile = NetworkProfile {
            first_byte_latency: Duration::ZERO,
            bandwidth_bps: 10_000_000, // 10 MB/s
            put_overhead: Duration::ZERO,
            scale: 1.0,
        };
        assert_eq!(profile.get_cost(10_000_000), Duration::from_secs(1));
        assert_eq!(profile.get_cost(1_000_000), Duration::from_millis(100));
    }

    #[test]
    fn scaled_profile_shrinks_cost() {
        let p = NetworkProfile::s3().scaled(0.01);
        assert!(p.get_cost(1_000_000) < NetworkProfile::s3().get_cost(1_000_000));
    }

    #[test]
    fn range_requests_pay_only_for_range() {
        let profile = NetworkProfile {
            first_byte_latency: Duration::ZERO,
            bandwidth_bps: 1_000_000,
            put_overhead: Duration::ZERO,
            scale: 1.0,
        };
        let p = sim(profile);
        p.inner()
            .put("k", Bytes::from(vec![0u8; 1_000_000]))
            .unwrap();
        let t = Instant::now();
        p.get_range("k", 0, 10_000).unwrap();
        // 10 KB at 1 MB/s = 10 ms, far less than the 1 s a full GET costs
        assert!(t.elapsed() < Duration::from_millis(300));
        assert_eq!(p.stats().range_requests(), 1);
        assert_eq!(p.stats().bytes_read(), 10_000);
    }

    #[test]
    fn profiles_are_ordered_sensibly() {
        // paper's orderings: local < minio latency < s3 latency < cross-region
        assert!(
            NetworkProfile::local_disk().first_byte_latency
                < NetworkProfile::minio_lan().first_byte_latency
        );
        assert!(
            NetworkProfile::minio_lan().first_byte_latency
                < NetworkProfile::s3().first_byte_latency
        );
        assert!(
            NetworkProfile::s3().first_byte_latency
                < NetworkProfile::cross_region().first_byte_latency
        );
        // minio per-connection bandwidth below s3 (the Fig. 8 effect)
        assert!(NetworkProfile::minio_lan().bandwidth_bps < NetworkProfile::s3().bandwidth_bps);
    }

    #[test]
    fn batch_coalesces_and_amortizes_latency() {
        use crate::plan::ReadPlan;
        let profile = NetworkProfile {
            first_byte_latency: Duration::from_millis(5),
            bandwidth_bps: u64::MAX,
            put_overhead: Duration::ZERO,
            scale: 1.0,
        };
        let p = sim(profile);
        p.inner().put("k", Bytes::from(vec![7u8; 4096])).unwrap();
        p.inner().put("j", Bytes::from(vec![9u8; 4096])).unwrap();
        // 10 logical reads over two keys; ranges on `k` merge into one span
        let mut plan = ReadPlan::with_gap_tolerance(0);
        for i in 0..8u64 {
            plan.range("k", i * 512, (i + 1) * 512);
        }
        plan.whole("j");
        plan.range("j", 0, 100);
        let t = Instant::now();
        let outcome = p.execute(&plan);
        let wall = t.elapsed();
        assert!(outcome.results.iter().all(|r| r.is_ok()));
        // fewer backend fetches than logical requests (2 vs 10)
        assert_eq!(outcome.fetches, 2);
        assert_eq!(p.stats().logical_reads(), 10);
        assert_eq!(p.stats().coalesced_fetches(), 2);
        assert_eq!(p.stats().round_trips(), 1, "one amortized charge per batch");
        // latency paid once, not ten times
        assert!(
            wall < Duration::from_millis(50),
            "amortized batch took {wall:?}"
        );
        assert!(
            wall >= Duration::from_millis(5),
            "the batch still pays one first byte"
        );
    }

    #[test]
    fn list_paging_boundaries() {
        assert_eq!(list_pages(0), 1);
        assert_eq!(list_pages(1), 1);
        assert_eq!(list_pages(1000), 1);
        assert_eq!(list_pages(1001), 2);
        assert_eq!(list_pages(2000), 2);
    }

    #[test]
    fn delete_prefix_batches_round_trips() {
        let p = sim(NetworkProfile::instant());
        for i in 0..20 {
            p.inner()
                .put(&format!("pfx/{i}"), Bytes::from_static(b"x"))
                .unwrap();
        }
        p.delete_prefix("pfx/").unwrap();
        assert!(p.inner().list("pfx/").unwrap().is_empty());
        assert_eq!(p.stats().delete_requests(), 20);
        // one list page + one bulk delete, not 20 per-key charges
        assert_eq!(p.stats().round_trips(), 1);
    }

    #[test]
    fn stats_flow_through() {
        let p = sim(NetworkProfile::instant());
        p.put("a", Bytes::from(vec![1u8; 10])).unwrap();
        p.get("a").unwrap();
        p.get_range("a", 0, 5).unwrap();
        assert_eq!(p.stats().put_requests(), 1);
        assert_eq!(p.stats().bytes_written(), 10);
        assert_eq!(p.stats().bytes_read(), 15);
    }
}
