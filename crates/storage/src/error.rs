//! Storage error type.

/// Errors surfaced by storage providers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// The key does not exist.
    NotFound(String),
    /// A byte range was outside the object's extent.
    RangeOutOfBounds {
        /// Requested range start.
        start: u64,
        /// Requested range end (exclusive).
        end: u64,
        /// Object length.
        len: u64,
    },
    /// An I/O failure from the underlying medium.
    Io(String),
    /// The provider is read-only (e.g. a checked-out historical commit).
    ReadOnly,
    /// A serving tier refused the request because it is at capacity
    /// (bounded worker queue full or the connection's in-flight cap
    /// reached). The request was NOT executed; the caller should back
    /// off and retry. Carries the server's human-readable hint.
    Busy(String),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::NotFound(key) => write!(f, "key not found: {key}"),
            StorageError::RangeOutOfBounds { start, end, len } => {
                write!(
                    f,
                    "range {start}..{end} out of bounds for object of {len} bytes"
                )
            }
            StorageError::Io(msg) => write!(f, "storage io error: {msg}"),
            StorageError::ReadOnly => write!(f, "storage is read-only"),
            StorageError::Busy(hint) => write!(f, "server busy: {hint}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::NotFound {
            StorageError::NotFound(e.to_string())
        } else {
            StorageError::Io(e.to_string())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_notfound_maps_to_notfound() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        assert!(matches!(StorageError::from(io), StorageError::NotFound(_)));
        let io = std::io::Error::new(std::io::ErrorKind::PermissionDenied, "nope");
        assert!(matches!(StorageError::from(io), StorageError::Io(_)));
    }

    #[test]
    fn display_non_empty() {
        for e in [
            StorageError::NotFound("k".into()),
            StorageError::RangeOutOfBounds {
                start: 0,
                end: 5,
                len: 2,
            },
            StorageError::Io("x".into()),
            StorageError::ReadOnly,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
