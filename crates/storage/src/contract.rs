//! The provider contract as reusable checks.
//!
//! Every [`StorageProvider`] — the five in this crate, third-party ones,
//! and the remote client — must satisfy the same observable semantics:
//! the dataset, query and loader layers use them interchangeably (§3.6).
//! The checks live in the library (not a test file) so other crates can
//! run the *identical* suite against their providers; a loopback-served
//! `RemoteProvider` must be indistinguishable from the provider the
//! server mounts.
//!
//! Each `check_*` function panics with a labelled assertion on violation.
//! [`check_provider_contract`] runs them all against an empty provider
//! (the checks write under distinct key prefixes and clean up nothing —
//! pass a scratch instance).

use std::sync::Arc;

use bytes::Bytes;

use crate::error::StorageError;
use crate::plan::{ReadPlan, ReadRequest};
use crate::provider::StorageProvider;

/// Whole-object writes read back verbatim, with length and existence.
pub fn check_put_get_roundtrip(name: &str, p: &dyn StorageProvider) {
    p.put("a/b/c", Bytes::from_static(b"payload")).unwrap();
    assert_eq!(
        p.get("a/b/c").unwrap(),
        Bytes::from_static(b"payload"),
        "{name}"
    );
    assert_eq!(p.len_of("a/b/c").unwrap(), 7, "{name}");
    assert!(p.exists("a/b/c").unwrap(), "{name}");
}

/// Missing keys: `NotFound` from reads, `false` from exists, idempotent
/// delete.
pub fn check_missing_keys_not_found(name: &str, p: &dyn StorageProvider) {
    assert!(
        matches!(p.get("missing"), Err(StorageError::NotFound(_))),
        "{name}"
    );
    assert!(!p.exists("missing").unwrap(), "{name}");
    assert!(
        matches!(p.len_of("missing"), Err(StorageError::NotFound(_))),
        "{name}"
    );
    p.delete("missing").unwrap(); // idempotent everywhere
}

/// `NotFound` must name exactly the key the caller asked for — scoped,
/// cached, simulated and remote providers all rebase/propagate the key so
/// the error a caller sees is independent of the provider stack.
pub fn check_not_found_names_requested_key(name: &str, p: &dyn StorageProvider) {
    let key = "contract/absent-key";
    for (op, err) in [
        ("get", p.get(key).unwrap_err()),
        ("get_range", p.get_range(key, 0, 4).unwrap_err()),
        ("len_of", p.len_of(key).unwrap_err()),
    ] {
        assert_eq!(
            err,
            StorageError::NotFound(key.to_string()),
            "{name}: {op} must report the requested key"
        );
    }
    let many = p.get_many(&[ReadRequest::whole(key), ReadRequest::range(key, 0, 2)]);
    for r in many {
        assert_eq!(
            r.unwrap_err(),
            StorageError::NotFound(key.to_string()),
            "{name}: get_many slots must report the requested key"
        );
    }
    let mut plan = ReadPlan::new();
    plan.whole(key);
    for r in p.execute(&plan).results {
        assert_eq!(
            r.unwrap_err(),
            StorageError::NotFound(key.to_string()),
            "{name}: execute slots must report the requested key"
        );
    }
}

/// Byte-range reads: exact spans, S3-style clamping of over-long ends,
/// empty boundary ranges, start-past-end errors.
pub fn check_range_semantics(name: &str, p: &dyn StorageProvider) {
    p.put("obj", Bytes::from_static(b"0123456789")).unwrap();
    assert_eq!(
        p.get_range("obj", 2, 6).unwrap(),
        Bytes::from_static(b"2345"),
        "{name}"
    );
    // over-long end clamps (S3 semantics)
    assert_eq!(
        p.get_range("obj", 7, 1000).unwrap(),
        Bytes::from_static(b"789"),
        "{name}"
    );
    // empty range at the boundary
    assert_eq!(p.get_range("obj", 10, 10).unwrap().len(), 0, "{name}");
    // start past end errors
    assert!(p.get_range("obj", 11, 12).is_err(), "{name}");
}

/// Puts replace; deletes remove.
pub fn check_overwrite_and_delete(name: &str, p: &dyn StorageProvider) {
    p.put("k", Bytes::from_static(b"one")).unwrap();
    p.put("k", Bytes::from_static(b"twotwo")).unwrap();
    assert_eq!(p.len_of("k").unwrap(), 6, "{name}");
    p.delete("k").unwrap();
    assert!(!p.exists("k").unwrap(), "{name}");
}

/// Listing is sorted and prefix-scoped; `delete_prefix` removes exactly
/// the subtree.
pub fn check_list_prefix_sorted(name: &str, p: &dyn StorageProvider) {
    for key in ["t/2", "t/1", "t/10", "u/1"] {
        p.put(key, Bytes::new()).unwrap();
    }
    let listed = p.list("t/").unwrap();
    assert_eq!(listed, vec!["t/1", "t/10", "t/2"], "{name}");
    p.delete_prefix("t/").unwrap();
    assert!(p.list("t/").unwrap().is_empty(), "{name}");
    assert!(p.exists("u/1").unwrap(), "{name}");
}

/// `get_many` returns one outcome per request, positionally, matching the
/// single-key methods.
pub fn check_get_many_matches_single_key(name: &str, p: &dyn StorageProvider) {
    p.put("batch/a", Bytes::from_static(b"alpha")).unwrap();
    p.put("batch/b", Bytes::from_static(b"0123456789")).unwrap();
    let requests = vec![
        ReadRequest::whole("batch/a"),
        ReadRequest::range("batch/b", 2, 6),
        ReadRequest::whole("batch/b"),
        ReadRequest::range("batch/a", 0, 2),
    ];
    let results = p.get_many(&requests);
    assert_eq!(results.len(), 4, "{name}");
    assert_eq!(
        results[0].as_ref().unwrap(),
        &Bytes::from_static(b"alpha"),
        "{name}"
    );
    assert_eq!(
        results[1].as_ref().unwrap(),
        &Bytes::from_static(b"2345"),
        "{name}"
    );
    assert_eq!(
        results[2].as_ref().unwrap(),
        &Bytes::from_static(b"0123456789"),
        "{name}"
    );
    assert_eq!(
        results[3].as_ref().unwrap(),
        &Bytes::from_static(b"al"),
        "{name}"
    );
}

/// `execute` keeps results positional regardless of how the provider
/// reorders or merges fetches, and never *adds* fetches.
pub fn check_execute_preserves_order(name: &str, p: &dyn StorageProvider) {
    p.put("obj", Bytes::from_static(b"abcdefghij")).unwrap();
    let mut plan = ReadPlan::new();
    plan.range("obj", 6, 9);
    plan.range("obj", 0, 3);
    plan.whole("obj");
    let outcome = p.execute(&plan);
    assert_eq!(outcome.results.len(), 3, "{name}");
    assert_eq!(
        outcome.results[0].as_ref().unwrap(),
        &Bytes::from_static(b"ghi"),
        "{name}"
    );
    assert_eq!(
        outcome.results[1].as_ref().unwrap(),
        &Bytes::from_static(b"abc"),
        "{name}"
    );
    assert_eq!(
        outcome.results[2].as_ref().unwrap(),
        &Bytes::from_static(b"abcdefghij"),
        "{name}"
    );
    assert!(
        outcome.fetches <= 3,
        "{name}: coalescing must never add fetches"
    );
}

/// Batched clamping matches single-key semantics slot by slot.
pub fn check_execute_clamps_like_single_key(name: &str, p: &dyn StorageProvider) {
    p.put("obj", Bytes::from_static(b"0123456789")).unwrap();
    let mut plan = ReadPlan::new();
    plan.range("obj", 8, 1000); // over-long end clamps, S3 style
    plan.range("obj", 10, 10); // empty range at the boundary
    plan.range("obj", 11, 12); // start past end errors
    plan.range("obj", 0, 4); // and an in-bounds request still succeeds
    let outcome = p.execute(&plan);
    assert_eq!(
        outcome.results[0].as_ref().unwrap(),
        &Bytes::from_static(b"89"),
        "{name}"
    );
    assert_eq!(outcome.results[1].as_ref().unwrap().len(), 0, "{name}");
    assert!(
        matches!(
            outcome.results[2],
            Err(StorageError::RangeOutOfBounds { .. })
        ),
        "{name}: got {:?}",
        outcome.results[2]
    );
    assert_eq!(
        outcome.results[3].as_ref().unwrap(),
        &Bytes::from_static(b"0123"),
        "{name}"
    );
}

/// Inverted ranges fail their own slot exactly as the single-key method
/// would, without poisoning neighbours.
pub fn check_execute_rejects_inverted_ranges(name: &str, p: &dyn StorageProvider) {
    p.put("obj", Bytes::from_static(b"0123456789")).unwrap();
    // single-key ground truth
    assert!(p.get_range("obj", 8, 3).is_err(), "{name}");
    let mut plan = ReadPlan::new();
    plan.range("obj", 8, 3); // inverted: must fail
    plan.range("obj", 0, 4); // valid neighbour: must still succeed
    let outcome = p.execute(&plan);
    assert!(
        matches!(
            outcome.results[0],
            Err(StorageError::RangeOutOfBounds { .. })
        ),
        "{name}: got {:?}",
        outcome.results[0]
    );
    assert_eq!(
        outcome.results[1].as_ref().unwrap(),
        &Bytes::from_static(b"0123"),
        "{name}"
    );
}

/// A missing key fails only its own batch slots.
pub fn check_execute_isolates_missing_keys(name: &str, p: &dyn StorageProvider) {
    p.put("have", Bytes::from_static(b"data")).unwrap();
    let mut plan = ReadPlan::new();
    plan.whole("have");
    plan.whole("ghost");
    plan.range("ghost", 0, 2);
    plan.range("have", 1, 3);
    let outcome = p.execute(&plan);
    assert_eq!(
        outcome.results[0].as_ref().unwrap(),
        &Bytes::from_static(b"data"),
        "{name}"
    );
    assert!(
        matches!(outcome.results[1], Err(StorageError::NotFound(_))),
        "{name}"
    );
    assert!(
        matches!(outcome.results[2], Err(StorageError::NotFound(_))),
        "{name}"
    );
    assert_eq!(
        outcome.results[3].as_ref().unwrap(),
        &Bytes::from_static(b"at"),
        "{name}"
    );
    // get_many agrees with execute on the same shape
    let via_get_many = p.get_many(plan.requests());
    assert_eq!(via_get_many.len(), 4, "{name}");
    assert!(via_get_many[0].is_ok() && via_get_many[3].is_ok(), "{name}");
    assert!(
        via_get_many[1].is_err() && via_get_many[2].is_err(),
        "{name}"
    );
}

/// Adjacent same-key ranges merge into (at most) one backend fetch.
pub fn check_execute_coalesces_same_key(name: &str, p: &dyn StorageProvider) {
    let payload: Vec<u8> = (0..=255).collect();
    p.put("chunk", Bytes::from(payload)).unwrap();
    // 8 adjacent 32-byte reads of one object coalesce into one fetch
    let mut plan = ReadPlan::new();
    for i in 0..8u64 {
        plan.range("chunk", i * 32, (i + 1) * 32);
    }
    let outcome = p.execute(&plan);
    for (i, r) in outcome.results.iter().enumerate() {
        let data = r.as_ref().unwrap();
        assert_eq!(data.len(), 32, "{name}");
        assert_eq!(data[0], (i * 32) as u8, "{name}");
    }
    assert!(
        outcome.fetches <= 1,
        "{name}: adjacent ranges on one key must merge (got {} fetches)",
        outcome.fetches
    );
}

/// An empty plan is a no-op.
pub fn check_empty_plan_noop(name: &str, p: &dyn StorageProvider) {
    let outcome = p.execute(&ReadPlan::new());
    assert!(outcome.results.is_empty(), "{name}");
    assert_eq!(outcome.fetches, 0, "{name}");
    assert!(p.get_many(&[]).is_empty(), "{name}");
}

/// Concurrent writers on disjoint keys all land.
pub fn check_concurrent_writers(name: &str, p: &dyn StorageProvider) {
    std::thread::scope(|scope| {
        for t in 0..4u8 {
            let p = &p;
            scope.spawn(move || {
                for i in 0..50 {
                    let key = format!("cw{t}/{i}");
                    p.put(&key, Bytes::from(vec![t; 32])).unwrap();
                    assert_eq!(p.get(&key).unwrap().len(), 32);
                }
            });
        }
    });
    assert_eq!(p.list("cw").unwrap().len(), 200, "{name}");
}

/// Run the full contract against one scratch provider.
pub fn check_provider_contract(name: &str, p: &dyn StorageProvider) {
    check_put_get_roundtrip(name, p);
    check_missing_keys_not_found(name, p);
    check_not_found_names_requested_key(name, p);
    check_range_semantics(name, p);
    check_overwrite_and_delete(name, p);
    check_list_prefix_sorted(name, p);
    check_get_many_matches_single_key(name, p);
    check_execute_preserves_order(name, p);
    check_execute_clamps_like_single_key(name, p);
    check_execute_rejects_inverted_ranges(name, p);
    check_execute_isolates_missing_keys(name, p);
    check_execute_coalesces_same_key(name, p);
    check_empty_plan_noop(name, p);
    check_concurrent_writers(name, p);
}

/// Convenience for shared handles.
pub fn check_provider_contract_arc(name: &str, p: Arc<dyn StorageProvider>) {
    check_provider_contract(name, p.as_ref());
}
