//! Wall-clock accounting for storage calls: [`TimingProvider`] wraps
//! any provider and accumulates the nanoseconds (and call count) spent
//! inside it.
//!
//! The hub uses one per query: the mounted provider is wrapped just
//! before execution, the query runs (its scan workers hit storage from
//! several threads), and afterwards the accumulated nanoseconds are the
//! query's *storage round-trip span* — attribution that thread-locals
//! cannot provide across a scoped worker pool. The accumulator is a
//! pair of shared counters, so wrapping costs two `Arc` clones and each
//! call adds two relaxed atomic ops around the inner call.

use bytes::Bytes;
use deeplake_obs::{Counter, SpanTimer};

use crate::plan::{ReadPlan, ReadRequest, ReadResult};
use crate::provider::StorageProvider;
use crate::{DynProvider, Result};

/// A [`StorageProvider`] that times every call into the wrapped
/// provider, accumulating nanoseconds and call count into shared
/// [`Counter`]s readable while calls are still in flight.
pub struct TimingProvider {
    inner: DynProvider,
    nanos: Counter,
    calls: Counter,
}

impl TimingProvider {
    /// Wrap `inner` with fresh accumulators.
    pub fn new(inner: DynProvider) -> Self {
        TimingProvider {
            inner,
            nanos: Counter::new(),
            calls: Counter::new(),
        }
    }

    /// Wrap `inner`, accumulating into the given counters (e.g. a
    /// registry's `storage.time_ns`).
    pub fn with_counters(inner: DynProvider, nanos: Counter, calls: Counter) -> Self {
        TimingProvider {
            inner,
            nanos,
            calls,
        }
    }

    /// Nanoseconds spent inside the wrapped provider so far.
    pub fn nanos(&self) -> u64 {
        self.nanos.get()
    }

    /// Calls that entered the wrapped provider so far.
    pub fn calls(&self) -> u64 {
        self.calls.get()
    }

    /// Handle to the nanosecond accumulator (survives the wrapper).
    pub fn nanos_counter(&self) -> Counter {
        self.nanos.clone()
    }

    /// The wrapped provider.
    pub fn inner(&self) -> &DynProvider {
        &self.inner
    }

    fn timed<T>(&self, f: impl FnOnce() -> T) -> T {
        let t = SpanTimer::start();
        let out = f();
        self.nanos.add(t.stop());
        self.calls.inc();
        out
    }
}

impl StorageProvider for TimingProvider {
    fn get(&self, key: &str) -> Result<Bytes> {
        self.timed(|| self.inner.get(key))
    }

    fn get_range(&self, key: &str, start: u64, end: u64) -> Result<Bytes> {
        self.timed(|| self.inner.get_range(key, start, end))
    }

    fn put(&self, key: &str, value: Bytes) -> Result<()> {
        self.timed(|| self.inner.put(key, value))
    }

    fn delete(&self, key: &str) -> Result<()> {
        self.timed(|| self.inner.delete(key))
    }

    fn exists(&self, key: &str) -> Result<bool> {
        self.timed(|| self.inner.exists(key))
    }

    fn len_of(&self, key: &str) -> Result<u64> {
        self.timed(|| self.inner.len_of(key))
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        self.timed(|| self.inner.list(prefix))
    }

    fn describe(&self) -> String {
        format!("timed({})", self.inner.describe())
    }

    fn get_many(&self, requests: &[ReadRequest]) -> Vec<Result<Bytes>> {
        self.timed(|| self.inner.get_many(requests))
    }

    fn execute(&self, plan: &ReadPlan) -> ReadResult {
        self.timed(|| self.inner.execute(plan))
    }

    fn delete_prefix(&self, prefix: &str) -> Result<()> {
        self.timed(|| self.inner.delete_prefix(prefix))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryProvider;
    use std::sync::Arc;

    #[test]
    fn accumulates_time_and_calls() {
        let inner = MemoryProvider::new();
        inner.put("k", Bytes::from_static(b"v")).unwrap();
        let timed = TimingProvider::new(Arc::new(inner));
        assert_eq!(timed.calls(), 0);
        timed.get("k").unwrap();
        timed.get_range("k", 0, 1).unwrap();
        assert!(timed.exists("k").unwrap());
        assert_eq!(timed.calls(), 3);
        // wall clock is monotone; three calls took *some* time
        let after_reads = timed.nanos();
        timed.list("").unwrap();
        assert!(timed.nanos() >= after_reads);
        assert_eq!(timed.calls(), 4);
    }

    #[test]
    fn counter_handle_survives_wrapper() {
        let inner: DynProvider = Arc::new(MemoryProvider::new());
        inner.put("k", Bytes::from_static(b"v")).unwrap();
        let timed = TimingProvider::new(inner);
        let nanos = timed.nanos_counter();
        let shared: DynProvider = Arc::new(timed);
        shared.get("k").unwrap();
        drop(shared);
        assert!(nanos.get() > 0, "time recorded before the wrapper died");
    }

    #[test]
    fn errors_still_timed() {
        let timed = TimingProvider::new(Arc::new(MemoryProvider::new()));
        assert!(timed.get("missing").is_err());
        assert_eq!(timed.calls(), 1);
    }
}
