//! LRU cache chaining (§3.6: "constructs memory caching by chaining various
//! storage providers together, for instance — the LRU cache of remote S3
//! storage with local in-memory data").
//!
//! [`LruCacheProvider`] fronts a slow *base* provider with a byte-budgeted
//! in-memory cache. Reads are read-through (miss → fetch from base →
//! insert); writes are write-through (cache + base). Range reads cache the
//! whole object when it fits the budget, so subsequent ranges of the same
//! chunk (the shuffled-streaming access pattern, §3.5) hit memory.

use std::collections::HashMap;

use bytes::Bytes;
use parking_lot::Mutex;

use crate::plan::{ReadPlan, ReadRequest, ReadResult};
use crate::provider::{clamp_range, StorageProvider};
use crate::stats::StorageStats;
use crate::Result;

/// Doubly-linked-list-free LRU: a monotonically increasing tick per entry.
/// Eviction scans for the minimum tick — O(n), but n (cached objects) stays
/// small because entries are multi-megabyte chunks.
struct CacheState {
    entries: HashMap<String, (Bytes, u64)>,
    bytes: u64,
    tick: u64,
}

/// Read-through / write-through LRU cache over a base provider.
pub struct LruCacheProvider<P> {
    base: P,
    state: Mutex<CacheState>,
    capacity: u64,
    stats: StorageStats,
}

impl<P: StorageProvider> LruCacheProvider<P> {
    /// Cache up to `capacity_bytes` of objects from `base` in memory.
    pub fn new(base: P, capacity_bytes: u64) -> Self {
        LruCacheProvider {
            base,
            state: Mutex::new(CacheState {
                entries: HashMap::new(),
                bytes: 0,
                tick: 0,
            }),
            capacity: capacity_bytes,
            stats: StorageStats::new(),
        }
    }

    /// Cache hit/miss counters, plus bytes moved from the base on fills
    /// (`bytes_read`) and written through (`bytes_written`).
    pub fn stats(&self) -> &StorageStats {
        &self.stats
    }

    /// Fraction of lookups served from memory, in `[0, 1]` (0 when no
    /// lookups have happened yet). The single number cache sizing is
    /// tuned against.
    pub fn hit_ratio(&self) -> f64 {
        self.stats.hit_ratio()
    }

    /// Entries evicted to stay within the byte budget. Read next to
    /// [`hit_ratio`](Self::hit_ratio) when sizing: a high hit ratio with
    /// climbing evictions means the working set barely fits and the
    /// budget is doing real work; zero evictions means the budget could
    /// shrink.
    pub fn evictions(&self) -> u64 {
        self.stats.evictions()
    }

    /// The wrapped base provider.
    pub fn base(&self) -> &P {
        &self.base
    }

    /// Bytes currently cached.
    pub fn cached_bytes(&self) -> u64 {
        self.state.lock().bytes
    }

    /// Number of cached objects.
    pub fn cached_objects(&self) -> usize {
        self.state.lock().entries.len()
    }

    fn lookup(&self, key: &str) -> Option<Bytes> {
        let mut st = self.state.lock();
        st.tick += 1;
        let tick = st.tick;
        if let Some((data, last)) = st.entries.get_mut(key) {
            *last = tick;
            return Some(data.clone());
        }
        None
    }

    fn insert(&self, key: &str, data: Bytes) {
        let size = data.len() as u64;
        if size > self.capacity {
            return; // never cache objects bigger than the whole budget
        }
        let mut st = self.state.lock();
        st.tick += 1;
        let tick = st.tick;
        if let Some((old, _)) = st.entries.insert(key.to_string(), (data, tick)) {
            st.bytes -= old.len() as u64;
        }
        st.bytes += size;
        while st.bytes > self.capacity {
            // evict the least recently used entry
            let victim = st
                .entries
                .iter()
                .min_by_key(|(_, (_, t))| *t)
                .map(|(k, _)| k.clone())
                .expect("bytes > 0 implies entries");
            if let Some((old, _)) = st.entries.remove(&victim) {
                st.bytes -= old.len() as u64;
                self.stats.record_eviction();
            }
        }
    }

    fn invalidate(&self, key: &str) {
        let mut st = self.state.lock();
        if let Some((old, _)) = st.entries.remove(key) {
            st.bytes -= old.len() as u64;
        }
    }

    /// Insert a whole batch of fetched objects under one lock, then run a
    /// **single eviction pass** — instead of N insert+evict cycles, the
    /// batch lands first and LRU order is enforced once.
    fn insert_many(&self, batch: Vec<(String, Bytes)>) {
        let mut st = self.state.lock();
        for (key, data) in batch {
            let size = data.len() as u64;
            if size > self.capacity {
                continue; // never cache objects bigger than the whole budget
            }
            st.tick += 1;
            let tick = st.tick;
            if let Some((old, _)) = st.entries.insert(key, (data, tick)) {
                st.bytes -= old.len() as u64;
            }
            st.bytes += size;
        }
        while st.bytes > self.capacity {
            let victim = st
                .entries
                .iter()
                .min_by_key(|(_, (_, t))| *t)
                .map(|(k, _)| k.clone())
                .expect("bytes > 0 implies entries");
            if let Some((old, _)) = st.entries.remove(&victim) {
                st.bytes -= old.len() as u64;
                self.stats.record_eviction();
            }
        }
    }

    /// Serve one logical request out of a cached/fetched whole object.
    fn slice_of(request: &ReadRequest, data: &Bytes) -> Result<Bytes> {
        match request.range {
            None => Ok(data.clone()),
            Some((start, end)) => {
                let (s, e) = clamp_range(start, end, data.len() as u64)?;
                Ok(data.slice(s..e))
            }
        }
    }
}

impl<P: StorageProvider> StorageProvider for LruCacheProvider<P> {
    fn get(&self, key: &str) -> Result<Bytes> {
        if let Some(hit) = self.lookup(key) {
            self.stats.record_hit();
            return Ok(hit);
        }
        self.stats.record_miss();
        let data = self.base.get(key)?;
        self.stats.record_get(data.len() as u64);
        self.insert(key, data.clone());
        Ok(data)
    }

    fn get_range(&self, key: &str, start: u64, end: u64) -> Result<Bytes> {
        if let Some(hit) = self.lookup(key) {
            self.stats.record_hit();
            let (s, e) = clamp_range(start, end, hit.len() as u64)?;
            return Ok(hit.slice(s..e));
        }
        self.stats.record_miss();
        // Fetch the whole object when it fits the budget so later ranges of
        // the same chunk hit memory; otherwise pass the range through.
        match self.base.len_of(key) {
            Ok(len) if len <= self.capacity => {
                let data = self.base.get(key)?;
                self.stats.record_get(data.len() as u64);
                self.insert(key, data.clone());
                let (s, e) = clamp_range(start, end, data.len() as u64)?;
                Ok(data.slice(s..e))
            }
            _ => {
                let data = self.base.get_range(key, start, end)?;
                self.stats.record_range(data.len() as u64);
                Ok(data)
            }
        }
    }

    fn put(&self, key: &str, value: Bytes) -> Result<()> {
        self.base.put(key, value.clone())?;
        self.stats.record_put(value.len() as u64);
        self.insert(key, value);
        Ok(())
    }

    fn delete(&self, key: &str) -> Result<()> {
        self.invalidate(key);
        self.base.delete(key)
    }

    fn exists(&self, key: &str) -> Result<bool> {
        if self.lookup(key).is_some() {
            return Ok(true);
        }
        self.base.exists(key)
    }

    fn len_of(&self, key: &str) -> Result<u64> {
        if let Some(hit) = self.lookup(key) {
            return Ok(hit.len() as u64);
        }
        self.base.len_of(key)
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        self.base.list(prefix)
    }

    fn describe(&self) -> String {
        format!("lru({} B, over {})", self.capacity, self.base.describe())
    }

    /// Batched read-through: one lock pass resolves hits, misses fill
    /// through a single base batch, then one insertion + eviction pass.
    /// Missed objects that fit the budget are fetched whole (so later
    /// ranges of the same chunks hit memory); objects larger than the
    /// whole cache keep single-key semantics — their ranges pass through
    /// untouched and nothing is cached (`get_range`'s `len_of` guard).
    fn execute(&self, plan: &ReadPlan) -> ReadResult {
        let requests = plan.requests();
        let mut out: Vec<Option<Result<Bytes>>> = vec![None; requests.len()];
        let mut miss_keys: Vec<String> = Vec::new();
        let mut missed: std::collections::HashSet<&str> = std::collections::HashSet::new();
        {
            let mut st = self.state.lock();
            for (i, r) in requests.iter().enumerate() {
                st.tick += 1;
                let tick = st.tick;
                if let Some((data, last)) = st.entries.get_mut(&r.key) {
                    *last = tick;
                    self.stats.record_hit();
                    let data = data.clone();
                    out[i] = Some(Self::slice_of(r, &data));
                } else {
                    self.stats.record_miss();
                    if missed.insert(r.key.as_str()) {
                        miss_keys.push(r.key.clone());
                    }
                }
            }
        }
        drop(missed);
        if miss_keys.is_empty() {
            self.stats.record_batch(requests.len() as u64, 0, 0);
            return ReadResult {
                results: out.into_iter().map(|s| s.expect("all hits")).collect(),
                fetches: 0,
            };
        }
        // Promote a missed key to a whole-object fetch only when the
        // object fits the budget (or a whole read was asked for anyway);
        // oversized objects get their original ranges passed through.
        // The loader's chunk plans request whole objects, so the size
        // probes below only run for range-only keys — and in parallel,
        // so they cost one metadata round trip of latency, not one per
        // key.
        let mut cacheable: std::collections::HashSet<&str> = std::collections::HashSet::new();
        let mut probe_keys: Vec<&str> = Vec::new();
        for key in &miss_keys {
            if requests.iter().any(|r| r.key == *key && r.range.is_none()) {
                cacheable.insert(key.as_str());
            } else {
                probe_keys.push(key.as_str());
            }
        }
        if !probe_keys.is_empty() {
            let fits = |key: &str| match self.base.len_of(key) {
                Ok(len) => len <= self.capacity,
                Err(_) => true, // missing: let the fetch report it
            };
            let mut probe_fits: Vec<bool> = vec![false; probe_keys.len()];
            if probe_keys.len() == 1 {
                probe_fits[0] = fits(probe_keys[0]);
            } else {
                let per_worker = probe_keys.len().div_ceil(8);
                std::thread::scope(|scope| {
                    for (flags, keys) in probe_fits
                        .chunks_mut(per_worker)
                        .zip(probe_keys.chunks(per_worker))
                    {
                        let fits = &fits;
                        scope.spawn(move || {
                            for (flag, key) in flags.iter_mut().zip(keys) {
                                *flag = fits(key);
                            }
                        });
                    }
                });
            }
            for (key, fit) in probe_keys.iter().zip(probe_fits) {
                if fit {
                    cacheable.insert(key);
                }
            }
        }
        let mut base_plan = ReadPlan::with_gap_tolerance(plan.gap_tolerance());
        // positional map: which logical request each base request serves
        // (usize::MAX = a whole-object fill keyed off `fill_keys`)
        let mut passthrough_of: Vec<usize> = Vec::new();
        let mut fill_keys: Vec<&str> = Vec::new();
        for key in &miss_keys {
            if cacheable.contains(key.as_str()) {
                base_plan.whole(key.clone());
                passthrough_of.push(usize::MAX);
                fill_keys.push(key);
                continue;
            }
            for (i, r) in requests.iter().enumerate() {
                if r.key == *key && out[i].is_none() {
                    base_plan.push(r.clone());
                    passthrough_of.push(i);
                    fill_keys.push(key);
                }
            }
        }
        let base_result = self.base.execute(&base_plan);
        let mut by_key: HashMap<&str, &Result<Bytes>> = HashMap::new();
        let mut to_cache: Vec<(String, Bytes)> = Vec::new();
        let mut bytes_moved = 0u64;
        for ((result, &target), key) in base_result
            .results
            .iter()
            .zip(&passthrough_of)
            .zip(&fill_keys)
        {
            if let Ok(data) = result {
                bytes_moved += data.len() as u64;
            }
            if target == usize::MAX {
                if let Ok(data) = result {
                    to_cache.push((key.to_string(), data.clone()));
                }
                by_key.insert(*key, result);
            } else {
                out[target] = Some(result.clone());
            }
        }
        self.insert_many(to_cache);
        for (i, r) in requests.iter().enumerate() {
            if out[i].is_none() {
                out[i] = Some(match by_key.get(r.key.as_str()) {
                    Some(Ok(data)) => Self::slice_of(r, data),
                    Some(Err(e)) => Err(e.clone()),
                    None => unreachable!("every miss key was fetched or passed through"),
                });
            }
        }
        self.stats
            .record_batch(requests.len() as u64, base_result.fetches, bytes_moved);
        ReadResult {
            results: out.into_iter().map(|s| s.expect("hit or filled")).collect(),
            fetches: base_result.fetches,
        }
    }

    /// Drop every cached object under the prefix, then bulk-delete on the
    /// base (one batched call instead of a list+delete loop here).
    fn delete_prefix(&self, prefix: &str) -> Result<()> {
        {
            let mut st = self.state.lock();
            let doomed: Vec<String> = st
                .entries
                .keys()
                .filter(|k| k.starts_with(prefix))
                .cloned()
                .collect();
            for key in doomed {
                if let Some((old, _)) = st.entries.remove(&key) {
                    st.bytes -= old.len() as u64;
                }
            }
        }
        self.base.delete_prefix(prefix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryProvider;
    use crate::sim::{NetworkProfile, SimulatedCloudProvider};

    fn slow_base() -> SimulatedCloudProvider<MemoryProvider> {
        SimulatedCloudProvider::new("s3", MemoryProvider::new(), NetworkProfile::instant())
    }

    #[test]
    fn read_through_caches() {
        let base = slow_base();
        base.inner().put("k", Bytes::from(vec![7u8; 100])).unwrap();
        let cache = LruCacheProvider::new(base, 1_000);
        cache.get("k").unwrap();
        cache.get("k").unwrap();
        cache.get("k").unwrap();
        assert_eq!(cache.stats().cache_misses(), 1);
        assert_eq!(cache.stats().cache_hits(), 2);
        // base saw exactly one request
        assert_eq!(cache.base().stats().get_requests(), 1);
    }

    #[test]
    fn eviction_respects_capacity() {
        let base = MemoryProvider::new();
        for i in 0..10 {
            base.put(&format!("k{i}"), Bytes::from(vec![0u8; 100]))
                .unwrap();
        }
        let cache = LruCacheProvider::new(base, 350);
        for i in 0..10 {
            cache.get(&format!("k{i}")).unwrap();
        }
        assert!(cache.cached_bytes() <= 350);
        assert!(cache.cached_objects() <= 3);
        // 10 fills into a 3-object budget: exactly 7 entries were evicted
        assert_eq!(cache.evictions(), 7);
    }

    #[test]
    fn lru_order_eviction() {
        let base = MemoryProvider::new();
        for k in ["a", "b", "c"] {
            base.put(k, Bytes::from(vec![0u8; 100])).unwrap();
        }
        let cache = LruCacheProvider::new(base, 250);
        cache.get("a").unwrap();
        cache.get("b").unwrap();
        cache.get("a").unwrap(); // refresh a
        cache.get("c").unwrap(); // evicts b (least recently used)
        cache.stats().reset();
        cache.get("a").unwrap();
        assert_eq!(cache.stats().cache_hits(), 1);
        cache.get("b").unwrap();
        assert_eq!(cache.stats().cache_misses(), 1);
    }

    #[test]
    fn hit_ratio_and_fill_bytes_surface() {
        let base = slow_base();
        base.inner().put("k", Bytes::from(vec![7u8; 100])).unwrap();
        let cache = LruCacheProvider::new(base, 1_000);
        assert_eq!(cache.hit_ratio(), 0.0);
        cache.get("k").unwrap(); // miss: fills 100 bytes from base
        cache.get("k").unwrap();
        cache.get("k").unwrap();
        cache.get("k").unwrap();
        assert!((cache.hit_ratio() - 0.75).abs() < 1e-12);
        assert_eq!(cache.stats().bytes_read(), 100, "hits move no base bytes");
        cache.put("w", Bytes::from(vec![1u8; 40])).unwrap();
        assert_eq!(cache.stats().bytes_written(), 40);
    }

    #[test]
    fn range_hit_after_whole_object_fetch() {
        let base = slow_base();
        base.inner()
            .put("chunk", Bytes::from((0..=255u8).collect::<Vec<_>>()))
            .unwrap();
        let cache = LruCacheProvider::new(base, 10_000);
        let r1 = cache.get_range("chunk", 0, 16).unwrap();
        assert_eq!(r1.len(), 16);
        let r2 = cache.get_range("chunk", 100, 120).unwrap();
        assert_eq!(r2[0], 100);
        // second range served from cache: base got one whole GET, no ranges
        assert_eq!(cache.base().stats().get_requests(), 1);
        assert_eq!(cache.base().stats().range_requests(), 0);
    }

    #[test]
    fn oversized_objects_bypass_cache() {
        let base = MemoryProvider::new();
        base.put("big", Bytes::from(vec![0u8; 1000])).unwrap();
        let cache = LruCacheProvider::new(base, 100);
        cache.get("big").unwrap();
        assert_eq!(cache.cached_objects(), 0);
        let r = cache.get_range("big", 10, 20).unwrap();
        assert_eq!(r.len(), 10);
        assert_eq!(cache.cached_objects(), 0);
    }

    #[test]
    fn batched_fill_hits_base_once_then_serves_from_memory() {
        use crate::plan::ReadPlan;
        let base = slow_base();
        for k in ["c0", "c1", "c2"] {
            base.inner()
                .put(k, Bytes::from((0..=255u8).collect::<Vec<_>>()))
                .unwrap();
        }
        let cache = LruCacheProvider::new(base, 1 << 20);
        // 6 logical reads over 3 missing keys → one base batch of 3 fetches
        let mut plan = ReadPlan::new();
        for k in ["c0", "c1", "c2"] {
            plan.range(k, 0, 16);
            plan.range(k, 100, 116);
        }
        let outcome = cache.execute(&plan);
        assert!(outcome.results.iter().all(|r| r.is_ok()));
        assert_eq!(outcome.results[1].as_ref().unwrap()[0], 100);
        assert_eq!(outcome.fetches, 3);
        assert_eq!(cache.stats().cache_misses(), 6);
        assert_eq!(
            cache.base().stats().round_trips(),
            1,
            "one batch to the base"
        );
        // the fill cached whole objects: a second batch is all hits
        let outcome = cache.execute(&plan);
        assert_eq!(outcome.fetches, 0);
        assert_eq!(cache.stats().cache_hits(), 6);
        assert_eq!(
            cache.base().stats().round_trips(),
            1,
            "no further base traffic"
        );
    }

    #[test]
    fn batched_fill_evicts_once_within_capacity() {
        let base = MemoryProvider::new();
        for i in 0..8 {
            base.put(&format!("k{i}"), Bytes::from(vec![i as u8; 100]))
                .unwrap();
        }
        let cache = LruCacheProvider::new(base, 350);
        let mut plan = crate::plan::ReadPlan::new();
        for i in 0..8 {
            plan.whole(format!("k{i}"));
        }
        let outcome = cache.execute(&plan);
        assert!(outcome.results.iter().all(|r| r.is_ok()));
        // single eviction pass leaves the cache within budget
        assert!(cache.cached_bytes() <= 350);
        assert!(cache.cached_objects() <= 3);
        // 8 batched fills into a 3-object budget: 5 evicted, counted
        assert_eq!(cache.evictions(), 5);
    }

    #[test]
    fn evictions_counter_tracks_budget_pressure() {
        let base = MemoryProvider::new();
        for i in 0..4 {
            base.put(&format!("k{i}"), Bytes::from(vec![0u8; 100]))
                .unwrap();
        }
        // everything fits: no evictions, only fills
        let roomy = LruCacheProvider::new(base, 1_000);
        for i in 0..4 {
            roomy.get(&format!("k{i}")).unwrap();
        }
        assert_eq!(roomy.evictions(), 0);
        assert_eq!(roomy.stats().evictions(), 0);
        // re-reading hits never evict
        for i in 0..4 {
            roomy.get(&format!("k{i}")).unwrap();
        }
        assert_eq!(roomy.evictions(), 0);
        assert_eq!(roomy.stats().cache_hits(), 4);
    }

    #[test]
    fn batched_range_of_oversized_object_passes_through() {
        // an object bigger than the whole cache must NOT be fetched whole
        // on the batched path (the single-key `len_of` guard applies)
        let base = slow_base();
        base.inner()
            .put("huge", Bytes::from(vec![7u8; 4096]))
            .unwrap();
        let cache = LruCacheProvider::new(base, 512); // budget < object
                                                      // gap tolerance 0 so the two ranges stay separate fetches
        let mut plan = crate::plan::ReadPlan::with_gap_tolerance(0);
        plan.range("huge", 0, 64);
        plan.range("huge", 100, 164);
        let outcome = cache.execute(&plan);
        assert_eq!(outcome.results[0].as_ref().unwrap().len(), 64);
        assert_eq!(outcome.results[1].as_ref().unwrap().len(), 64);
        // only the requested ranges moved, nothing was cached
        assert_eq!(cache.base().stats().bytes_read(), 128);
        assert_eq!(cache.cached_objects(), 0);
    }

    #[test]
    fn batched_missing_key_does_not_poison_batch() {
        let base = MemoryProvider::new();
        base.put("real", Bytes::from_static(b"payload")).unwrap();
        let cache = LruCacheProvider::new(base, 1 << 10);
        let mut plan = crate::plan::ReadPlan::new();
        plan.whole("real");
        plan.whole("ghost");
        let outcome = cache.execute(&plan);
        assert!(outcome.results[0].is_ok());
        assert!(outcome.results[1].is_err());
        // the miss is not cached; the hit is
        assert_eq!(cache.cached_objects(), 1);
    }

    #[test]
    fn write_through_and_delete_invalidate() {
        let base = MemoryProvider::new();
        let cache = LruCacheProvider::new(base, 1_000);
        cache.put("k", Bytes::from_static(b"v1")).unwrap();
        assert_eq!(cache.get("k").unwrap(), Bytes::from_static(b"v1"));
        assert!(cache.base().exists("k").unwrap());
        cache.delete("k").unwrap();
        assert!(!cache.exists("k").unwrap());
        assert!(cache.get("k").is_err());
    }

    #[test]
    fn put_updates_cached_value() {
        let base = MemoryProvider::new();
        let cache = LruCacheProvider::new(base, 1_000);
        cache.put("k", Bytes::from_static(b"old")).unwrap();
        cache.put("k", Bytes::from_static(b"new")).unwrap();
        assert_eq!(cache.get("k").unwrap(), Bytes::from_static(b"new"));
        assert_eq!(cache.cached_bytes(), 3);
    }

    #[test]
    fn exists_and_len_use_cache() {
        let base = slow_base();
        base.inner().put("k", Bytes::from(vec![0u8; 42])).unwrap();
        let cache = LruCacheProvider::new(base, 1_000);
        cache.get("k").unwrap();
        assert!(cache.exists("k").unwrap());
        assert_eq!(cache.len_of("k").unwrap(), 42);
        // neither went to base
        assert_eq!(cache.base().stats().requests(), 1);
    }
}
