//! LRU cache chaining (§3.6: "constructs memory caching by chaining various
//! storage providers together, for instance — the LRU cache of remote S3
//! storage with local in-memory data").
//!
//! [`LruCacheProvider`] fronts a slow *base* provider with a byte-budgeted
//! in-memory cache. Reads are read-through (miss → fetch from base →
//! insert); writes are write-through (cache + base). Range reads cache the
//! whole object when it fits the budget, so subsequent ranges of the same
//! chunk (the shuffled-streaming access pattern, §3.5) hit memory.

use std::collections::HashMap;

use bytes::Bytes;
use parking_lot::Mutex;

use crate::provider::{clamp_range, StorageProvider};
use crate::stats::StorageStats;
use crate::Result;

/// Doubly-linked-list-free LRU: a monotonically increasing tick per entry.
/// Eviction scans for the minimum tick — O(n), but n (cached objects) stays
/// small because entries are multi-megabyte chunks.
struct CacheState {
    entries: HashMap<String, (Bytes, u64)>,
    bytes: u64,
    tick: u64,
}

/// Read-through / write-through LRU cache over a base provider.
pub struct LruCacheProvider<P> {
    base: P,
    state: Mutex<CacheState>,
    capacity: u64,
    stats: StorageStats,
}

impl<P: StorageProvider> LruCacheProvider<P> {
    /// Cache up to `capacity_bytes` of objects from `base` in memory.
    pub fn new(base: P, capacity_bytes: u64) -> Self {
        LruCacheProvider {
            base,
            state: Mutex::new(CacheState { entries: HashMap::new(), bytes: 0, tick: 0 }),
            capacity: capacity_bytes,
            stats: StorageStats::new(),
        }
    }

    /// Cache hit/miss counters.
    pub fn stats(&self) -> &StorageStats {
        &self.stats
    }

    /// The wrapped base provider.
    pub fn base(&self) -> &P {
        &self.base
    }

    /// Bytes currently cached.
    pub fn cached_bytes(&self) -> u64 {
        self.state.lock().bytes
    }

    /// Number of cached objects.
    pub fn cached_objects(&self) -> usize {
        self.state.lock().entries.len()
    }

    fn lookup(&self, key: &str) -> Option<Bytes> {
        let mut st = self.state.lock();
        st.tick += 1;
        let tick = st.tick;
        if let Some((data, last)) = st.entries.get_mut(key) {
            *last = tick;
            return Some(data.clone());
        }
        None
    }

    fn insert(&self, key: &str, data: Bytes) {
        let size = data.len() as u64;
        if size > self.capacity {
            return; // never cache objects bigger than the whole budget
        }
        let mut st = self.state.lock();
        st.tick += 1;
        let tick = st.tick;
        if let Some((old, _)) = st.entries.insert(key.to_string(), (data, tick)) {
            st.bytes -= old.len() as u64;
        }
        st.bytes += size;
        while st.bytes > self.capacity {
            // evict the least recently used entry
            let victim = st
                .entries
                .iter()
                .min_by_key(|(_, (_, t))| *t)
                .map(|(k, _)| k.clone())
                .expect("bytes > 0 implies entries");
            if let Some((old, _)) = st.entries.remove(&victim) {
                st.bytes -= old.len() as u64;
            }
        }
    }

    fn invalidate(&self, key: &str) {
        let mut st = self.state.lock();
        if let Some((old, _)) = st.entries.remove(key) {
            st.bytes -= old.len() as u64;
        }
    }
}

impl<P: StorageProvider> StorageProvider for LruCacheProvider<P> {
    fn get(&self, key: &str) -> Result<Bytes> {
        if let Some(hit) = self.lookup(key) {
            self.stats.record_hit();
            return Ok(hit);
        }
        self.stats.record_miss();
        let data = self.base.get(key)?;
        self.insert(key, data.clone());
        Ok(data)
    }

    fn get_range(&self, key: &str, start: u64, end: u64) -> Result<Bytes> {
        if let Some(hit) = self.lookup(key) {
            self.stats.record_hit();
            let (s, e) = clamp_range(start, end, hit.len() as u64)?;
            return Ok(hit.slice(s..e));
        }
        self.stats.record_miss();
        // Fetch the whole object when it fits the budget so later ranges of
        // the same chunk hit memory; otherwise pass the range through.
        match self.base.len_of(key) {
            Ok(len) if len <= self.capacity => {
                let data = self.base.get(key)?;
                self.insert(key, data.clone());
                let (s, e) = clamp_range(start, end, data.len() as u64)?;
                Ok(data.slice(s..e))
            }
            _ => self.base.get_range(key, start, end),
        }
    }

    fn put(&self, key: &str, value: Bytes) -> Result<()> {
        self.base.put(key, value.clone())?;
        self.insert(key, value);
        Ok(())
    }

    fn delete(&self, key: &str) -> Result<()> {
        self.invalidate(key);
        self.base.delete(key)
    }

    fn exists(&self, key: &str) -> Result<bool> {
        if self.lookup(key).is_some() {
            return Ok(true);
        }
        self.base.exists(key)
    }

    fn len_of(&self, key: &str) -> Result<u64> {
        if let Some(hit) = self.lookup(key) {
            return Ok(hit.len() as u64);
        }
        self.base.len_of(key)
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        self.base.list(prefix)
    }

    fn describe(&self) -> String {
        format!("lru({} B, over {})", self.capacity, self.base.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryProvider;
    use crate::sim::{NetworkProfile, SimulatedCloudProvider};

    fn slow_base() -> SimulatedCloudProvider<MemoryProvider> {
        SimulatedCloudProvider::new("s3", MemoryProvider::new(), NetworkProfile::instant())
    }

    #[test]
    fn read_through_caches() {
        let base = slow_base();
        base.inner().put("k", Bytes::from(vec![7u8; 100])).unwrap();
        let cache = LruCacheProvider::new(base, 1_000);
        cache.get("k").unwrap();
        cache.get("k").unwrap();
        cache.get("k").unwrap();
        assert_eq!(cache.stats().cache_misses(), 1);
        assert_eq!(cache.stats().cache_hits(), 2);
        // base saw exactly one request
        assert_eq!(cache.base().stats().get_requests(), 1);
    }

    #[test]
    fn eviction_respects_capacity() {
        let base = MemoryProvider::new();
        for i in 0..10 {
            base.put(&format!("k{i}"), Bytes::from(vec![0u8; 100])).unwrap();
        }
        let cache = LruCacheProvider::new(base, 350);
        for i in 0..10 {
            cache.get(&format!("k{i}")).unwrap();
        }
        assert!(cache.cached_bytes() <= 350);
        assert!(cache.cached_objects() <= 3);
    }

    #[test]
    fn lru_order_eviction() {
        let base = MemoryProvider::new();
        for k in ["a", "b", "c"] {
            base.put(k, Bytes::from(vec![0u8; 100])).unwrap();
        }
        let cache = LruCacheProvider::new(base, 250);
        cache.get("a").unwrap();
        cache.get("b").unwrap();
        cache.get("a").unwrap(); // refresh a
        cache.get("c").unwrap(); // evicts b (least recently used)
        cache.stats().reset();
        cache.get("a").unwrap();
        assert_eq!(cache.stats().cache_hits(), 1);
        cache.get("b").unwrap();
        assert_eq!(cache.stats().cache_misses(), 1);
    }

    #[test]
    fn range_hit_after_whole_object_fetch() {
        let base = slow_base();
        base.inner().put("chunk", Bytes::from((0..=255u8).collect::<Vec<_>>())).unwrap();
        let cache = LruCacheProvider::new(base, 10_000);
        let r1 = cache.get_range("chunk", 0, 16).unwrap();
        assert_eq!(r1.len(), 16);
        let r2 = cache.get_range("chunk", 100, 120).unwrap();
        assert_eq!(r2[0], 100);
        // second range served from cache: base got one whole GET, no ranges
        assert_eq!(cache.base().stats().get_requests(), 1);
        assert_eq!(cache.base().stats().range_requests(), 0);
    }

    #[test]
    fn oversized_objects_bypass_cache() {
        let base = MemoryProvider::new();
        base.put("big", Bytes::from(vec![0u8; 1000])).unwrap();
        let cache = LruCacheProvider::new(base, 100);
        cache.get("big").unwrap();
        assert_eq!(cache.cached_objects(), 0);
        let r = cache.get_range("big", 10, 20).unwrap();
        assert_eq!(r.len(), 10);
        assert_eq!(cache.cached_objects(), 0);
    }

    #[test]
    fn write_through_and_delete_invalidate() {
        let base = MemoryProvider::new();
        let cache = LruCacheProvider::new(base, 1_000);
        cache.put("k", Bytes::from_static(b"v1")).unwrap();
        assert_eq!(cache.get("k").unwrap(), Bytes::from_static(b"v1"));
        assert!(cache.base().exists("k").unwrap());
        cache.delete("k").unwrap();
        assert!(!cache.exists("k").unwrap());
        assert!(cache.get("k").is_err());
    }

    #[test]
    fn put_updates_cached_value() {
        let base = MemoryProvider::new();
        let cache = LruCacheProvider::new(base, 1_000);
        cache.put("k", Bytes::from_static(b"old")).unwrap();
        cache.put("k", Bytes::from_static(b"new")).unwrap();
        assert_eq!(cache.get("k").unwrap(), Bytes::from_static(b"new"));
        assert_eq!(cache.cached_bytes(), 3);
    }

    #[test]
    fn exists_and_len_use_cache() {
        let base = slow_base();
        base.inner().put("k", Bytes::from(vec![0u8; 42])).unwrap();
        let cache = LruCacheProvider::new(base, 1_000);
        cache.get("k").unwrap();
        assert!(cache.exists("k").unwrap());
        assert_eq!(cache.len_of("k").unwrap(), 42);
        // neither went to base
        assert_eq!(cache.base().stats().requests(), 1);
    }
}
