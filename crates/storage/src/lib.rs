//! # deeplake-storage
//!
//! Storage providers for Deep Lake (§3.6 of the paper): "Deep Lake can be
//! plugged into any storage provider, including object storages such as AWS
//! S3, Google Cloud Storage, POSIX compatible file systems, or local
//! in-memory storage. Moreover, it constructs memory caching by chaining
//! various storage providers together."
//!
//! * [`StorageProvider`] — the object-store trait: whole-object and byte
//!   *range* gets (range requests are what make shuffled streaming work,
//!   §3.5), puts, deletes, listing.
//! * [`MemoryProvider`] — in-memory map, the fastest tier.
//! * [`LocalProvider`] — a directory on a POSIX filesystem.
//! * [`SimulatedCloudProvider`] — wraps any provider with a deterministic
//!   network cost model (first-byte latency + bandwidth + per-request
//!   overhead). This is the repo's substitution for real S3/GCS/MinIO: the
//!   evaluation's signal is `requests × latency + bytes ÷ bandwidth`, which
//!   the model reproduces while exercising the same range-request code
//!   path. Request/byte counters make benchmark assertions possible.
//! * [`LruCacheProvider`] — read-through/write-through LRU chaining of two
//!   providers, e.g. memory over simulated S3.
//!
//! Reads come in two granularities: the single-key `get`/`get_range`
//! methods, and the **batched scatter-gather path** — build a
//! [`ReadPlan`] covering every chunk a task needs and call
//! [`StorageProvider::execute`] once. Providers coalesce
//! adjacent/overlapping ranges per key and parallelize or amortize the
//! merged fetches; [`StorageStats::round_trips`] vs
//! [`StorageStats::logical_reads`] shows the saving.

pub mod contract;
pub mod error;
pub mod fault;
pub mod local;
pub mod lru;
pub mod memory;
pub mod plan;
pub mod prefix;
pub mod provider;
pub mod sim;
pub mod stats;
pub mod timing;

pub use error::StorageError;
pub use fault::{FaultPlan, FaultProvider};
pub use local::LocalProvider;
pub use lru::LruCacheProvider;
pub use memory::MemoryProvider;
pub use plan::{CoalescedFetch, FetchPart, ReadPlan, ReadRequest, ReadResult};
pub use prefix::PrefixProvider;
pub use provider::{DynProvider, StorageProvider};
pub use sim::{NetworkProfile, SimulatedCloudProvider};
pub use stats::{StorageStats, StorageStatsSnapshot};
pub use timing::TimingProvider;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StorageError>;
