//! The [`StorageProvider`] trait.

use std::sync::Arc;

use bytes::Bytes;

use crate::error::StorageError;
use crate::plan::{execute_coalesced, ReadPlan, ReadRequest, ReadResult};
use crate::Result;

/// Shared handle to a provider; everything above the storage layer trades
/// in these.
pub type DynProvider = Arc<dyn StorageProvider>;

/// An object store: a flat namespace of keys to immutable-ish byte blobs.
///
/// Mirrors the subset of S3 semantics Deep Lake needs: whole-object get,
/// **byte-range get** (the enabler for streaming sub-chunk reads, §3.5),
/// put, delete, prefix listing. Implementations must be thread-safe — the
/// dataloader hits one provider from many workers concurrently.
pub trait StorageProvider: Send + Sync {
    /// Fetch a whole object.
    fn get(&self, key: &str) -> Result<Bytes>;

    /// Fetch `start..end` (end exclusive) of an object — an HTTP range
    /// request in cloud terms. `end` may exceed the object length; the
    /// range is clamped (matching S3's behaviour for over-long ranges).
    fn get_range(&self, key: &str, start: u64, end: u64) -> Result<Bytes>;

    /// Store an object, replacing any previous value.
    fn put(&self, key: &str, value: Bytes) -> Result<()>;

    /// Delete an object. Deleting a missing key is not an error (S3
    /// semantics).
    fn delete(&self, key: &str) -> Result<()>;

    /// Whether a key exists.
    fn exists(&self, key: &str) -> Result<bool>;

    /// Byte length of an object.
    fn len_of(&self, key: &str) -> Result<u64>;

    /// All keys under a prefix, sorted.
    fn list(&self, prefix: &str) -> Result<Vec<String>>;

    /// Human-readable provider description for diagnostics.
    fn describe(&self) -> String;

    /// Fetch a batch of reads, returning one outcome per request in
    /// order. A missing key or out-of-bounds range fails only its own
    /// slot — the rest of the batch still completes.
    ///
    /// The default loops over [`get`](Self::get) /
    /// [`get_range`](Self::get_range), so third-party providers compile
    /// (and behave correctly) unchanged; providers with a cheaper batch
    /// path override this or [`execute`](Self::execute).
    fn get_many(&self, requests: &[ReadRequest]) -> Vec<Result<Bytes>> {
        requests
            .iter()
            .map(|r| match r.range {
                None => self.get(&r.key),
                Some((start, end)) => self.get_range(&r.key, start, end),
            })
            .collect()
    }

    /// Execute a [`ReadPlan`]: coalesce its requests into the minimal
    /// backend fetches, issue them, and scatter bytes back per request.
    ///
    /// The default implementation coalesces with the shared planner and
    /// issues each merged fetch through the single-key methods — so even
    /// providers that override nothing see fewer backend calls. Providers
    /// override this to parallelize ([`crate::LocalProvider`]), amortize
    /// latency ([`crate::SimulatedCloudProvider`]), or batch cache fills
    /// ([`crate::LruCacheProvider`]).
    fn execute(&self, plan: &ReadPlan) -> ReadResult {
        execute_coalesced(plan, |f| match f.range {
            None => self.get(&f.key),
            Some((start, end)) => self.get_range(&f.key, start, end),
        })
    }

    /// Remove every key under a prefix: one `list`, then deletes.
    ///
    /// Contract (all providers): keys that vanish concurrently are not an
    /// error (delete of a missing key is a no-op, S3 semantics); on an I/O
    /// failure the prefix may be partially deleted — callers needing
    /// atomicity must arrange it above this API. Providers with a cheaper
    /// bulk path (single lock pass, amortized latency) override this.
    fn delete_prefix(&self, prefix: &str) -> Result<()> {
        for key in self.list(prefix)? {
            self.delete(&key)?;
        }
        Ok(())
    }
}

/// Clamp a requested range against an object length, erroring only when the
/// start is past the end of the object.
pub(crate) fn clamp_range(start: u64, end: u64, len: u64) -> Result<(usize, usize)> {
    if start > len || start > end {
        return Err(StorageError::RangeOutOfBounds { start, end, len });
    }
    Ok((start as usize, end.min(len) as usize))
}

impl<P: StorageProvider + ?Sized> StorageProvider for Arc<P> {
    fn get(&self, key: &str) -> Result<Bytes> {
        (**self).get(key)
    }
    fn get_range(&self, key: &str, start: u64, end: u64) -> Result<Bytes> {
        (**self).get_range(key, start, end)
    }
    fn put(&self, key: &str, value: Bytes) -> Result<()> {
        (**self).put(key, value)
    }
    fn delete(&self, key: &str) -> Result<()> {
        (**self).delete(key)
    }
    fn exists(&self, key: &str) -> Result<bool> {
        (**self).exists(key)
    }
    fn len_of(&self, key: &str) -> Result<u64> {
        (**self).len_of(key)
    }
    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        (**self).list(prefix)
    }
    fn describe(&self) -> String {
        (**self).describe()
    }
    fn get_many(&self, requests: &[ReadRequest]) -> Vec<Result<Bytes>> {
        (**self).get_many(requests)
    }
    fn execute(&self, plan: &ReadPlan) -> ReadResult {
        (**self).execute(plan)
    }
    fn delete_prefix(&self, prefix: &str) -> Result<()> {
        (**self).delete_prefix(prefix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp_range_basic() {
        assert_eq!(clamp_range(0, 10, 100).unwrap(), (0, 10));
        assert_eq!(clamp_range(90, 200, 100).unwrap(), (90, 100));
        assert!(clamp_range(101, 110, 100).is_err());
        assert!(clamp_range(10, 5, 100).is_err());
        assert_eq!(clamp_range(100, 100, 100).unwrap(), (100, 100));
    }
}
