//! The [`StorageProvider`] trait.

use std::sync::Arc;

use bytes::Bytes;

use crate::error::StorageError;
use crate::Result;

/// Shared handle to a provider; everything above the storage layer trades
/// in these.
pub type DynProvider = Arc<dyn StorageProvider>;

/// An object store: a flat namespace of keys to immutable-ish byte blobs.
///
/// Mirrors the subset of S3 semantics Deep Lake needs: whole-object get,
/// **byte-range get** (the enabler for streaming sub-chunk reads, §3.5),
/// put, delete, prefix listing. Implementations must be thread-safe — the
/// dataloader hits one provider from many workers concurrently.
pub trait StorageProvider: Send + Sync {
    /// Fetch a whole object.
    fn get(&self, key: &str) -> Result<Bytes>;

    /// Fetch `start..end` (end exclusive) of an object — an HTTP range
    /// request in cloud terms. `end` may exceed the object length; the
    /// range is clamped (matching S3's behaviour for over-long ranges).
    fn get_range(&self, key: &str, start: u64, end: u64) -> Result<Bytes>;

    /// Store an object, replacing any previous value.
    fn put(&self, key: &str, value: Bytes) -> Result<()>;

    /// Delete an object. Deleting a missing key is not an error (S3
    /// semantics).
    fn delete(&self, key: &str) -> Result<()>;

    /// Whether a key exists.
    fn exists(&self, key: &str) -> Result<bool>;

    /// Byte length of an object.
    fn len_of(&self, key: &str) -> Result<u64>;

    /// All keys under a prefix, sorted.
    fn list(&self, prefix: &str) -> Result<Vec<String>>;

    /// Human-readable provider description for diagnostics.
    fn describe(&self) -> String;

    /// Remove every key under a prefix. Default loops over `list`.
    fn delete_prefix(&self, prefix: &str) -> Result<()> {
        for key in self.list(prefix)? {
            self.delete(&key)?;
        }
        Ok(())
    }
}

/// Clamp a requested range against an object length, erroring only when the
/// start is past the end of the object.
pub(crate) fn clamp_range(start: u64, end: u64, len: u64) -> Result<(usize, usize)> {
    if start > len || start > end {
        return Err(StorageError::RangeOutOfBounds { start, end, len });
    }
    Ok((start as usize, end.min(len) as usize))
}

impl<P: StorageProvider + ?Sized> StorageProvider for Arc<P> {
    fn get(&self, key: &str) -> Result<Bytes> {
        (**self).get(key)
    }
    fn get_range(&self, key: &str, start: u64, end: u64) -> Result<Bytes> {
        (**self).get_range(key, start, end)
    }
    fn put(&self, key: &str, value: Bytes) -> Result<()> {
        (**self).put(key, value)
    }
    fn delete(&self, key: &str) -> Result<()> {
        (**self).delete(key)
    }
    fn exists(&self, key: &str) -> Result<bool> {
        (**self).exists(key)
    }
    fn len_of(&self, key: &str) -> Result<u64> {
        (**self).len_of(key)
    }
    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        (**self).list(prefix)
    }
    fn describe(&self) -> String {
        (**self).describe()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp_range_basic() {
        assert_eq!(clamp_range(0, 10, 100).unwrap(), (0, 10));
        assert_eq!(clamp_range(90, 200, 100).unwrap(), (90, 100));
        assert!(clamp_range(101, 110, 100).is_err());
        assert!(clamp_range(10, 5, 100).is_err());
        assert_eq!(clamp_range(100, 100, 100).unwrap(), (100, 100));
    }
}
