//! Request/byte accounting shared by the simulated cloud and the cache.

use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative storage traffic counters. All methods are lock-free; snapshot
/// reads are eventually consistent, which is fine for benchmarking.
#[derive(Debug, Default)]
pub struct StorageStats {
    get_requests: AtomicU64,
    range_requests: AtomicU64,
    put_requests: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    evictions: AtomicU64,
    batch_requests: AtomicU64,
    logical_reads: AtomicU64,
    coalesced_fetches: AtomicU64,
    round_trips: AtomicU64,
    delete_requests: AtomicU64,
}

impl StorageStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a whole-object GET of `bytes`.
    pub fn record_get(&self, bytes: u64) {
        self.get_requests.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
        self.logical_reads.fetch_add(1, Ordering::Relaxed);
        self.round_trips.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a range GET of `bytes`.
    pub fn record_range(&self, bytes: u64) {
        self.range_requests.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
        self.logical_reads.fetch_add(1, Ordering::Relaxed);
        self.round_trips.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one executed batch: `logical` requests served by `fetches`
    /// coalesced backend fetches moving `bytes` in total, paying a single
    /// amortized round trip. A batch that issued no backend fetch at all
    /// (fully cache-served or empty) pays no round trip.
    pub fn record_batch(&self, logical: u64, fetches: u64, bytes: u64) {
        self.batch_requests.fetch_add(1, Ordering::Relaxed);
        self.logical_reads.fetch_add(logical, Ordering::Relaxed);
        self.coalesced_fetches.fetch_add(fetches, Ordering::Relaxed);
        if fetches > 0 {
            self.round_trips.fetch_add(1, Ordering::Relaxed);
        }
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record a batched prefix deletion of `keys` keys (one round trip).
    pub fn record_delete_prefix(&self, keys: u64) {
        self.delete_requests.fetch_add(keys, Ordering::Relaxed);
        self.round_trips.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one request/response round trip over a wire transport:
    /// `sent` request bytes written, `received` response bytes read. Used
    /// by remote storage clients and servers, where every frame exchange
    /// is exactly one network round trip regardless of how many logical
    /// reads it carried.
    pub fn record_wire(&self, sent: u64, received: u64) {
        self.round_trips.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(sent, Ordering::Relaxed);
        self.bytes_read.fetch_add(received, Ordering::Relaxed);
    }

    /// Record a PUT of `bytes`.
    pub fn record_put(&self, bytes: u64) {
        self.put_requests.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record a cache hit.
    pub fn record_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a cache miss.
    pub fn record_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one evicted cache entry. Byte-budgeted caches (the LRU
    /// storage tier, the hub's query-result cache) bump this once per
    /// entry dropped to stay within budget — the counter that shows a
    /// cache is *churning*, which hit ratio alone cannot.
    pub fn record_eviction(&self) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Total GET requests (whole + range).
    pub fn requests(&self) -> u64 {
        self.get_requests.load(Ordering::Relaxed) + self.range_requests.load(Ordering::Relaxed)
    }

    /// Whole-object GETs.
    pub fn get_requests(&self) -> u64 {
        self.get_requests.load(Ordering::Relaxed)
    }

    /// Range GETs.
    pub fn range_requests(&self) -> u64 {
        self.range_requests.load(Ordering::Relaxed)
    }

    /// PUTs.
    pub fn put_requests(&self) -> u64 {
        self.put_requests.load(Ordering::Relaxed)
    }

    /// Bytes fetched.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    /// Bytes stored.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }

    /// Cache hits.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Cache misses.
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses.load(Ordering::Relaxed)
    }

    /// Entries evicted to stay within a byte budget.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Executed batches ([`crate::StorageProvider::execute`] calls).
    pub fn batch_requests(&self) -> u64 {
        self.batch_requests.load(Ordering::Relaxed)
    }

    /// Logical read requests: single-key gets plus batch members.
    pub fn logical_reads(&self) -> u64 {
        self.logical_reads.load(Ordering::Relaxed)
    }

    /// Backend fetches issued on behalf of batches (after coalescing).
    pub fn coalesced_fetches(&self) -> u64 {
        self.coalesced_fetches.load(Ordering::Relaxed)
    }

    /// Latency-bearing round trips: one per single-key read, one per
    /// batch, one per batched prefix delete. The headline number the
    /// batched API drives down — compare against
    /// [`logical_reads`](Self::logical_reads).
    pub fn round_trips(&self) -> u64 {
        self.round_trips.load(Ordering::Relaxed)
    }

    /// Keys removed through batched prefix deletion.
    pub fn delete_requests(&self) -> u64 {
        self.delete_requests.load(Ordering::Relaxed)
    }

    /// Hit ratio in `[0, 1]`; 0 when no lookups happened.
    pub fn hit_ratio(&self) -> f64 {
        let h = self.cache_hits() as f64;
        let m = self.cache_misses() as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        self.get_requests.store(0, Ordering::Relaxed);
        self.range_requests.store(0, Ordering::Relaxed);
        self.put_requests.store(0, Ordering::Relaxed);
        self.bytes_read.store(0, Ordering::Relaxed);
        self.bytes_written.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
        self.cache_misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.batch_requests.store(0, Ordering::Relaxed);
        self.logical_reads.store(0, Ordering::Relaxed);
        self.coalesced_fetches.store(0, Ordering::Relaxed);
        self.round_trips.store(0, Ordering::Relaxed);
        self.delete_requests.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting() {
        let s = StorageStats::new();
        s.record_get(100);
        s.record_range(50);
        s.record_put(10);
        assert_eq!(s.requests(), 2);
        assert_eq!(s.bytes_read(), 150);
        assert_eq!(s.bytes_written(), 10);
        s.reset();
        assert_eq!(s.requests(), 0);
        assert_eq!(s.bytes_read(), 0);
    }

    #[test]
    fn batch_accounting() {
        let s = StorageStats::new();
        s.record_get(10); // one single-key read
        s.record_batch(8, 2, 100); // 8 logical reads via 2 coalesced fetches
        assert_eq!(s.logical_reads(), 9);
        assert_eq!(s.round_trips(), 2);
        assert_eq!(s.batch_requests(), 1);
        assert_eq!(s.coalesced_fetches(), 2);
        assert_eq!(s.bytes_read(), 110);
        s.record_delete_prefix(5);
        assert_eq!(s.delete_requests(), 5);
        assert_eq!(s.round_trips(), 3);
        // an all-hit or empty batch pays no round trip
        s.record_batch(4, 0, 0);
        assert_eq!(s.round_trips(), 3);
        assert_eq!(s.batch_requests(), 2);
        s.reset();
        assert_eq!(s.logical_reads() + s.round_trips() + s.batch_requests(), 0);
    }

    #[test]
    fn wire_accounting() {
        let s = StorageStats::new();
        s.record_wire(100, 4000);
        s.record_wire(50, 10);
        assert_eq!(s.round_trips(), 2);
        assert_eq!(s.bytes_written(), 150);
        assert_eq!(s.bytes_read(), 4010);
        assert_eq!(s.requests(), 0, "wire frames are not single-key GETs");
    }

    #[test]
    fn hit_ratio() {
        let s = StorageStats::new();
        assert_eq!(s.hit_ratio(), 0.0);
        s.record_hit();
        s.record_hit();
        s.record_miss();
        assert!((s.hit_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }
}
