//! Request/byte accounting shared by the simulated cloud and the cache.
//!
//! Since the observability PR the counters are [`deeplake_obs::Counter`]
//! handles, so a stats bag can attach itself to a live
//! [`MetricsRegistry`] ([`StorageStats::register_into`]) and show up in
//! a hub's `Metrics` snapshot without the recording paths changing. The
//! method surface is unchanged from the plain-atomics version.
//!
//! Reading a consistent set of values goes through
//! [`StorageStats::snapshot`], an explicit value type — two benchmark
//! phases diff two snapshots instead of both calling
//! [`reset`](StorageStats::reset) and silently clobbering each other's
//! baseline (the double-reset hazard).

use deeplake_obs::{Counter, MetricsRegistry};

/// Cumulative storage traffic counters. All methods are lock-free; snapshot
/// reads are eventually consistent, which is fine for benchmarking.
#[derive(Debug, Default)]
pub struct StorageStats {
    get_requests: Counter,
    range_requests: Counter,
    put_requests: Counter,
    bytes_read: Counter,
    bytes_written: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    evictions: Counter,
    batch_requests: Counter,
    logical_reads: Counter,
    coalesced_fetches: Counter,
    round_trips: Counter,
    delete_requests: Counter,
}

/// One frozen reading of a [`StorageStats`] bag: plain values, so two
/// snapshots diff cleanly ([`StorageStatsSnapshot::delta_since`]) and no
/// caller needs to reset shared counters to measure an interval.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StorageStatsSnapshot {
    /// Whole-object GETs.
    pub get_requests: u64,
    /// Range GETs.
    pub range_requests: u64,
    /// PUTs.
    pub put_requests: u64,
    /// Bytes fetched.
    pub bytes_read: u64,
    /// Bytes stored.
    pub bytes_written: u64,
    /// Cache hits.
    pub cache_hits: u64,
    /// Cache misses.
    pub cache_misses: u64,
    /// Entries evicted to stay within a byte budget.
    pub evictions: u64,
    /// Executed batches.
    pub batch_requests: u64,
    /// Logical read requests: single-key gets plus batch members.
    pub logical_reads: u64,
    /// Backend fetches issued on behalf of batches (after coalescing).
    pub coalesced_fetches: u64,
    /// Latency-bearing round trips.
    pub round_trips: u64,
    /// Keys removed through batched prefix deletion.
    pub delete_requests: u64,
}

impl StorageStatsSnapshot {
    /// Total GET requests (whole + range).
    pub fn requests(&self) -> u64 {
        self.get_requests + self.range_requests
    }

    /// Hit ratio in `[0, 1]`; 0 when no lookups happened.
    pub fn hit_ratio(&self) -> f64 {
        let (h, m) = (self.cache_hits as f64, self.cache_misses as f64);
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }

    /// Counter growth since an `earlier` snapshot of the same bag
    /// (saturating, so a counter reset between the two reads yields 0
    /// rather than wrapping).
    pub fn delta_since(&self, earlier: &StorageStatsSnapshot) -> StorageStatsSnapshot {
        StorageStatsSnapshot {
            get_requests: self.get_requests.saturating_sub(earlier.get_requests),
            range_requests: self.range_requests.saturating_sub(earlier.range_requests),
            put_requests: self.put_requests.saturating_sub(earlier.put_requests),
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            bytes_written: self.bytes_written.saturating_sub(earlier.bytes_written),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            cache_misses: self.cache_misses.saturating_sub(earlier.cache_misses),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            batch_requests: self.batch_requests.saturating_sub(earlier.batch_requests),
            logical_reads: self.logical_reads.saturating_sub(earlier.logical_reads),
            coalesced_fetches: self
                .coalesced_fetches
                .saturating_sub(earlier.coalesced_fetches),
            round_trips: self.round_trips.saturating_sub(earlier.round_trips),
            delete_requests: self.delete_requests.saturating_sub(earlier.delete_requests),
        }
    }
}

impl StorageStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Freeze every counter into a plain value snapshot.
    pub fn snapshot(&self) -> StorageStatsSnapshot {
        StorageStatsSnapshot {
            get_requests: self.get_requests.get(),
            range_requests: self.range_requests.get(),
            put_requests: self.put_requests.get(),
            bytes_read: self.bytes_read.get(),
            bytes_written: self.bytes_written.get(),
            cache_hits: self.cache_hits.get(),
            cache_misses: self.cache_misses.get(),
            evictions: self.evictions.get(),
            batch_requests: self.batch_requests.get(),
            logical_reads: self.logical_reads.get(),
            coalesced_fetches: self.coalesced_fetches.get(),
            round_trips: self.round_trips.get(),
            delete_requests: self.delete_requests.get(),
        }
    }

    /// Attach every counter to `registry` under `<prefix>.<name>` —
    /// the live handles, not copies, so future traffic shows up in the
    /// registry's snapshots with zero extra recording cost.
    pub fn register_into(&self, registry: &MetricsRegistry, prefix: &str) {
        let name = |n: &str| format!("{prefix}.{n}");
        registry.register_counter(&name("get_requests"), &self.get_requests);
        registry.register_counter(&name("range_requests"), &self.range_requests);
        registry.register_counter(&name("put_requests"), &self.put_requests);
        registry.register_counter(&name("bytes_read"), &self.bytes_read);
        registry.register_counter(&name("bytes_written"), &self.bytes_written);
        registry.register_counter(&name("cache_hits"), &self.cache_hits);
        registry.register_counter(&name("cache_misses"), &self.cache_misses);
        registry.register_counter(&name("evictions"), &self.evictions);
        registry.register_counter(&name("batch_requests"), &self.batch_requests);
        registry.register_counter(&name("logical_reads"), &self.logical_reads);
        registry.register_counter(&name("coalesced_fetches"), &self.coalesced_fetches);
        registry.register_counter(&name("round_trips"), &self.round_trips);
        registry.register_counter(&name("delete_requests"), &self.delete_requests);
    }

    /// Record a whole-object GET of `bytes`.
    pub fn record_get(&self, bytes: u64) {
        self.get_requests.inc();
        self.bytes_read.add(bytes);
        self.logical_reads.inc();
        self.round_trips.inc();
    }

    /// Record a range GET of `bytes`.
    pub fn record_range(&self, bytes: u64) {
        self.range_requests.inc();
        self.bytes_read.add(bytes);
        self.logical_reads.inc();
        self.round_trips.inc();
    }

    /// Record one executed batch: `logical` requests served by `fetches`
    /// coalesced backend fetches moving `bytes` in total, paying a single
    /// amortized round trip. A batch that issued no backend fetch at all
    /// (fully cache-served or empty) pays no round trip.
    pub fn record_batch(&self, logical: u64, fetches: u64, bytes: u64) {
        self.batch_requests.inc();
        self.logical_reads.add(logical);
        self.coalesced_fetches.add(fetches);
        if fetches > 0 {
            self.round_trips.inc();
        }
        self.bytes_read.add(bytes);
    }

    /// Record a batched prefix deletion of `keys` keys (one round trip).
    pub fn record_delete_prefix(&self, keys: u64) {
        self.delete_requests.add(keys);
        self.round_trips.inc();
    }

    /// Record one request/response round trip over a wire transport:
    /// `sent` request bytes written, `received` response bytes read. Used
    /// by remote storage clients and servers, where every frame exchange
    /// is exactly one network round trip regardless of how many logical
    /// reads it carried.
    pub fn record_wire(&self, sent: u64, received: u64) {
        self.round_trips.inc();
        self.bytes_written.add(sent);
        self.bytes_read.add(received);
    }

    /// Record a PUT of `bytes`.
    pub fn record_put(&self, bytes: u64) {
        self.put_requests.inc();
        self.bytes_written.add(bytes);
    }

    /// Record a cache hit.
    pub fn record_hit(&self) {
        self.cache_hits.inc();
    }

    /// Record a cache miss.
    pub fn record_miss(&self) {
        self.cache_misses.inc();
    }

    /// Record one evicted cache entry. Byte-budgeted caches (the LRU
    /// storage tier, the hub's query-result cache) bump this once per
    /// entry dropped to stay within budget — the counter that shows a
    /// cache is *churning*, which hit ratio alone cannot.
    pub fn record_eviction(&self) {
        self.evictions.inc();
    }

    /// Total GET requests (whole + range).
    pub fn requests(&self) -> u64 {
        self.get_requests.get() + self.range_requests.get()
    }

    /// Whole-object GETs.
    pub fn get_requests(&self) -> u64 {
        self.get_requests.get()
    }

    /// Range GETs.
    pub fn range_requests(&self) -> u64 {
        self.range_requests.get()
    }

    /// PUTs.
    pub fn put_requests(&self) -> u64 {
        self.put_requests.get()
    }

    /// Bytes fetched.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.get()
    }

    /// Bytes stored.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.get()
    }

    /// Cache hits.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.get()
    }

    /// Cache misses.
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses.get()
    }

    /// Entries evicted to stay within a byte budget.
    pub fn evictions(&self) -> u64 {
        self.evictions.get()
    }

    /// Executed batches ([`crate::StorageProvider::execute`] calls).
    pub fn batch_requests(&self) -> u64 {
        self.batch_requests.get()
    }

    /// Logical read requests: single-key gets plus batch members.
    pub fn logical_reads(&self) -> u64 {
        self.logical_reads.get()
    }

    /// Backend fetches issued on behalf of batches (after coalescing).
    pub fn coalesced_fetches(&self) -> u64 {
        self.coalesced_fetches.get()
    }

    /// Latency-bearing round trips: one per single-key read, one per
    /// batch, one per batched prefix delete. The headline number the
    /// batched API drives down — compare against
    /// [`logical_reads`](Self::logical_reads).
    pub fn round_trips(&self) -> u64 {
        self.round_trips.get()
    }

    /// Keys removed through batched prefix deletion.
    pub fn delete_requests(&self) -> u64 {
        self.delete_requests.get()
    }

    /// Hit ratio in `[0, 1]`; 0 when no lookups happened.
    pub fn hit_ratio(&self) -> f64 {
        self.snapshot().hit_ratio()
    }

    /// Reset all counters to zero. Prefer diffing two
    /// [`snapshot`](Self::snapshot)s in new code — a reset is visible to
    /// every other holder of these stats.
    pub fn reset(&self) {
        self.get_requests.reset();
        self.range_requests.reset();
        self.put_requests.reset();
        self.bytes_read.reset();
        self.bytes_written.reset();
        self.cache_hits.reset();
        self.cache_misses.reset();
        self.evictions.reset();
        self.batch_requests.reset();
        self.logical_reads.reset();
        self.coalesced_fetches.reset();
        self.round_trips.reset();
        self.delete_requests.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting() {
        let s = StorageStats::new();
        s.record_get(100);
        s.record_range(50);
        s.record_put(10);
        assert_eq!(s.requests(), 2);
        assert_eq!(s.bytes_read(), 150);
        assert_eq!(s.bytes_written(), 10);
        s.reset();
        assert_eq!(s.requests(), 0);
        assert_eq!(s.bytes_read(), 0);
    }

    #[test]
    fn batch_accounting() {
        let s = StorageStats::new();
        s.record_get(10); // one single-key read
        s.record_batch(8, 2, 100); // 8 logical reads via 2 coalesced fetches
        assert_eq!(s.logical_reads(), 9);
        assert_eq!(s.round_trips(), 2);
        assert_eq!(s.batch_requests(), 1);
        assert_eq!(s.coalesced_fetches(), 2);
        assert_eq!(s.bytes_read(), 110);
        s.record_delete_prefix(5);
        assert_eq!(s.delete_requests(), 5);
        assert_eq!(s.round_trips(), 3);
        // an all-hit or empty batch pays no round trip
        s.record_batch(4, 0, 0);
        assert_eq!(s.round_trips(), 3);
        assert_eq!(s.batch_requests(), 2);
        s.reset();
        assert_eq!(s.logical_reads() + s.round_trips() + s.batch_requests(), 0);
    }

    #[test]
    fn wire_accounting() {
        let s = StorageStats::new();
        s.record_wire(100, 4000);
        s.record_wire(50, 10);
        assert_eq!(s.round_trips(), 2);
        assert_eq!(s.bytes_written(), 150);
        assert_eq!(s.bytes_read(), 4010);
        assert_eq!(s.requests(), 0, "wire frames are not single-key GETs");
    }

    #[test]
    fn hit_ratio() {
        let s = StorageStats::new();
        assert_eq!(s.hit_ratio(), 0.0);
        s.record_hit();
        s.record_hit();
        s.record_miss();
        assert!((s.hit_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn snapshot_deltas_replace_double_reset() {
        // two measurement phases over the same shared bag, neither
        // resetting: each diffs its own pair of snapshots
        let s = StorageStats::new();
        s.record_get(100);
        let phase1_start = s.snapshot();
        s.record_get(50);
        s.record_put(7);
        let phase1 = s.snapshot().delta_since(&phase1_start);
        assert_eq!(phase1.get_requests, 1);
        assert_eq!(phase1.bytes_read, 50);
        assert_eq!(phase1.put_requests, 1);
        // the cumulative view is untouched
        assert_eq!(s.requests(), 2);
        assert_eq!(s.snapshot().requests(), 2);
    }

    #[test]
    fn register_into_exposes_live_counters() {
        let reg = deeplake_obs::MetricsRegistry::new();
        let s = StorageStats::new();
        s.register_into(&reg, "storage");
        s.record_get(64);
        s.record_hit();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("storage.get_requests"), Some(1));
        assert_eq!(snap.counter("storage.bytes_read"), Some(64));
        assert_eq!(snap.counter("storage.cache_hits"), Some(1));
    }
}
