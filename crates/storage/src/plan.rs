//! Read plans: batched scatter-gather storage I/O.
//!
//! The paper's streaming numbers (§3.5, §4.6) come from overlapping many
//! concurrent range requests against object storage. A single-key
//! `get`/`get_range` API forces one round trip per chunk; a [`ReadPlan`]
//! instead carries *all* the reads one loader task needs, and lets the
//! provider
//!
//! * **coalesce** — adjacent/overlapping ranges on the same key (and
//!   ranges within [`ReadPlan::gap_tolerance`] bytes of each other) merge
//!   into one backend fetch, and any whole-object request subsumes every
//!   range on that key;
//! * **parallelize / amortize** — [`crate::LocalProvider`] fans fetches
//!   out over scoped threads, [`crate::SimulatedCloudProvider`] charges a
//!   single amortized first-byte latency per batch, and
//!   [`crate::LruCacheProvider`] fills all misses with one base batch and
//!   a single eviction pass.
//!
//! The planning logic lives here so every provider — including
//! third-party ones that only implement the single-key methods — shares
//! one implementation of merge and scatter-back (see
//! [`ReadPlan::coalesce`] and [`CoalescedFetch::distribute`]).

use bytes::Bytes;

use crate::error::StorageError;
use crate::Result;

/// Gap (in bytes) below which two ranges on one key are merged into a
/// single backend fetch. Mirrors the classic object-store heuristic that
/// re-reading a small gap is cheaper than a second round trip.
pub const DEFAULT_GAP_TOLERANCE: u64 = 4096;

/// One logical read: a whole object or a byte range of it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadRequest {
    /// Object key.
    pub key: String,
    /// `None` = whole object; `Some((start, end))` = byte range, end
    /// exclusive, clamped to the object length like
    /// [`crate::StorageProvider::get_range`].
    pub range: Option<(u64, u64)>,
}

impl ReadRequest {
    /// Request a whole object.
    pub fn whole(key: impl Into<String>) -> Self {
        ReadRequest {
            key: key.into(),
            range: None,
        }
    }

    /// Request `start..end` (end exclusive) of an object.
    pub fn range(key: impl Into<String>, start: u64, end: u64) -> Self {
        ReadRequest {
            key: key.into(),
            range: Some((start, end)),
        }
    }
}

/// A batch of logical reads a provider may coalesce and parallelize.
#[derive(Debug, Clone, Default)]
pub struct ReadPlan {
    requests: Vec<ReadRequest>,
    gap_tolerance: u64,
}

impl ReadPlan {
    /// An empty plan with the default gap tolerance.
    pub fn new() -> Self {
        ReadPlan {
            requests: Vec::new(),
            gap_tolerance: DEFAULT_GAP_TOLERANCE,
        }
    }

    /// An empty plan merging ranges separated by up to `gap` bytes
    /// (`0` = only adjacent/overlapping ranges merge).
    pub fn with_gap_tolerance(gap: u64) -> Self {
        ReadPlan {
            requests: Vec::new(),
            gap_tolerance: gap,
        }
    }

    /// Append a whole-object read; returns the request's index.
    pub fn whole(&mut self, key: impl Into<String>) -> usize {
        self.push(ReadRequest::whole(key))
    }

    /// Append a byte-range read; returns the request's index.
    pub fn range(&mut self, key: impl Into<String>, start: u64, end: u64) -> usize {
        self.push(ReadRequest::range(key, start, end))
    }

    /// Append any request; returns its index (results are positional).
    pub fn push(&mut self, request: ReadRequest) -> usize {
        self.requests.push(request);
        self.requests.len() - 1
    }

    /// The logical requests, in insertion order.
    pub fn requests(&self) -> &[ReadRequest] {
        &self.requests
    }

    /// Number of logical requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the plan holds no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// The configured merge gap.
    pub fn gap_tolerance(&self) -> u64 {
        self.gap_tolerance
    }

    /// Compute the minimal set of backend fetches covering every request.
    ///
    /// Per key (in first-appearance order): a whole-object request
    /// subsumes all ranges on that key into one whole-object fetch;
    /// otherwise ranges are sorted and merged whenever the next range
    /// starts within `gap_tolerance` bytes of the current span's end.
    /// An *inverted* range (`start > end`) never merges — it becomes its
    /// own degenerate fetch so the backend rejects it exactly as the
    /// single-key path would, without poisoning neighbouring requests.
    pub fn coalesce(&self) -> Vec<CoalescedFetch> {
        // group request indices by key, keeping first-appearance order
        let mut key_order: Vec<&str> = Vec::new();
        let mut by_key: std::collections::HashMap<&str, Vec<usize>> =
            std::collections::HashMap::new();
        for (i, r) in self.requests.iter().enumerate() {
            by_key
                .entry(r.key.as_str())
                .or_insert_with(|| {
                    key_order.push(&r.key);
                    Vec::new()
                })
                .push(i);
        }
        let mut fetches = Vec::new();
        for key in key_order {
            let indices = &by_key[key];
            // inverted ranges keep single-key error semantics: issue them
            // verbatim so the backend reports RangeOutOfBounds itself
            for &i in indices {
                if matches!(self.requests[i].range, Some((s, e)) if s > e) {
                    let (s, e) = self.requests[i].range.expect("matched Some");
                    fetches.push(CoalescedFetch {
                        key: key.to_string(),
                        range: Some((s, e)),
                        parts: vec![FetchPart {
                            request_index: i,
                            offset: 0,
                            len: Some(0),
                        }],
                    });
                }
            }
            let valid: Vec<usize> = indices
                .iter()
                .copied()
                .filter(|&i| !matches!(self.requests[i].range, Some((s, e)) if s > e))
                .collect();
            if valid.is_empty() {
                continue;
            }
            if valid.iter().any(|&i| self.requests[i].range.is_none()) {
                // one whole-object fetch serves everything on this key
                let parts = valid
                    .iter()
                    .map(|&i| match self.requests[i].range {
                        None => FetchPart {
                            request_index: i,
                            offset: 0,
                            len: None,
                        },
                        Some((s, e)) => FetchPart {
                            request_index: i,
                            offset: s,
                            len: Some(e - s),
                        },
                    })
                    .collect();
                fetches.push(CoalescedFetch {
                    key: key.to_string(),
                    range: None,
                    parts,
                });
                continue;
            }
            // ranges only: sort by start, merge within the gap tolerance
            let mut ranged: Vec<(usize, u64, u64)> = valid
                .iter()
                .map(|&i| {
                    let (s, e) = self.requests[i].range.expect("whole-object handled above");
                    (i, s, e)
                })
                .collect();
            ranged.sort_by_key(|&(_, s, e)| (s, e));
            let mut span_start = ranged[0].1;
            let mut span_end = ranged[0].2;
            let mut members: Vec<(usize, u64, u64)> = Vec::new();
            for &(i, s, e) in &ranged {
                if s > span_end.saturating_add(self.gap_tolerance) {
                    fetches.push(Self::span_fetch(key, span_start, span_end, &members));
                    members.clear();
                    span_start = s;
                    span_end = e;
                } else {
                    span_end = span_end.max(e);
                }
                members.push((i, s, e));
            }
            fetches.push(Self::span_fetch(key, span_start, span_end, &members));
        }
        fetches
    }

    fn span_fetch(
        key: &str,
        start: u64,
        end: u64,
        members: &[(usize, u64, u64)],
    ) -> CoalescedFetch {
        CoalescedFetch {
            key: key.to_string(),
            range: Some((start, end)),
            parts: members
                .iter()
                .map(|&(i, s, e)| FetchPart {
                    request_index: i,
                    offset: s - start,
                    len: Some(e - s),
                })
                .collect(),
        }
    }
}

impl FromIterator<ReadRequest> for ReadPlan {
    fn from_iter<I: IntoIterator<Item = ReadRequest>>(iter: I) -> Self {
        ReadPlan {
            requests: iter.into_iter().collect(),
            gap_tolerance: DEFAULT_GAP_TOLERANCE,
        }
    }
}

/// One backend fetch produced by [`ReadPlan::coalesce`], with the logical
/// requests it serves.
#[derive(Debug, Clone)]
pub struct CoalescedFetch {
    /// Object key to fetch.
    pub key: String,
    /// `None` = whole object, else the merged byte span.
    pub range: Option<(u64, u64)>,
    /// Logical requests sliced out of this fetch.
    pub parts: Vec<FetchPart>,
}

/// How one logical request maps into its coalesced fetch.
#[derive(Debug, Clone, Copy)]
pub struct FetchPart {
    /// Index into [`ReadPlan::requests`].
    pub request_index: usize,
    /// Byte offset of the request inside the fetched bytes.
    pub offset: u64,
    /// Requested length (`None` = the whole fetched object).
    pub len: Option<u64>,
}

impl CoalescedFetch {
    /// Scatter the fetched bytes (or the fetch error) back onto the
    /// logical requests, writing into `out[request_index]`.
    ///
    /// Clamping follows single-key semantics: a request whose start lies
    /// beyond the (possibly clamped) fetched extent yields
    /// [`StorageError::RangeOutOfBounds`]; an over-long end is clamped.
    pub fn distribute(&self, fetched: Result<Bytes>, out: &mut [Option<Result<Bytes>>]) {
        match fetched {
            Err(e) => {
                for part in &self.parts {
                    out[part.request_index] = Some(Err(e.clone()));
                }
            }
            Ok(data) => {
                let span_start = self.range.map(|(s, _)| s).unwrap_or(0);
                let extent = data.len() as u64;
                for part in &self.parts {
                    let result = match part.len {
                        None => Ok(data.clone()),
                        Some(len) => {
                            if part.offset > extent {
                                Err(StorageError::RangeOutOfBounds {
                                    start: span_start + part.offset,
                                    end: span_start + part.offset + len,
                                    len: span_start + extent,
                                })
                            } else {
                                let end = (part.offset + len).min(extent);
                                Ok(data.slice(part.offset as usize..end as usize))
                            }
                        }
                    };
                    out[part.request_index] = Some(result);
                }
            }
        }
    }
}

/// The outcome of executing a [`ReadPlan`].
#[derive(Debug)]
pub struct ReadResult {
    /// Per-request outcomes, positionally matching
    /// [`ReadPlan::requests`].
    pub results: Vec<Result<Bytes>>,
    /// Backend fetches actually issued (≤ logical requests when the
    /// provider coalesced).
    pub fetches: u64,
}

impl ReadResult {
    /// Consume into the per-request outcomes.
    pub fn into_results(self) -> Vec<Result<Bytes>> {
        self.results
    }

    /// Unwrap every outcome, failing on the first error.
    pub fn into_bytes(self) -> Result<Vec<Bytes>> {
        self.results.into_iter().collect()
    }
}

/// Assemble a [`ReadResult`] by fetching each coalesced span through
/// `fetch` — the shared skeleton of every provider's `execute`.
pub(crate) fn execute_coalesced(
    plan: &ReadPlan,
    mut fetch: impl FnMut(&CoalescedFetch) -> Result<Bytes>,
) -> ReadResult {
    let mut out: Vec<Option<Result<Bytes>>> = vec![None; plan.len()];
    let fetches = plan.coalesce();
    let n = fetches.len() as u64;
    for f in &fetches {
        f.distribute(fetch(f), &mut out);
    }
    ReadResult {
        results: out
            .into_iter()
            .map(|slot| slot.expect("coalesce covers every request"))
            .collect(),
        fetches: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spans(plan: &ReadPlan) -> Vec<(String, Option<(u64, u64)>)> {
        plan.coalesce()
            .into_iter()
            .map(|f| (f.key, f.range))
            .collect()
    }

    #[test]
    fn adjacent_ranges_merge() {
        let mut plan = ReadPlan::with_gap_tolerance(0);
        plan.range("k", 0, 10);
        plan.range("k", 10, 20);
        assert_eq!(spans(&plan), vec![("k".into(), Some((0, 20)))]);
    }

    #[test]
    fn overlapping_ranges_merge() {
        let mut plan = ReadPlan::with_gap_tolerance(0);
        plan.range("k", 0, 15);
        plan.range("k", 10, 30);
        plan.range("k", 5, 12);
        assert_eq!(spans(&plan), vec![("k".into(), Some((0, 30)))]);
    }

    #[test]
    fn gapped_ranges_split_beyond_tolerance() {
        let mut plan = ReadPlan::with_gap_tolerance(4);
        plan.range("k", 0, 10);
        plan.range("k", 14, 20); // gap 4 ≤ tolerance → merge
        plan.range("k", 100, 110); // far → separate fetch
        assert_eq!(
            spans(&plan),
            vec![("k".into(), Some((0, 20))), ("k".into(), Some((100, 110)))]
        );
    }

    #[test]
    fn whole_object_subsumes_ranges() {
        let mut plan = ReadPlan::new();
        plan.range("k", 5, 10);
        plan.whole("k");
        plan.range("k", 90, 95);
        let fetches = plan.coalesce();
        assert_eq!(fetches.len(), 1);
        assert_eq!(fetches[0].range, None);
        assert_eq!(fetches[0].parts.len(), 3);
    }

    #[test]
    fn keys_do_not_merge_across() {
        let mut plan = ReadPlan::with_gap_tolerance(u64::MAX);
        plan.range("a", 0, 10);
        plan.range("b", 0, 10);
        assert_eq!(plan.coalesce().len(), 2);
    }

    #[test]
    fn distribute_slices_by_offset() {
        let mut plan = ReadPlan::with_gap_tolerance(0);
        let first = plan.range("k", 10, 14);
        let second = plan.range("k", 14, 20);
        let fetches = plan.coalesce();
        assert_eq!(fetches.len(), 1);
        let mut out = vec![None, None];
        fetches[0].distribute(Ok(bytes::Bytes::from_static(b"0123456789")), &mut out);
        assert_eq!(
            out[first].take().unwrap().unwrap(),
            bytes::Bytes::from_static(b"0123")
        );
        assert_eq!(
            out[second].take().unwrap().unwrap(),
            bytes::Bytes::from_static(b"456789")
        );
    }

    #[test]
    fn distribute_clamps_and_errors_like_single_key() {
        // object of 10 bytes; requests: in-bounds, over-long (clamped),
        // start-past-end (error)
        let mut plan = ReadPlan::with_gap_tolerance(u64::MAX);
        plan.range("k", 0, 10);
        plan.range("k", 8, 100);
        plan.range("k", 50, 60);
        let fetches = plan.coalesce();
        assert_eq!(fetches.len(), 1, "gap tolerance ∞ merges all");
        let mut out = vec![None, None, None];
        // provider clamps the merged 0..100 fetch to the 10-byte object
        fetches[0].distribute(Ok(bytes::Bytes::from_static(b"0123456789")), &mut out);
        assert_eq!(out[0].take().unwrap().unwrap().len(), 10);
        assert_eq!(
            out[1].take().unwrap().unwrap(),
            bytes::Bytes::from_static(b"89")
        );
        assert!(matches!(
            out[2].take().unwrap(),
            Err(StorageError::RangeOutOfBounds { start: 50, .. })
        ));
    }

    #[test]
    fn distribute_fans_errors_to_all_parts() {
        let mut plan = ReadPlan::new();
        plan.range("gone", 0, 4);
        plan.whole("gone");
        let fetches = plan.coalesce();
        let mut out = vec![None, None];
        fetches[0].distribute(Err(StorageError::NotFound("gone".into())), &mut out);
        assert!(matches!(
            out[0].take().unwrap(),
            Err(StorageError::NotFound(_))
        ));
        assert!(matches!(
            out[1].take().unwrap(),
            Err(StorageError::NotFound(_))
        ));
    }

    #[test]
    fn inverted_ranges_stay_isolated() {
        // start > end must not merge with (or poison) valid neighbours —
        // it surfaces through its own degenerate fetch
        let mut plan = ReadPlan::with_gap_tolerance(u64::MAX);
        plan.range("k", 0, 10);
        plan.range("k", 8, 3);
        let fetches = plan.coalesce();
        assert_eq!(fetches.len(), 2);
        let degenerate = fetches.iter().find(|f| f.range == Some((8, 3))).unwrap();
        assert_eq!(degenerate.parts.len(), 1);
        let merged = fetches.iter().find(|f| f.range == Some((0, 10))).unwrap();
        assert_eq!(merged.parts.len(), 1);
    }

    #[test]
    fn empty_plan_coalesces_to_nothing() {
        assert!(ReadPlan::new().coalesce().is_empty());
        assert!(ReadPlan::new().is_empty());
    }
}
