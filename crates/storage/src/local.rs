//! Local filesystem storage provider.

use std::fs;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

use bytes::Bytes;

use crate::error::StorageError;
use crate::plan::{CoalescedFetch, ReadPlan, ReadResult};
use crate::provider::StorageProvider;
use crate::stats::StorageStats;
use crate::Result;

/// Fan-out width for batched reads: one thread per in-flight fetch, like
/// a dataloader worker's HTTP connection pool.
const READ_PARALLELISM: usize = 8;

/// A provider rooted at a directory on a POSIX filesystem. Keys map to
/// relative paths; intermediate directories are created on write.
pub struct LocalProvider {
    root: PathBuf,
    stats: StorageStats,
}

impl LocalProvider {
    /// Open (creating if needed) a provider rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(LocalProvider {
            root,
            stats: StorageStats::new(),
        })
    }

    /// Root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Traffic counters (successful reads/writes; errors are not counted).
    pub fn stats(&self) -> &StorageStats {
        &self.stats
    }

    fn path_of(&self, key: &str) -> PathBuf {
        // Reject path traversal: keys are logical names, not paths.
        let sanitized: PathBuf = key
            .split('/')
            .filter(|seg| !seg.is_empty() && *seg != "." && *seg != "..")
            .collect();
        self.root.join(sanitized)
    }

    /// Serve one coalesced fetch: open the file once, read the span.
    /// Unrecorded — the batched path accounts once per batch.
    fn read_fetch(&self, fetch: &CoalescedFetch) -> Result<Bytes> {
        match fetch.range {
            None => self.get_raw(&fetch.key),
            Some((start, end)) => self.get_range_raw(&fetch.key, start, end),
        }
    }

    fn get_raw(&self, key: &str) -> Result<Bytes> {
        match fs::read(self.path_of(key)) {
            Ok(data) => Ok(Bytes::from(data)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(StorageError::NotFound(key.to_string()))
            }
            Err(e) => Err(e.into()),
        }
    }

    fn get_range_raw(&self, key: &str, start: u64, end: u64) -> Result<Bytes> {
        let path = self.path_of(key);
        let mut file = match fs::File::open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(StorageError::NotFound(key.to_string()))
            }
            Err(e) => return Err(e.into()),
        };
        let len = file.metadata()?.len();
        if start > len || start > end {
            return Err(StorageError::RangeOutOfBounds { start, end, len });
        }
        let end = end.min(len);
        file.seek(SeekFrom::Start(start))?;
        let mut buf = vec![0u8; (end - start) as usize];
        file.read_exact(&mut buf)?;
        Ok(Bytes::from(buf))
    }
}

impl StorageProvider for LocalProvider {
    fn get(&self, key: &str) -> Result<Bytes> {
        let data = self.get_raw(key)?;
        self.stats.record_get(data.len() as u64);
        Ok(data)
    }

    fn get_range(&self, key: &str, start: u64, end: u64) -> Result<Bytes> {
        let data = self.get_range_raw(key, start, end)?;
        self.stats.record_range(data.len() as u64);
        Ok(data)
    }

    fn put(&self, key: &str, value: Bytes) -> Result<()> {
        let path = self.path_of(key);
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, &value)?;
        self.stats.record_put(value.len() as u64);
        Ok(())
    }

    fn delete(&self, key: &str) -> Result<()> {
        match fs::remove_file(self.path_of(key)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    fn exists(&self, key: &str) -> Result<bool> {
        Ok(self.path_of(key).is_file())
    }

    fn len_of(&self, key: &str) -> Result<u64> {
        match fs::metadata(self.path_of(key)) {
            Ok(m) => Ok(m.len()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(StorageError::NotFound(key.to_string()))
            }
            Err(e) => Err(e.into()),
        }
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        let mut keys = Vec::new();
        collect_files(&self.root, &self.root, &mut keys)?;
        keys.retain(|k| k.starts_with(prefix));
        keys.sort();
        Ok(keys)
    }

    fn describe(&self) -> String {
        format!("local({})", self.root.display())
    }

    /// Coalesce, then fan the merged fetches out over scoped threads —
    /// seek-heavy batches overlap their syscalls the way loader workers
    /// overlap range requests against a remote store.
    fn execute(&self, plan: &ReadPlan) -> ReadResult {
        let fetches = plan.coalesce();
        let n_fetches = fetches.len();
        let mut fetched: Vec<Option<Result<Bytes>>> = Vec::new();
        fetched.resize_with(n_fetches, || None);
        if n_fetches <= 1 {
            for (slot, fetch) in fetched.iter_mut().zip(&fetches) {
                *slot = Some(self.read_fetch(fetch));
            }
        } else {
            let workers = READ_PARALLELISM.min(n_fetches);
            let per_worker = n_fetches.div_ceil(workers);
            std::thread::scope(|scope| {
                for (slot_chunk, fetch_chunk) in fetched
                    .chunks_mut(per_worker)
                    .zip(fetches.chunks(per_worker))
                {
                    scope.spawn(move || {
                        for (slot, fetch) in slot_chunk.iter_mut().zip(fetch_chunk) {
                            *slot = Some(self.read_fetch(fetch));
                        }
                    });
                }
            });
        }
        let mut out: Vec<Option<Result<Bytes>>> = vec![None; plan.len()];
        let mut bytes_moved = 0u64;
        for (fetch, result) in fetches.iter().zip(fetched) {
            let result = result.expect("every fetch ran");
            if let Ok(data) = &result {
                bytes_moved += data.len() as u64;
            }
            fetch.distribute(result, &mut out);
        }
        self.stats
            .record_batch(plan.len() as u64, n_fetches as u64, bytes_moved);
        ReadResult {
            results: out
                .into_iter()
                .map(|slot| slot.expect("plan covered"))
                .collect(),
            fetches: n_fetches as u64,
        }
    }

    /// Remove the subtree in one filesystem walk instead of per-key
    /// stat+unlink round trips.
    fn delete_prefix(&self, prefix: &str) -> Result<()> {
        // Directory-aligned prefixes (the common case: `versions/v3/`)
        // map to one recursive directory removal — but only when the
        // string prefix and its sanitized path agree. A prefix like
        // `a//` or `a/../` matches no keys under string semantics, and
        // `path_of`'s segment filtering must not silently widen it into
        // a whole-directory delete.
        let trimmed = prefix.trim_end_matches('/');
        let dir_aligned = !trimmed.is_empty()
            && prefix.len() == trimmed.len() + 1 // exactly one trailing '/'
            && trimmed
                .split('/')
                .all(|seg| !seg.is_empty() && seg != "." && seg != "..");
        if dir_aligned {
            let as_dir = self.path_of(trimmed);
            if as_dir.is_dir() && as_dir != self.root {
                return match fs::remove_dir_all(&as_dir) {
                    Ok(()) => Ok(()),
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
                    Err(e) => Err(e.into()),
                };
            }
        }
        for key in self.list(prefix)? {
            self.delete(&key)?;
        }
        Ok(())
    }
}

fn collect_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<()> {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(e.into()),
    };
    for entry in entries {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_files(root, &path, out)?;
        } else if let Ok(rel) = path.strip_prefix(root) {
            out.push(rel.to_string_lossy().replace('\\', "/"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "deeplake-storage-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_with_nested_keys() {
        let p = LocalProvider::new(tmp()).unwrap();
        p.put("ds/tensors/images/chunks/c0", Bytes::from_static(b"data"))
            .unwrap();
        assert_eq!(
            p.get("ds/tensors/images/chunks/c0").unwrap(),
            Bytes::from_static(b"data")
        );
        assert_eq!(
            p.list("ds/tensors/").unwrap(),
            vec!["ds/tensors/images/chunks/c0"]
        );
        fs::remove_dir_all(p.root()).unwrap();
    }

    #[test]
    fn range_reads_seek() {
        let p = LocalProvider::new(tmp()).unwrap();
        p.put("k", Bytes::from_static(b"0123456789")).unwrap();
        assert_eq!(p.get_range("k", 3, 7).unwrap(), Bytes::from_static(b"3456"));
        assert_eq!(
            p.get_range("k", 5, 99).unwrap(),
            Bytes::from_static(b"56789")
        );
        assert!(p.get_range("k", 20, 25).is_err());
        fs::remove_dir_all(p.root()).unwrap();
    }

    #[test]
    fn missing_key_not_found() {
        let p = LocalProvider::new(tmp()).unwrap();
        assert!(matches!(p.get("absent"), Err(StorageError::NotFound(_))));
        assert!(!p.exists("absent").unwrap());
        p.delete("absent").unwrap(); // idempotent
        fs::remove_dir_all(p.root()).unwrap();
    }

    #[test]
    fn traversal_keys_are_sanitized() {
        let p = LocalProvider::new(tmp()).unwrap();
        p.put("../../escape", Bytes::from_static(b"x")).unwrap();
        // the object is stored under root, not outside it
        assert!(p.root().join("escape").is_file());
        fs::remove_dir_all(p.root()).unwrap();
    }

    #[test]
    fn delete_prefix_is_string_prefixed_not_path_normalized() {
        let p = LocalProvider::new(tmp()).unwrap();
        p.put("a/b", Bytes::from_static(b"x")).unwrap();
        // these match no keys under string semantics; the sanitized-path
        // fast path must not widen them into deleting directory `a`
        p.delete_prefix("a//").unwrap();
        p.delete_prefix("a/../").unwrap();
        p.delete_prefix("a/./").unwrap();
        assert!(p.exists("a/b").unwrap());
        // the aligned form does delete
        p.delete_prefix("a/").unwrap();
        assert!(!p.exists("a/b").unwrap());
        fs::remove_dir_all(p.root()).unwrap();
    }

    #[test]
    fn stats_count_traffic() {
        let p = LocalProvider::new(tmp()).unwrap();
        p.put("k", Bytes::from(vec![1u8; 64])).unwrap();
        assert_eq!(p.stats().bytes_written(), 64);
        p.get("k").unwrap();
        p.get_range("k", 0, 16).unwrap();
        assert_eq!(p.stats().bytes_read(), 80);
        let mut plan = ReadPlan::new();
        plan.whole("k");
        plan.range("k", 0, 8);
        p.execute(&plan);
        // batched reads count once per batch, not per single-key call
        assert_eq!(p.stats().batch_requests(), 1);
        assert_eq!(p.stats().requests(), 2);
        fs::remove_dir_all(p.root()).unwrap();
    }

    #[test]
    fn overwrite_replaces() {
        let p = LocalProvider::new(tmp()).unwrap();
        p.put("k", Bytes::from_static(b"first")).unwrap();
        p.put("k", Bytes::from_static(b"second!")).unwrap();
        assert_eq!(p.len_of("k").unwrap(), 7);
        fs::remove_dir_all(p.root()).unwrap();
    }
}
