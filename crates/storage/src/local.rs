//! Local filesystem storage provider.

use std::fs;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

use bytes::Bytes;

use crate::error::StorageError;
use crate::provider::StorageProvider;
use crate::Result;

/// A provider rooted at a directory on a POSIX filesystem. Keys map to
/// relative paths; intermediate directories are created on write.
pub struct LocalProvider {
    root: PathBuf,
}

impl LocalProvider {
    /// Open (creating if needed) a provider rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(LocalProvider { root })
    }

    /// Root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path_of(&self, key: &str) -> PathBuf {
        // Reject path traversal: keys are logical names, not paths.
        let sanitized: PathBuf = key
            .split('/')
            .filter(|seg| !seg.is_empty() && *seg != "." && *seg != "..")
            .collect();
        self.root.join(sanitized)
    }
}

impl StorageProvider for LocalProvider {
    fn get(&self, key: &str) -> Result<Bytes> {
        match fs::read(self.path_of(key)) {
            Ok(data) => Ok(Bytes::from(data)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(StorageError::NotFound(key.to_string()))
            }
            Err(e) => Err(e.into()),
        }
    }

    fn get_range(&self, key: &str, start: u64, end: u64) -> Result<Bytes> {
        let path = self.path_of(key);
        let mut file = match fs::File::open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(StorageError::NotFound(key.to_string()))
            }
            Err(e) => return Err(e.into()),
        };
        let len = file.metadata()?.len();
        if start > len || start > end {
            return Err(StorageError::RangeOutOfBounds { start, end, len });
        }
        let end = end.min(len);
        file.seek(SeekFrom::Start(start))?;
        let mut buf = vec![0u8; (end - start) as usize];
        file.read_exact(&mut buf)?;
        Ok(Bytes::from(buf))
    }

    fn put(&self, key: &str, value: Bytes) -> Result<()> {
        let path = self.path_of(key);
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, &value)?;
        Ok(())
    }

    fn delete(&self, key: &str) -> Result<()> {
        match fs::remove_file(self.path_of(key)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    fn exists(&self, key: &str) -> Result<bool> {
        Ok(self.path_of(key).is_file())
    }

    fn len_of(&self, key: &str) -> Result<u64> {
        match fs::metadata(self.path_of(key)) {
            Ok(m) => Ok(m.len()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(StorageError::NotFound(key.to_string()))
            }
            Err(e) => Err(e.into()),
        }
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        let mut keys = Vec::new();
        collect_files(&self.root, &self.root, &mut keys)?;
        keys.retain(|k| k.starts_with(prefix));
        keys.sort();
        Ok(keys)
    }

    fn describe(&self) -> String {
        format!("local({})", self.root.display())
    }
}

fn collect_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<()> {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(e.into()),
    };
    for entry in entries {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_files(root, &path, out)?;
        } else if let Ok(rel) = path.strip_prefix(root) {
            out.push(rel.to_string_lossy().replace('\\', "/"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "deeplake-storage-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_with_nested_keys() {
        let p = LocalProvider::new(tmp()).unwrap();
        p.put("ds/tensors/images/chunks/c0", Bytes::from_static(b"data")).unwrap();
        assert_eq!(p.get("ds/tensors/images/chunks/c0").unwrap(), Bytes::from_static(b"data"));
        assert_eq!(p.list("ds/tensors/").unwrap(), vec!["ds/tensors/images/chunks/c0"]);
        fs::remove_dir_all(p.root()).unwrap();
    }

    #[test]
    fn range_reads_seek() {
        let p = LocalProvider::new(tmp()).unwrap();
        p.put("k", Bytes::from_static(b"0123456789")).unwrap();
        assert_eq!(p.get_range("k", 3, 7).unwrap(), Bytes::from_static(b"3456"));
        assert_eq!(p.get_range("k", 5, 99).unwrap(), Bytes::from_static(b"56789"));
        assert!(p.get_range("k", 20, 25).is_err());
        fs::remove_dir_all(p.root()).unwrap();
    }

    #[test]
    fn missing_key_not_found() {
        let p = LocalProvider::new(tmp()).unwrap();
        assert!(matches!(p.get("absent"), Err(StorageError::NotFound(_))));
        assert!(!p.exists("absent").unwrap());
        p.delete("absent").unwrap(); // idempotent
        fs::remove_dir_all(p.root()).unwrap();
    }

    #[test]
    fn traversal_keys_are_sanitized() {
        let p = LocalProvider::new(tmp()).unwrap();
        p.put("../../escape", Bytes::from_static(b"x")).unwrap();
        // the object is stored under root, not outside it
        assert!(p.root().join("escape").is_file());
        fs::remove_dir_all(p.root()).unwrap();
    }

    #[test]
    fn overwrite_replaces() {
        let p = LocalProvider::new(tmp()).unwrap();
        p.put("k", Bytes::from_static(b"first")).unwrap();
        p.put("k", Bytes::from_static(b"second!")).unwrap();
        assert_eq!(p.len_of("k").unwrap(), 7);
        fs::remove_dir_all(p.root()).unwrap();
    }
}
