//! Key-prefix scoping.
//!
//! Datasets, version sub-directories (§4.2: "different versions of the
//! dataset exist in the same storage, separated by sub-directories") and
//! per-tensor folders are all expressed as prefixes of one underlying
//! provider. [`PrefixProvider`] rebases every key under a fixed prefix so
//! higher layers can work with local names — *including inside errors*: a
//! [`StorageError::NotFound`] surfacing through a scoped provider names
//! the key the caller asked for, not the absolute key, so errors
//! round-trip identically whether the provider is scoped, remote, or
//! bare (the loader and the remote error frames rely on this).

use std::sync::Arc;

use bytes::Bytes;

use crate::error::StorageError;
use crate::plan::{ReadPlan, ReadRequest, ReadResult};
use crate::provider::{DynProvider, StorageProvider};
use crate::stats::StorageStats;
use crate::Result;

/// A view of a provider rooted at `prefix`.
#[derive(Clone)]
pub struct PrefixProvider {
    inner: DynProvider,
    prefix: String,
    stats: Arc<StorageStats>,
}

impl PrefixProvider {
    /// Scope `inner` under `prefix` (a trailing `/` is appended if absent
    /// and the prefix is non-empty).
    pub fn new(inner: DynProvider, prefix: impl Into<String>) -> Self {
        let mut prefix = prefix.into();
        if !prefix.is_empty() && !prefix.ends_with('/') {
            prefix.push('/');
        }
        PrefixProvider {
            inner,
            prefix,
            stats: Arc::new(StorageStats::new()),
        }
    }

    /// Nest a further prefix under this one.
    pub fn child(&self, sub: &str) -> PrefixProvider {
        PrefixProvider::new(self.inner.clone(), format!("{}{}", self.prefix, sub))
    }

    /// The absolute key this provider maps a local key to.
    pub fn absolute(&self, key: &str) -> String {
        format!("{}{}", self.prefix, key)
    }

    /// The underlying unscoped provider.
    pub fn unscoped(&self) -> DynProvider {
        self.inner.clone()
    }

    /// This provider's prefix.
    pub fn prefix(&self) -> &str {
        &self.prefix
    }

    /// Traffic through *this scope* (clones share the counters). The
    /// per-dataset / per-tensor slice of the underlying provider's total.
    pub fn stats(&self) -> &StorageStats {
        &self.stats
    }

    /// Rebase an error's absolute key back to the scoped name the caller
    /// used, so scoped errors match what an unscoped provider rooted here
    /// would have reported.
    fn rebase_err(&self, e: StorageError) -> StorageError {
        match e {
            StorageError::NotFound(abs) => match abs.strip_prefix(&self.prefix) {
                Some(local) => StorageError::NotFound(local.to_string()),
                None => StorageError::NotFound(abs),
            },
            other => other,
        }
    }
}

impl From<DynProvider> for PrefixProvider {
    fn from(inner: DynProvider) -> Self {
        PrefixProvider::new(inner, "")
    }
}

impl From<crate::MemoryProvider> for PrefixProvider {
    fn from(p: crate::MemoryProvider) -> Self {
        PrefixProvider::new(Arc::new(p), "")
    }
}

impl StorageProvider for PrefixProvider {
    fn get(&self, key: &str) -> Result<Bytes> {
        let data = self
            .inner
            .get(&self.absolute(key))
            .map_err(|e| self.rebase_err(e))?;
        self.stats.record_get(data.len() as u64);
        Ok(data)
    }
    fn get_range(&self, key: &str, start: u64, end: u64) -> Result<Bytes> {
        let data = self
            .inner
            .get_range(&self.absolute(key), start, end)
            .map_err(|e| self.rebase_err(e))?;
        self.stats.record_range(data.len() as u64);
        Ok(data)
    }
    fn put(&self, key: &str, value: Bytes) -> Result<()> {
        self.stats.record_put(value.len() as u64);
        self.inner
            .put(&self.absolute(key), value)
            .map_err(|e| self.rebase_err(e))
    }
    fn delete(&self, key: &str) -> Result<()> {
        self.inner
            .delete(&self.absolute(key))
            .map_err(|e| self.rebase_err(e))
    }
    fn exists(&self, key: &str) -> Result<bool> {
        self.inner
            .exists(&self.absolute(key))
            .map_err(|e| self.rebase_err(e))
    }
    fn len_of(&self, key: &str) -> Result<u64> {
        self.inner
            .len_of(&self.absolute(key))
            .map_err(|e| self.rebase_err(e))
    }
    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        let abs = self.absolute(prefix);
        Ok(self
            .inner
            .list(&abs)
            .map_err(|e| self.rebase_err(e))?
            .into_iter()
            .filter_map(|k| k.strip_prefix(&self.prefix).map(str::to_string))
            .collect())
    }
    fn describe(&self) -> String {
        format!("prefix({:?}, over {})", self.prefix, self.inner.describe())
    }
    fn get_many(&self, requests: &[ReadRequest]) -> Vec<Result<Bytes>> {
        let rebased: Vec<ReadRequest> = requests
            .iter()
            .map(|r| ReadRequest {
                key: self.absolute(&r.key),
                range: r.range,
            })
            .collect();
        let mut bytes_moved = 0u64;
        let out: Vec<Result<Bytes>> = self
            .inner
            .get_many(&rebased)
            .into_iter()
            .map(|r| match r {
                Ok(data) => {
                    bytes_moved += data.len() as u64;
                    Ok(data)
                }
                Err(e) => Err(self.rebase_err(e)),
            })
            .collect();
        self.stats
            .record_batch(requests.len() as u64, requests.len() as u64, bytes_moved);
        out
    }
    fn execute(&self, plan: &ReadPlan) -> ReadResult {
        // results are positional, so only the keys need rebasing
        let mut rebased = ReadPlan::with_gap_tolerance(plan.gap_tolerance());
        for r in plan.requests() {
            rebased.push(ReadRequest {
                key: self.absolute(&r.key),
                range: r.range,
            });
        }
        let outcome = self.inner.execute(&rebased);
        let mut bytes_moved = 0u64;
        let results: Vec<Result<Bytes>> = outcome
            .results
            .into_iter()
            .map(|r| match r {
                Ok(data) => {
                    bytes_moved += data.len() as u64;
                    Ok(data)
                }
                Err(e) => Err(self.rebase_err(e)),
            })
            .collect();
        self.stats
            .record_batch(plan.len() as u64, outcome.fetches, bytes_moved);
        ReadResult {
            results,
            fetches: outcome.fetches,
        }
    }
    fn delete_prefix(&self, prefix: &str) -> Result<()> {
        self.inner
            .delete_prefix(&self.absolute(prefix))
            .map_err(|e| self.rebase_err(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryProvider;

    fn scoped() -> (Arc<MemoryProvider>, PrefixProvider) {
        let base = Arc::new(MemoryProvider::new());
        let p = PrefixProvider::new(base.clone(), "ds1");
        (base, p)
    }

    #[test]
    fn keys_are_rebased() {
        let (base, p) = scoped();
        p.put("tensor/chunk0", Bytes::from_static(b"x")).unwrap();
        assert!(base.exists("ds1/tensor/chunk0").unwrap());
        assert_eq!(p.get("tensor/chunk0").unwrap(), Bytes::from_static(b"x"));
    }

    #[test]
    fn list_strips_prefix() {
        let (base, p) = scoped();
        p.put("a/1", Bytes::new()).unwrap();
        p.put("a/2", Bytes::new()).unwrap();
        base.put("other/3", Bytes::new()).unwrap();
        assert_eq!(p.list("a/").unwrap(), vec!["a/1", "a/2"]);
        assert_eq!(p.list("").unwrap(), vec!["a/1", "a/2"]);
    }

    #[test]
    fn child_nests() {
        let (base, p) = scoped();
        let c = p.child("versions/v2");
        c.put("chunk", Bytes::from_static(b"y")).unwrap();
        assert!(base.exists("ds1/versions/v2/chunk").unwrap());
        assert_eq!(c.absolute("chunk"), "ds1/versions/v2/chunk");
    }

    #[test]
    fn empty_prefix_is_identity() {
        let base = Arc::new(MemoryProvider::new());
        let p = PrefixProvider::new(base.clone(), "");
        p.put("k", Bytes::from_static(b"v")).unwrap();
        assert!(base.exists("k").unwrap());
    }

    #[test]
    fn range_and_len_pass_through() {
        let (_, p) = scoped();
        p.put("k", Bytes::from_static(b"0123456789")).unwrap();
        assert_eq!(p.get_range("k", 1, 3).unwrap(), Bytes::from_static(b"12"));
        assert_eq!(p.len_of("k").unwrap(), 10);
        p.delete("k").unwrap();
        assert!(!p.exists("k").unwrap());
    }

    #[test]
    fn errors_report_scoped_keys() {
        let (_, p) = scoped();
        // the caller asked for "gone", not "ds1/gone"
        assert_eq!(
            p.get("gone").unwrap_err(),
            StorageError::NotFound("gone".into())
        );
        assert_eq!(
            p.get_range("gone", 0, 4).unwrap_err(),
            StorageError::NotFound("gone".into())
        );
        assert_eq!(
            p.len_of("gone").unwrap_err(),
            StorageError::NotFound("gone".into())
        );
        // batched paths agree
        let mut plan = ReadPlan::new();
        plan.whole("gone");
        let outcome = p.execute(&plan);
        assert_eq!(
            outcome.results[0].clone().unwrap_err(),
            StorageError::NotFound("gone".into())
        );
        let many = p.get_many(&[ReadRequest::whole("gone")]);
        assert_eq!(
            many[0].clone().unwrap_err(),
            StorageError::NotFound("gone".into())
        );
    }

    #[test]
    fn scoped_stats_count_scoped_traffic() {
        let (base, p) = scoped();
        p.put("k", Bytes::from(vec![0u8; 10])).unwrap();
        p.get("k").unwrap();
        assert_eq!(p.stats().bytes_written(), 10);
        assert_eq!(p.stats().bytes_read(), 10);
        // clones share the counters (same scope, same accounting)
        let q = p.clone();
        q.get("k").unwrap();
        assert_eq!(p.stats().bytes_read(), 20);
        // the base saw the same traffic under absolute keys
        assert_eq!(base.stats().bytes_read(), 20);
    }
}
