//! NumPy-style element types.
//!
//! The paper (§3.2) models tensor elements after NumPy dtypes so that samples
//! round-trip losslessly between the storage format and deep learning
//! frameworks. We support the fixed-width numeric dtypes plus `bool`.

use serde::{Deserialize, Serialize};

use crate::error::TensorError;

/// Element type of a tensor, mirroring the NumPy dtype it round-trips with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum Dtype {
    /// 8-bit unsigned integer (`uint8`). The default for image pixels.
    U8,
    /// 8-bit signed integer (`int8`).
    I8,
    /// 16-bit unsigned integer (`uint16`).
    U16,
    /// 16-bit signed integer (`int16`).
    I16,
    /// 32-bit unsigned integer (`uint32`).
    U32,
    /// 32-bit signed integer (`int32`). The default for class labels.
    I32,
    /// 64-bit unsigned integer (`uint64`).
    U64,
    /// 64-bit signed integer (`int64`).
    I64,
    /// 32-bit IEEE 754 float (`float32`). The default for bounding boxes
    /// and embeddings.
    F32,
    /// 64-bit IEEE 754 float (`float64`).
    F64,
    /// Boolean stored as one byte per element, as NumPy does.
    Bool,
}

impl Dtype {
    /// Size of one element in bytes.
    #[inline]
    pub const fn size(self) -> usize {
        match self {
            Dtype::U8 | Dtype::I8 | Dtype::Bool => 1,
            Dtype::U16 | Dtype::I16 => 2,
            Dtype::U32 | Dtype::I32 | Dtype::F32 => 4,
            Dtype::U64 | Dtype::I64 | Dtype::F64 => 8,
        }
    }

    /// Canonical NumPy-compatible name (`"uint8"`, `"float32"`, ...).
    pub const fn name(self) -> &'static str {
        match self {
            Dtype::U8 => "uint8",
            Dtype::I8 => "int8",
            Dtype::U16 => "uint16",
            Dtype::I16 => "int16",
            Dtype::U32 => "uint32",
            Dtype::I32 => "int32",
            Dtype::U64 => "uint64",
            Dtype::I64 => "int64",
            Dtype::F32 => "float32",
            Dtype::F64 => "float64",
            Dtype::Bool => "bool",
        }
    }

    /// Parse a NumPy-style dtype name.
    pub fn parse(name: &str) -> Result<Self, TensorError> {
        Ok(match name {
            "uint8" | "u8" => Dtype::U8,
            "int8" | "i8" => Dtype::I8,
            "uint16" | "u16" => Dtype::U16,
            "int16" | "i16" => Dtype::I16,
            "uint32" | "u32" => Dtype::U32,
            "int32" | "i32" => Dtype::I32,
            "uint64" | "u64" => Dtype::U64,
            "int64" | "i64" => Dtype::I64,
            "float32" | "f32" => Dtype::F32,
            "float64" | "f64" => Dtype::F64,
            "bool" => Dtype::Bool,
            other => return Err(TensorError::UnknownName(other.to_string())),
        })
    }

    /// Whether the dtype is a floating point type.
    #[inline]
    pub const fn is_float(self) -> bool {
        matches!(self, Dtype::F32 | Dtype::F64)
    }

    /// Whether the dtype is a signed integer type.
    #[inline]
    pub const fn is_signed_int(self) -> bool {
        matches!(self, Dtype::I8 | Dtype::I16 | Dtype::I32 | Dtype::I64)
    }

    /// Whether the dtype is an unsigned integer type.
    #[inline]
    pub const fn is_unsigned_int(self) -> bool {
        matches!(self, Dtype::U8 | Dtype::U16 | Dtype::U32 | Dtype::U64)
    }

    /// The dtype arithmetic on two operands promotes to, following NumPy's
    /// simplified promotion lattice: `bool < ints < floats`, with width
    /// promotion to the wider operand, and mixed signed/unsigned promoting
    /// to a signed type one step wider (capped at `int64`).
    pub fn promote(self, other: Dtype) -> Dtype {
        use Dtype::*;
        if self == other {
            return self;
        }
        // Bool promotes to the other operand.
        if self == Bool {
            return other;
        }
        if other == Bool {
            return self;
        }
        // Any float wins; wider float wins.
        match (self.is_float(), other.is_float()) {
            (true, true) => {
                return if self == F64 || other == F64 {
                    F64
                } else {
                    F32
                };
            }
            (true, false) => return self,
            (false, true) => return other,
            (false, false) => {}
        }
        let (a, b) = (self, other);
        let wider = |x: Dtype| x.size();
        if a.is_signed_int() == b.is_signed_int() {
            // Same signedness: wider wins.
            return if wider(a) >= wider(b) { a } else { b };
        }
        // Mixed signedness: promote to a signed type wider than the unsigned
        // operand, capped at I64.
        let unsigned = if a.is_unsigned_int() { a } else { b };
        let signed = if a.is_signed_int() { a } else { b };
        let needed = (unsigned.size() * 2).min(8);

        match needed.max(signed.size()) {
            1 => I8,
            2 => I16,
            4 => I32,
            _ => I64,
        }
    }

    /// All dtypes, useful for exhaustive tests.
    pub const ALL: [Dtype; 11] = [
        Dtype::U8,
        Dtype::I8,
        Dtype::U16,
        Dtype::I16,
        Dtype::U32,
        Dtype::I32,
        Dtype::U64,
        Dtype::I64,
        Dtype::F32,
        Dtype::F64,
        Dtype::Bool,
    ];
}

impl std::fmt::Display for Dtype {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Rust scalar types that can live inside a [`crate::Sample`].
///
/// The trait ties a Rust primitive to its [`Dtype`] and provides safe
/// little-endian (de)serialization used by the chunk layer.
pub trait Element: Copy + Default + PartialOrd + Send + Sync + 'static {
    /// The dtype this element maps to.
    const DTYPE: Dtype;

    /// Write the element into `out` in little-endian byte order.
    fn write_le(self, out: &mut Vec<u8>);

    /// Read one element from the (exactly sized) little-endian byte slice.
    fn read_le(bytes: &[u8]) -> Self;

    /// Lossy conversion to `f64` used by aggregate functions in TQL.
    fn to_f64(self) -> f64;

    /// Lossy conversion from `f64` used when materializing computed values.
    fn from_f64(v: f64) -> Self;
}

macro_rules! impl_element {
    ($t:ty, $dtype:expr) => {
        impl Element for $t {
            const DTYPE: Dtype = $dtype;
            #[inline]
            fn write_le(self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            #[inline]
            fn read_le(bytes: &[u8]) -> Self {
                let mut buf = [0u8; std::mem::size_of::<$t>()];
                buf.copy_from_slice(bytes);
                <$t>::from_le_bytes(buf)
            }
            #[inline]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline]
            fn from_f64(v: f64) -> Self {
                v as $t
            }
        }
    };
}

impl_element!(u8, Dtype::U8);
impl_element!(i8, Dtype::I8);
impl_element!(u16, Dtype::U16);
impl_element!(i16, Dtype::I16);
impl_element!(u32, Dtype::U32);
impl_element!(i32, Dtype::I32);
impl_element!(u64, Dtype::U64);
impl_element!(i64, Dtype::I64);
impl_element!(f32, Dtype::F32);
impl_element!(f64, Dtype::F64);

impl Element for bool {
    const DTYPE: Dtype = Dtype::Bool;
    #[inline]
    fn write_le(self, out: &mut Vec<u8>) {
        out.push(self as u8);
    }
    #[inline]
    fn read_le(bytes: &[u8]) -> Self {
        bytes[0] != 0
    }
    #[inline]
    fn to_f64(self) -> f64 {
        if self {
            1.0
        } else {
            0.0
        }
    }
    #[inline]
    fn from_f64(v: f64) -> Self {
        v != 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_names() {
        assert_eq!(Dtype::U8.size(), 1);
        assert_eq!(Dtype::I16.size(), 2);
        assert_eq!(Dtype::F32.size(), 4);
        assert_eq!(Dtype::F64.size(), 8);
        assert_eq!(Dtype::Bool.size(), 1);
    }

    #[test]
    fn parse_roundtrip_all() {
        for d in Dtype::ALL {
            assert_eq!(Dtype::parse(d.name()).unwrap(), d);
        }
    }

    #[test]
    fn parse_short_aliases() {
        assert_eq!(Dtype::parse("u8").unwrap(), Dtype::U8);
        assert_eq!(Dtype::parse("f32").unwrap(), Dtype::F32);
        assert!(Dtype::parse("complex128").is_err());
    }

    #[test]
    fn promotion_float_wins() {
        assert_eq!(Dtype::U8.promote(Dtype::F32), Dtype::F32);
        assert_eq!(Dtype::F32.promote(Dtype::F64), Dtype::F64);
        assert_eq!(Dtype::I64.promote(Dtype::F32), Dtype::F32);
    }

    #[test]
    fn promotion_same_sign_wider_wins() {
        assert_eq!(Dtype::U8.promote(Dtype::U32), Dtype::U32);
        assert_eq!(Dtype::I16.promote(Dtype::I64), Dtype::I64);
    }

    #[test]
    fn promotion_mixed_sign_goes_signed() {
        assert_eq!(Dtype::U8.promote(Dtype::I8), Dtype::I16);
        assert_eq!(Dtype::U32.promote(Dtype::I8), Dtype::I64);
        assert_eq!(Dtype::U64.promote(Dtype::I64), Dtype::I64);
    }

    #[test]
    fn promotion_bool_defers() {
        assert_eq!(Dtype::Bool.promote(Dtype::U8), Dtype::U8);
        assert_eq!(Dtype::F64.promote(Dtype::Bool), Dtype::F64);
        assert_eq!(Dtype::Bool.promote(Dtype::Bool), Dtype::Bool);
    }

    #[test]
    fn promotion_is_commutative() {
        for a in Dtype::ALL {
            for b in Dtype::ALL {
                assert_eq!(a.promote(b), b.promote(a), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn element_roundtrip() {
        let mut buf = Vec::new();
        42u32.write_le(&mut buf);
        assert_eq!(u32::read_le(&buf), 42);
        buf.clear();
        (-1.5f64).write_le(&mut buf);
        assert_eq!(f64::read_le(&buf), -1.5);
        buf.clear();
        true.write_le(&mut buf);
        assert!(bool::read_le(&buf));
    }
}
