//! NumPy-style slicing specifications.
//!
//! TQL projections like `images[100:500, 100:500, 0:2]` (Fig. 5 of the
//! paper) and the tile encoder's region-of-interest reads both reduce to a
//! list of per-axis [`SliceSpec`]s applied to a sample.

use serde::{Deserialize, Serialize};

use crate::error::TensorError;

/// One axis of a NumPy-style subscript.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SliceSpec {
    /// A single index; the axis is removed from the result (`a[3]`).
    Index(i64),
    /// A half-open range with optional bounds (`a[1:5]`, `a[:5]`, `a[2:]`).
    /// Negative bounds count from the end, as in NumPy.
    Range {
        /// Inclusive start (None = 0).
        start: Option<i64>,
        /// Exclusive stop (None = axis length).
        stop: Option<i64>,
    },
    /// Keep the whole axis (`a[:]`).
    Full,
}

impl SliceSpec {
    /// Construct a `start..stop` range spec.
    pub fn range(start: i64, stop: i64) -> Self {
        SliceSpec::Range {
            start: Some(start),
            stop: Some(stop),
        }
    }

    /// Resolve this spec against an axis of length `len`.
    ///
    /// Returns `(start, stop, keep_axis)` with `0 <= start <= stop <= len`.
    /// `keep_axis` is false for `Index` (the axis is squeezed).
    pub fn resolve(&self, len: u64, axis: usize) -> Result<(u64, u64, bool), TensorError> {
        let norm = |v: i64| -> i64 {
            if v < 0 {
                v + len as i64
            } else {
                v
            }
        };
        match *self {
            SliceSpec::Full => Ok((0, len, true)),
            SliceSpec::Index(i) => {
                let i = norm(i);
                if i < 0 || i as u64 >= len {
                    return Err(TensorError::IndexOutOfBounds {
                        index: i.max(0) as usize,
                        axis,
                        len: len as usize,
                    });
                }
                Ok((i as u64, i as u64 + 1, false))
            }
            SliceSpec::Range { start, stop } => {
                let s = norm(start.unwrap_or(0)).clamp(0, len as i64) as u64;
                let e = norm(stop.unwrap_or(len as i64)).clamp(0, len as i64) as u64;
                Ok((s, e.max(s), true))
            }
        }
    }
}

impl std::fmt::Display for SliceSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SliceSpec::Index(i) => write!(f, "{i}"),
            SliceSpec::Range { start, stop } => {
                if let Some(s) = start {
                    write!(f, "{s}")?;
                }
                write!(f, ":")?;
                if let Some(e) = stop {
                    write!(f, "{e}")?;
                }
                Ok(())
            }
            SliceSpec::Full => write!(f, ":"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_resolves_whole_axis() {
        assert_eq!(SliceSpec::Full.resolve(10, 0).unwrap(), (0, 10, true));
    }

    #[test]
    fn index_squeezes_axis() {
        assert_eq!(SliceSpec::Index(3).resolve(10, 0).unwrap(), (3, 4, false));
        assert_eq!(SliceSpec::Index(-1).resolve(10, 0).unwrap(), (9, 10, false));
        assert!(SliceSpec::Index(10).resolve(10, 0).is_err());
        assert!(SliceSpec::Index(-11).resolve(10, 0).is_err());
    }

    #[test]
    fn range_clamps() {
        assert_eq!(SliceSpec::range(2, 5).resolve(10, 0).unwrap(), (2, 5, true));
        assert_eq!(
            SliceSpec::range(2, 50).resolve(10, 0).unwrap(),
            (2, 10, true)
        );
        assert_eq!(
            SliceSpec::range(-3, -1).resolve(10, 0).unwrap(),
            (7, 9, true)
        );
        // inverted ranges collapse to empty
        assert_eq!(SliceSpec::range(5, 2).resolve(10, 0).unwrap(), (5, 5, true));
    }

    #[test]
    fn open_ended_ranges() {
        let s = SliceSpec::Range {
            start: None,
            stop: Some(4),
        };
        assert_eq!(s.resolve(10, 0).unwrap(), (0, 4, true));
        let s = SliceSpec::Range {
            start: Some(6),
            stop: None,
        };
        assert_eq!(s.resolve(10, 0).unwrap(), (6, 10, true));
    }

    #[test]
    fn display_forms() {
        assert_eq!(SliceSpec::Index(3).to_string(), "3");
        assert_eq!(SliceSpec::range(1, 2).to_string(), "1:2");
        assert_eq!(SliceSpec::Full.to_string(), ":");
        assert_eq!(
            SliceSpec::Range {
                start: None,
                stop: Some(5)
            }
            .to_string(),
            ":5"
        );
    }
}
