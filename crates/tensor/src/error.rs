//! Error type shared by the tensor layer.

use crate::dtype::Dtype;

/// Errors produced while constructing, validating or manipulating samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The byte length of the provided buffer does not match
    /// `shape.num_elements() * dtype.size()`.
    LengthMismatch {
        /// Bytes expected from the shape and dtype.
        expected: usize,
        /// Bytes actually supplied.
        actual: usize,
    },
    /// A sample violated the expectations of its tensor's htype.
    HtypeViolation {
        /// Human readable description of the violated expectation.
        reason: String,
    },
    /// Two dtypes were mixed in an operation that requires equal dtypes.
    DtypeMismatch {
        /// Left-hand dtype.
        left: Dtype,
        /// Right-hand dtype.
        right: Dtype,
    },
    /// An index was out of bounds for the sample's shape.
    IndexOutOfBounds {
        /// Offending index.
        index: usize,
        /// Axis on which the index was applied.
        axis: usize,
        /// Length of that axis.
        len: usize,
    },
    /// A slice specification did not match the sample's rank.
    RankMismatch {
        /// Rank implied by the slice or operand.
        expected: usize,
        /// Rank of the sample.
        actual: usize,
    },
    /// An unknown dtype or htype name was parsed.
    UnknownName(String),
    /// Shapes were incompatible for an elementwise operation.
    ShapeMismatch {
        /// Left shape rendered as text.
        left: String,
        /// Right shape rendered as text.
        right: String,
    },
    /// A cast between dtypes would lose information in `strict` mode.
    InvalidCast {
        /// Source dtype.
        from: Dtype,
        /// Destination dtype.
        to: Dtype,
    },
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "buffer length mismatch: expected {expected} bytes, got {actual}"
                )
            }
            TensorError::HtypeViolation { reason } => write!(f, "htype violation: {reason}"),
            TensorError::DtypeMismatch { left, right } => {
                write!(f, "dtype mismatch: {left} vs {right}")
            }
            TensorError::IndexOutOfBounds { index, axis, len } => {
                write!(
                    f,
                    "index {index} out of bounds for axis {axis} with length {len}"
                )
            }
            TensorError::RankMismatch { expected, actual } => {
                write!(f, "rank mismatch: expected {expected}, got {actual}")
            }
            TensorError::UnknownName(name) => write!(f, "unknown type name: {name}"),
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch: {left} vs {right}")
            }
            TensorError::InvalidCast { from, to } => {
                write!(f, "invalid cast from {from} to {to}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let cases: Vec<TensorError> = vec![
            TensorError::LengthMismatch {
                expected: 4,
                actual: 2,
            },
            TensorError::HtypeViolation {
                reason: "bad".into(),
            },
            TensorError::DtypeMismatch {
                left: Dtype::U8,
                right: Dtype::F32,
            },
            TensorError::IndexOutOfBounds {
                index: 9,
                axis: 0,
                len: 3,
            },
            TensorError::RankMismatch {
                expected: 3,
                actual: 1,
            },
            TensorError::UnknownName("wat".into()),
            TensorError::ShapeMismatch {
                left: "[1]".into(),
                right: "[2]".into(),
            },
            TensorError::InvalidCast {
                from: Dtype::F64,
                to: Dtype::U8,
            },
        ];
        for c in cases {
            assert!(!c.to_string().is_empty());
        }
    }
}
