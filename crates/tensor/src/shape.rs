//! Shape arithmetic for dynamically shaped samples.

use serde::{Deserialize, Serialize};

use crate::error::TensorError;

/// The shape of one sample: the per-axis lengths of an n-dimensional array.
///
/// A scalar has the empty shape `[]`. Deep Lake tensors are *ragged*: each
/// sample carries its own `Shape`, so two rows of an `image` tensor can be
/// `600×800×3` and `1024×1024×3` without padding (§3.2).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct Shape(pub Vec<u64>);

impl Shape {
    /// A scalar shape (`[]`, one element).
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// Construct from any iterable of axis lengths.
    pub fn new(dims: impl Into<Vec<u64>>) -> Self {
        Shape(dims.into())
    }

    /// Number of axes.
    #[inline]
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (product of axis lengths; 1 for scalars).
    #[inline]
    pub fn num_elements(&self) -> u64 {
        self.0.iter().product()
    }

    /// Axis lengths as a slice.
    #[inline]
    pub fn dims(&self) -> &[u64] {
        &self.0
    }

    /// Length of axis `i`.
    #[inline]
    pub fn dim(&self, i: usize) -> u64 {
        self.0[i]
    }

    /// Row-major ("C order") strides in *elements*.
    ///
    /// `strides()[i]` is the element distance between consecutive indices on
    /// axis `i`. Empty for scalars.
    pub fn strides(&self) -> Vec<u64> {
        let mut strides = vec![1u64; self.rank()];
        for i in (0..self.rank().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Flatten a multi-dimensional index into a row-major linear offset.
    pub fn linear_index(&self, index: &[u64]) -> Result<u64, TensorError> {
        if index.len() != self.rank() {
            return Err(TensorError::RankMismatch {
                expected: self.rank(),
                actual: index.len(),
            });
        }
        let mut off = 0u64;
        let strides = self.strides();
        for (axis, (&i, &len)) in index.iter().zip(self.0.iter()).enumerate() {
            if i >= len {
                return Err(TensorError::IndexOutOfBounds {
                    index: i as usize,
                    axis,
                    len: len as usize,
                });
            }
            off += i * strides[axis];
        }
        Ok(off)
    }

    /// Elementwise maximum of two shapes, padding the shorter one with zeros
    /// on the right. Used to maintain the `max_shape` field of tensor
    /// metadata as ragged samples are appended.
    pub fn union_max(&self, other: &Shape) -> Shape {
        let rank = self.rank().max(other.rank());
        let get = |s: &Shape, i: usize| s.0.get(i).copied().unwrap_or(0);
        Shape((0..rank).map(|i| get(self, i).max(get(other, i))).collect())
    }

    /// Elementwise minimum, padding the shorter shape with zeros.
    pub fn union_min(&self, other: &Shape) -> Shape {
        let rank = self.rank().max(other.rank());
        let get = |s: &Shape, i: usize| s.0.get(i).copied().unwrap_or(0);
        Shape((0..rank).map(|i| get(self, i).min(get(other, i))).collect())
    }

    /// Whether every axis is equal (shapes are directly stackable).
    pub fn same_as(&self, other: &Shape) -> bool {
        self == other
    }

    /// Render as `[a, b, c]` for error messages.
    pub fn render(&self) -> String {
        format!("{:?}", self.0)
    }
}

impl From<Vec<u64>> for Shape {
    fn from(v: Vec<u64>) -> Self {
        Shape(v)
    }
}

impl From<&[u64]> for Shape {
    fn from(v: &[u64]) -> Self {
        Shape(v.to_vec())
    }
}

impl<const N: usize> From<[u64; N]> for Shape {
    fn from(v: [u64; N]) -> Self {
        Shape(v.to_vec())
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_has_one_element() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.num_elements(), 1);
        assert!(s.strides().is_empty());
    }

    #[test]
    fn num_elements_product() {
        assert_eq!(Shape::from([2, 3, 4]).num_elements(), 24);
        assert_eq!(Shape::from([5]).num_elements(), 5);
        assert_eq!(Shape::from([0, 7]).num_elements(), 0);
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::from([2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::from([7]).strides(), vec![1]);
    }

    #[test]
    fn linear_index_roundtrip() {
        let s = Shape::from([2, 3, 4]);
        assert_eq!(s.linear_index(&[0, 0, 0]).unwrap(), 0);
        assert_eq!(s.linear_index(&[1, 2, 3]).unwrap(), 23);
        assert_eq!(s.linear_index(&[1, 0, 2]).unwrap(), 14);
    }

    #[test]
    fn linear_index_bounds() {
        let s = Shape::from([2, 3]);
        assert!(matches!(
            s.linear_index(&[2, 0]),
            Err(TensorError::IndexOutOfBounds { axis: 0, .. })
        ));
        assert!(matches!(
            s.linear_index(&[0]),
            Err(TensorError::RankMismatch { .. })
        ));
    }

    #[test]
    fn union_max_min_pad_with_zero() {
        let a = Shape::from([2, 10]);
        let b = Shape::from([5, 3, 7]);
        assert_eq!(a.union_max(&b), Shape::from([5, 10, 7]));
        assert_eq!(a.union_min(&b), Shape::from([2, 3, 0]));
    }

    #[test]
    fn display_renders_dims() {
        assert_eq!(Shape::from([1, 2]).to_string(), "[1, 2]");
    }
}
